// The columnar (SoA) trace store the query engine scans (ISSUE 5; batch
// API since ISSUE 7): one row per PEBS sample, six int64 columns.
// Attribution happens at build time, mirroring core::TraceIntegrator
// exactly:
//
//   item — the innermost marker window covering (core, ts), or the
//          sampled id register in use_register_ids mode; kNoItem → -1
//   func — SymbolTable::resolve(ip); unresolved → -1
//   dur  — the elapsed-time estimate of the row's {item, func} bucket
//          (first-to-last sample per core, summed over cores, exactly
//          core::TraceTable::elapsed); rows in unestimable buckets
//          (fewer than two samples on every core) carry 0
//
// All columns are int64 so expression evaluation (expr.hpp) indexes them
// uniformly; ItemId 2^64-1 (kNoItem) reads back as -1, which is also how
// a query spells it.
//
// The scan interface is batch-oriented: col() hands out a whole column
// as std::span, block() slices all six for one scan block, and zones()
// exposes per-block min/max zone maps the engine consults before
// evaluating a block (finer-grained than FLXI's per-chunk pruning — and
// sound for *every* query shape, outliers and dur-queries included,
// because rows here are already fully decoded and attributed: skipping a
// block only skips rows the filter provably rejects). The old per-row
// field()/row() accessors are gone; BatchEvaluator (expr.hpp) replaced
// per-row interpretation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/query/expr.hpp"

namespace fluxtrace::query {

struct BuildOptions {
  /// Take item ids from the sampled register (§V-A timer-switching
  /// architecture) instead of locating samples in marker windows.
  bool use_register_ids = false;
  /// Zone-map granularity in rows. The engine builds with its scan block
  /// size here so scan blocks and zones coincide exactly.
  std::size_t zone_rows = 65536;
};

/// Per-block column bounds: the zone map consulted for block skipping.
struct ZoneMap {
  std::array<std::int64_t, kNumFields> min{};
  std::array<std::int64_t, kNumFields> max{};

  [[nodiscard]] std::int64_t min_of(Field f) const {
    return min[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] std::int64_t max_of(Field f) const {
    return max[static_cast<std::size_t>(f)];
  }
};

class ColumnarTrace {
 public:
  /// Attribute and columnarize `data`. Marker records are consumed for
  /// window construction only; rows correspond 1:1, in order, to
  /// data.samples.
  static ColumnarTrace build(const io::TraceData& data,
                             const SymbolTable& symtab,
                             const BuildOptions& opts = {});

  /// Build from an opened reader. A clean chunked-v2 image takes the
  /// column-direct decode path: sample fields stream straight into the
  /// columns (skipping the 148-byte PebsSample materialization — the
  /// store never reads 15 of the 16 GPRs). Other formats decode via
  /// TraceReader, and a damaged file of any format degrades to the
  /// salvaged subset (salvaged() reports it) instead of erroring.
  static ColumnarTrace from_reader(const io::TraceReader& reader,
                                   const SymbolTable& symtab,
                                   const BuildOptions& opts = {},
                                   unsigned n_threads = 0);

  /// io::open_trace composed with from_reader — open, decode (with
  /// salvage fallback), attribute, one call. Throws TraceIoError only
  /// when the file cannot be read at all.
  static ColumnarTrace open(const std::string& path,
                            const SymbolTable& symtab,
                            const BuildOptions& opts = {},
                            unsigned n_threads = 0);

  [[nodiscard]] std::size_t rows() const { return n_rows_; }

  /// One whole column. Throws std::out_of_range for an out-of-enum
  /// field — a forged or miscast Field can never silently read zeros.
  [[nodiscard]] std::span<const std::int64_t> col(Field f) const {
    const auto i = static_cast<std::size_t>(f);
    if (i >= kNumFields) {
      throw std::out_of_range("ColumnarTrace: field out of range");
    }
    return {cols_[i].data(), n_rows_};
  }

  /// All six columns over rows [begin, end) as one scan block.
  [[nodiscard]] ColumnBlock block(std::size_t begin, std::size_t end) const {
    ColumnBlock b;
    b.rows = end - begin;
    for (std::size_t f = 0; f < kNumFields; ++f) {
      b.col[f] = std::span<const std::int64_t>(cols_[f]).subspan(begin, b.rows);
    }
    return b;
  }

  /// Zone maps, one per zone_rows() rows in row order (the last zone may
  /// cover fewer rows). Empty for a zero-row trace.
  [[nodiscard]] std::size_t zone_rows() const { return zone_rows_; }
  [[nodiscard]] std::span<const ZoneMap> zones() const { return zones_; }

  /// True when the backing file was damaged and the rows are the
  /// salvaged subset (from_reader / open paths only).
  [[nodiscard]] bool salvaged() const { return salvaged_; }

 private:
  void attribute(const std::vector<Marker>& markers, const SymbolTable& symtab,
                 const BuildOptions& opts);
  void build_zones();

  std::array<std::vector<std::int64_t>, kNumFields> cols_;
  std::vector<ZoneMap> zones_;
  std::size_t n_rows_ = 0;
  std::size_t zone_rows_ = 65536;
  bool salvaged_ = false;
};

} // namespace fluxtrace::query
