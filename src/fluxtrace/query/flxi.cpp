#include "fluxtrace/query/flxi.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "fluxtrace/io/chunked.hpp" // io::crc32 + the chunk walk
#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/io/v3.hpp" // is_sample_chunk_type
#include "fluxtrace/query/columnar.hpp"

namespace fluxtrace::query {

namespace {

void app_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void app_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void app_i64(std::string& b, std::int64_t v) {
  app_u64(b, static_cast<std::uint64_t>(v));
}

// Cursor-based reads that fail closed: any read past the end flips
// `ok` and returns 0, and the caller bails once at the end.
struct Reader {
  std::string_view b;
  std::size_t at = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (at + 4 > b.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at + i]))
           << (8 * i);
    }
    at += 4;
    return v;
  }

  std::uint64_t u64() {
    if (at + 8 > b.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[at + i]))
           << (8 * i);
    }
    at += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4 + 4 + 4 + 4;
// Hostile counts are rejected against the bytes actually present before
// anything is reserved: a chunk encodes to at least 48 bytes
// (8+4+4*8+4) and a func entry to exactly 8, so a claimed count larger
// than the remaining body / that floor cannot be real.
constexpr std::size_t kMinChunkBytes = 8 + 4 + 4 * 8 + 4;
constexpr std::size_t kFuncEntryBytes = 4 + 4;

} // namespace

std::uint32_t symtab_crc(const SymbolTable& symtab) {
  std::string buf;
  for (SymbolId id = 0; id < symtab.size(); ++id) {
    const Symbol& s = symtab[id];
    buf += s.name;
    buf.push_back('\0');
    app_u64(buf, s.lo);
    app_u64(buf, s.hi);
  }
  return io::crc32(buf.data(), buf.size());
}

std::string encode_flxi(const FlxiIndex& index) {
  std::string body;
  for (const FlxiChunk& c : index.chunks) {
    app_u64(body, c.offset);
    app_u32(body, c.n_records);
    app_i64(body, c.min_ts);
    app_i64(body, c.max_ts);
    app_i64(body, c.min_item);
    app_i64(body, c.max_item);
    app_u32(body, static_cast<std::uint32_t>(c.func_counts.size()));
    for (const auto& [fn, count] : c.func_counts) {
      app_u32(body, fn);
      app_u32(body, count);
    }
  }
  std::string out;
  out.reserve(kHeaderBytes + body.size());
  app_u32(out, kFlxiMagic);
  app_u32(out, kFlxiVersion);
  app_u64(out, index.trace_size);
  app_u32(out, index.trace_crc);
  app_u32(out, index.symtab_crc);
  app_u32(out, index.flags);
  app_u32(out, static_cast<std::uint32_t>(index.chunks.size()));
  app_u32(out, io::crc32(body.data(), body.size()));
  out += body;
  return out;
}

std::optional<FlxiIndex> decode_flxi(std::string_view bytes) {
  Reader r{bytes};
  if (r.u32() != kFlxiMagic || r.u32() != kFlxiVersion) return std::nullopt;
  FlxiIndex index;
  index.trace_size = r.u64();
  index.trace_crc = r.u32();
  index.symtab_crc = r.u32();
  index.flags = r.u32();
  const std::uint32_t n_chunks = r.u32();
  const std::uint32_t body_crc = r.u32();
  if (!r.ok || (index.flags & ~kFlxiKnownFlags) != 0) return std::nullopt;

  const std::string_view body = bytes.substr(std::min(r.at, bytes.size()));
  if (body_crc != io::crc32(body.data(), body.size())) return std::nullopt;
  if (n_chunks > body.size() / kMinChunkBytes) return std::nullopt;

  index.chunks.reserve(n_chunks);
  for (std::uint32_t i = 0; i < n_chunks; ++i) {
    FlxiChunk c;
    c.offset = r.u64();
    c.n_records = r.u32();
    c.min_ts = r.i64();
    c.max_ts = r.i64();
    c.min_item = r.i64();
    c.max_item = r.i64();
    const std::uint32_t n_funcs = r.u32();
    if (!r.ok || n_funcs > (bytes.size() - r.at) / kFuncEntryBytes) {
      return std::nullopt;
    }
    c.func_counts.reserve(n_funcs);
    for (std::uint32_t j = 0; j < n_funcs; ++j) {
      const std::uint32_t fn = r.u32();
      const std::uint32_t count = r.u32();
      if (!r.ok) return std::nullopt;
      c.func_counts.emplace_back(fn, count);
    }
    index.chunks.push_back(std::move(c));
  }
  if (!r.ok || r.at != bytes.size()) return std::nullopt; // trailing garbage
  return index;
}

bool save_flxi(const std::string& path, const FlxiIndex& index) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  const std::string bytes = encode_flxi(index);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.close();
  return static_cast<bool>(os);
}

std::optional<FlxiIndex> load_flxi(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is) return std::nullopt;
  const std::string bytes = std::move(buf).str();
  return decode_flxi(bytes);
}

std::optional<FlxiIndex> build_flxi(const io::TraceReader& reader,
                                    const ColumnarTrace& table,
                                    const SymbolTable& symtab,
                                    bool use_register_ids,
                                    std::uint32_t trace_crc) {
  // An index is only meaningful over a *clean* chunked image (v2 or v3):
  // salvaged rows do not line up with the chunk layout, and other formats
  // have no chunks.
  if (!io::is_chunked_format(reader.format()) || table.salvaged()) {
    return std::nullopt;
  }
  std::vector<io::V2ChunkRef> refs;
  try {
    refs = io::index_trace_v2(reader.bytes());
  } catch (const io::TraceIoError&) {
    return std::nullopt; // strict read succeeded but the walk did not
  }

  FlxiIndex idx;
  idx.trace_size = reader.bytes().size();
  idx.trace_crc = trace_crc;
  idx.symtab_crc = symtab_crc(symtab);
  idx.flags = use_register_ids ? kFlxiFlagRegisterIds : 0u;

  const std::span<const std::int64_t> tss = table.col(Field::Ts);
  const std::span<const std::int64_t> items = table.col(Field::Item);
  const std::span<const std::int64_t> fns = table.col(Field::Func);
  // Per-chunk func histogram as a flat array indexed by id plus a
  // touched-id list, reused across chunks — the old map<u32,u32> paid a
  // node allocation and a tree walk per distinct func per chunk.
  std::vector<std::uint32_t> counts(symtab.size(), 0);
  std::vector<std::uint32_t> touched;
  std::size_t row = 0;
  for (const io::V2ChunkRef& ref : refs) {
    if (!io::is_sample_chunk_type(ref.type)) continue;
    FlxiChunk c;
    c.offset = ref.offset;
    c.n_records = ref.n_records;
    c.min_ts = std::numeric_limits<std::int64_t>::max();
    c.max_ts = std::numeric_limits<std::int64_t>::min();
    c.min_item = std::numeric_limits<std::int64_t>::max();
    c.max_item = std::numeric_limits<std::int64_t>::min();
    touched.clear();
    for (std::uint32_t k = 0; k < ref.n_records; ++k, ++row) {
      if (row >= table.rows()) return std::nullopt; // layout/row mismatch
      c.min_ts = std::min(c.min_ts, tss[row]);
      c.max_ts = std::max(c.max_ts, tss[row]);
      c.min_item = std::min(c.min_item, items[row]);
      c.max_item = std::max(c.max_item, items[row]);
      const std::int64_t fn = fns[row];
      if (fn >= 0 && static_cast<std::size_t>(fn) < counts.size()) {
        const auto f = static_cast<std::uint32_t>(fn);
        if (counts[f]++ == 0) touched.push_back(f);
      }
    }
    if (c.n_records == 0) {
      c.min_ts = c.min_item = 0;
      c.max_ts = c.max_item = -1;
    }
    std::sort(touched.begin(), touched.end());
    c.func_counts.reserve(touched.size());
    for (const std::uint32_t f : touched) {
      c.func_counts.emplace_back(f, counts[f]);
      counts[f] = 0;
    }
    idx.chunks.push_back(std::move(c));
  }
  if (row != table.rows()) return std::nullopt; // samples outside the chunks
  return idx;
}

const char* to_string(SidecarStatus s) {
  switch (s) {
    case SidecarStatus::Fresh: return "fresh";
    case SidecarStatus::Rebuilt: return "rebuilt";
    case SidecarStatus::Unindexable: return "unindexable";
    case SidecarStatus::WriteFailed: return "write-failed";
  }
  return "?";
}

SidecarStatus refresh_sidecar(const std::string& trace_path,
                              const SymbolTable& symtab,
                              bool use_register_ids) {
  const io::TraceReader reader = io::open_trace(trace_path);
  const std::uint32_t crc =
      io::crc32(reader.bytes().data(), reader.bytes().size());
  const std::uint32_t mode_flag =
      use_register_ids ? kFlxiFlagRegisterIds : 0u;
  if (const auto existing = load_flxi(flxi_path(trace_path))) {
    const bool fresh = existing->trace_size == reader.bytes().size() &&
                       existing->trace_crc == crc &&
                       existing->symtab_crc == symtab_crc(symtab) &&
                       (existing->flags & kFlxiFlagRegisterIds) == mode_flag;
    if (fresh) return SidecarStatus::Fresh;
  }
  if (!io::is_chunked_format(reader.format())) {
    return SidecarStatus::Unindexable;
  }
  const ColumnarTrace table = ColumnarTrace::from_reader(
      reader, symtab, BuildOptions{use_register_ids, 65536});
  const auto idx = build_flxi(reader, table, symtab, use_register_ids, crc);
  if (!idx.has_value()) return SidecarStatus::Unindexable;
  return save_flxi(flxi_path(trace_path), *idx) ? SidecarStatus::Rebuilt
                                                : SidecarStatus::WriteFailed;
}

} // namespace fluxtrace::query
