// The query expression language (ISSUE 5): a small typed
// predicate/arithmetic language over the columns of a columnar trace —
//
//     item, func, core, ts, dur, ip
//
// with 64-bit signed integer semantics, the usual arithmetic
// (+ - * / %), comparisons (== != < <= > >=, yielding 0/1), and logical
// ops (&& || !). Division and modulo by zero evaluate to 0 (total
// semantics: a query must never fault on data). The one non-numeric form
// is `func == "name"` / `func != "name"`, which the parser resolves
// against the symbol table into an id-set membership test, so evaluation
// stays purely integral.
//
// Everything downstream leans on two properties:
//   * evaluation is deterministic and allocation-free per row, so the
//     parallel scan is bit-identical to the sequential one;
//   * the top-level AND chain can be mined for conservative per-chunk
//     bounds (extract_prune_hints), which is what lets the FLXI sidecar
//     skip chunks without ever changing a query's result.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/base/symbols.hpp"

namespace fluxtrace::query {

/// Columns an expression may reference. The numeric values are stable:
/// they index FieldVals and the availability bitmask.
enum class Field : std::uint8_t { Item, Func, Core, Ts, Dur, Ip };

inline constexpr std::size_t kNumFields = 6;

[[nodiscard]] constexpr std::string_view to_string(Field f) {
  switch (f) {
    case Field::Item: return "item";
    case Field::Func: return "func";
    case Field::Core: return "core";
    case Field::Ts: return "ts";
    case Field::Dur: return "dur";
    case Field::Ip: return "ip";
  }
  return "?";
}

[[nodiscard]] std::optional<Field> field_from_name(std::string_view name);

[[nodiscard]] constexpr unsigned field_bit(Field f) {
  return 1u << static_cast<unsigned>(f);
}

/// All six fields, for contexts (the columnar scan) that can bind
/// everything.
inline constexpr unsigned kAllFields = (1u << kNumFields) - 1;

/// One row's field values, indexed by Field. Producers fill only the
/// fields they have; bind-time availability checks (see Expr::bind_check)
/// guarantee the evaluator never reads an unfilled slot.
struct FieldVals {
  std::int64_t v[kNumFields] = {};

  [[nodiscard]] std::int64_t get(Field f) const {
    return v[static_cast<std::size_t>(f)];
  }
  void set(Field f, std::int64_t x) { v[static_cast<std::size_t>(f)] = x; }
};

/// Thrown on any lexical, syntactic, or binding problem; `pos` is the
/// byte offset into the query text the error was detected at.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what), pos_(pos) {}
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Expression AST node. Built by parse_expr(); immutable afterwards.
struct Expr {
  enum class Kind : std::uint8_t {
    Lit,       ///< integer literal (`lit`)
    FieldRef,  ///< column reference (`field`)
    FuncMatch, ///< func ∈ ids (negate: ∉) — the compiled `func == "name"`
    Unary,     ///< op applied to lhs
    Binary,    ///< op applied to lhs, rhs
  };
  enum class Op : std::uint8_t {
    // binary
    Add, Sub, Mul, Div, Mod,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,
    // unary
    Not, Neg,
  };

  Kind kind = Kind::Lit;
  Op op = Op::Add;
  std::int64_t lit = 0;
  Field field = Field::Item;
  std::vector<SymbolId> func_ids; ///< FuncMatch: matching ids, sorted
  std::string func_name;          ///< FuncMatch: original spelling
  bool negate = false;            ///< FuncMatch: true for !=
  std::unique_ptr<Expr> lhs, rhs;

  /// Evaluate over one row. Comparisons/logicals yield 0/1; x/0 == x%0
  /// == 0.
  [[nodiscard]] std::int64_t eval(const FieldVals& row) const;
  [[nodiscard]] bool test(const FieldVals& row) const { return eval(row) != 0; }

  /// Bitmask (field_bit) of every field referenced anywhere in the tree.
  [[nodiscard]] unsigned fields_used() const;

  /// Throw ParseError when the expression references a field outside
  /// `available` (bitmask). `context` names the caller in the message
  /// ("report filter").
  void bind_check(unsigned available, std::string_view context) const;

  /// Structural equality (ids and literals; names too, so a FuncMatch
  /// round-trips spelling-exactly).
  [[nodiscard]] bool equals(const Expr& other) const;

  [[nodiscard]] std::unique_ptr<Expr> clone() const;
};

/// Parse one predicate/expression. `symtab` resolves `func == "name"`
/// string comparisons; pass nullptr to reject them (contexts with no
/// symbol table). Throws ParseError.
[[nodiscard]] std::unique_ptr<Expr> parse_expr(std::string_view text,
                                               const SymbolTable* symtab);

/// Canonical printable form (fully parenthesized compounds). Guaranteed
/// to re-parse to a structurally identical tree.
[[nodiscard]] std::string to_string(const Expr& e);

// --- chunk pruning support ---------------------------------------------

/// A closed interval over int64; the default is the full range.
struct Interval {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool full() const {
    return lo == std::numeric_limits<std::int64_t>::min() &&
           hi == std::numeric_limits<std::int64_t>::max();
  }
  [[nodiscard]] bool empty() const { return lo > hi; }
  [[nodiscard]] bool intersects(std::int64_t a, std::int64_t b) const {
    return !(b < lo || a > hi);
  }
};

/// Conservative per-chunk rejection bounds mined from an expression's
/// top-level AND chain. A chunk may be skipped only when these hints
/// prove no row in it can satisfy the predicate; everything the miner
/// does not understand simply widens the hints (never narrows), so
/// pruning is always sound.
struct PruneHints {
  Interval ts;   ///< rows must have ts within this interval
  Interval item; ///< rows must have item within this interval
  /// When set: rows must have func among these ids (sorted). An empty
  /// vector means the predicate cannot match any func at all.
  std::optional<std::vector<SymbolId>> funcs;

  [[nodiscard]] bool selective() const {
    return !ts.full() || !item.full() || funcs.has_value();
  }
};

[[nodiscard]] PruneHints extract_prune_hints(const Expr& e);

} // namespace fluxtrace::query
