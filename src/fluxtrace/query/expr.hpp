// The query expression language (ISSUE 5): a small typed
// predicate/arithmetic language over the columns of a columnar trace —
//
//     item, func, core, ts, dur, ip
//
// with 64-bit signed integer semantics, the usual arithmetic
// (+ - * / %), comparisons (== != < <= > >=, yielding 0/1), and logical
// ops (&& || !). Division and modulo by zero evaluate to 0 (total
// semantics: a query must never fault on data). The one non-numeric form
// is `func == "name"` / `func != "name"`, which the parser resolves
// against the symbol table into an id-set membership test, so evaluation
// stays purely integral.
//
// Everything downstream leans on two properties:
//   * evaluation is deterministic and allocation-free per row, so the
//     parallel scan is bit-identical to the sequential one;
//   * the top-level AND chain can be mined for conservative per-chunk
//     bounds (extract_prune_hints), which is what lets the FLXI sidecar
//     skip chunks without ever changing a query's result.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/base/symbols.hpp"

namespace fluxtrace::query {

/// Columns an expression may reference. The numeric values are stable:
/// they index FieldVals and the availability bitmask.
enum class Field : std::uint8_t { Item, Func, Core, Ts, Dur, Ip };

inline constexpr std::size_t kNumFields = 6;

[[nodiscard]] constexpr std::string_view to_string(Field f) {
  switch (f) {
    case Field::Item: return "item";
    case Field::Func: return "func";
    case Field::Core: return "core";
    case Field::Ts: return "ts";
    case Field::Dur: return "dur";
    case Field::Ip: return "ip";
  }
  return "?";
}

[[nodiscard]] std::optional<Field> field_from_name(std::string_view name);

[[nodiscard]] constexpr unsigned field_bit(Field f) {
  return 1u << static_cast<unsigned>(f);
}

/// All six fields, for contexts (the columnar scan) that can bind
/// everything.
inline constexpr unsigned kAllFields = (1u << kNumFields) - 1;

/// One row's field values, indexed by Field. Producers fill only the
/// fields they have; bind-time availability checks (see Expr::bind_check)
/// guarantee the evaluator never reads an unfilled slot.
struct FieldVals {
  std::int64_t v[kNumFields] = {};

  [[nodiscard]] std::int64_t get(Field f) const {
    return v[static_cast<std::size_t>(f)];
  }
  void set(Field f, std::int64_t x) { v[static_cast<std::size_t>(f)] = x; }
};

/// Thrown on any lexical, syntactic, or binding problem; `pos` is the
/// byte offset into the query text the error was detected at.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what), pos_(pos) {}
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Expression AST node. Built by parse_expr(); immutable afterwards.
struct Expr {
  enum class Kind : std::uint8_t {
    Lit,       ///< integer literal (`lit`)
    FieldRef,  ///< column reference (`field`)
    FuncMatch, ///< func ∈ ids (negate: ∉) — the compiled `func == "name"`
    Unary,     ///< op applied to lhs
    Binary,    ///< op applied to lhs, rhs
  };
  enum class Op : std::uint8_t {
    // binary
    Add, Sub, Mul, Div, Mod,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,
    // unary
    Not, Neg,
  };

  Kind kind = Kind::Lit;
  Op op = Op::Add;
  std::int64_t lit = 0;
  Field field = Field::Item;
  std::vector<SymbolId> func_ids; ///< FuncMatch: matching ids, sorted
  std::string func_name;          ///< FuncMatch: original spelling
  bool negate = false;            ///< FuncMatch: true for !=
  std::unique_ptr<Expr> lhs, rhs;

  /// Evaluate over one row. Comparisons/logicals yield 0/1; x/0 == x%0
  /// == 0.
  [[nodiscard]] std::int64_t eval(const FieldVals& row) const;
  [[nodiscard]] bool test(const FieldVals& row) const { return eval(row) != 0; }

  /// Bitmask (field_bit) of every field referenced anywhere in the tree.
  [[nodiscard]] unsigned fields_used() const;

  /// Throw ParseError when the expression references a field outside
  /// `available` (bitmask). `context` names the caller in the message
  /// ("report filter").
  void bind_check(unsigned available, std::string_view context) const;

  /// Structural equality (ids and literals; names too, so a FuncMatch
  /// round-trips spelling-exactly).
  [[nodiscard]] bool equals(const Expr& other) const;

  [[nodiscard]] std::unique_ptr<Expr> clone() const;
};

/// Parse one predicate/expression. `symtab` resolves `func == "name"`
/// string comparisons; pass nullptr to reject them (contexts with no
/// symbol table). Throws ParseError.
[[nodiscard]] std::unique_ptr<Expr> parse_expr(std::string_view text,
                                               const SymbolTable* symtab);

/// Canonical printable form (fully parenthesized compounds). Guaranteed
/// to re-parse to a structurally identical tree.
[[nodiscard]] std::string to_string(const Expr& e);

// --- chunk pruning support ---------------------------------------------

/// A closed interval over int64; the default is the full range.
struct Interval {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool full() const {
    return lo == std::numeric_limits<std::int64_t>::min() &&
           hi == std::numeric_limits<std::int64_t>::max();
  }
  [[nodiscard]] bool empty() const { return lo > hi; }
  [[nodiscard]] bool intersects(std::int64_t a, std::int64_t b) const {
    return !(b < lo || a > hi);
  }
};

/// Conservative per-chunk rejection bounds mined from an expression's
/// top-level AND chain. A chunk may be skipped only when these hints
/// prove no row in it can satisfy the predicate; everything the miner
/// does not understand simply widens the hints (never narrows), so
/// pruning is always sound.
struct PruneHints {
  Interval ts;   ///< rows must have ts within this interval
  Interval item; ///< rows must have item within this interval
  /// When set: rows must have func among these ids (sorted). An empty
  /// vector means the predicate cannot match any func at all.
  std::optional<std::vector<SymbolId>> funcs;

  [[nodiscard]] bool selective() const {
    return !ts.full() || !item.full() || funcs.has_value();
  }
};

[[nodiscard]] PruneHints extract_prune_hints(const Expr& e);

// --- batch (columnar) evaluation ---------------------------------------

namespace detail {

// The language's total int64 semantics, shared verbatim by the scalar
// interpreter (Expr::eval) and the batch kernels (BatchEvaluator) — both
// MUST route through these so vectorized and scalar evaluation are
// bit-identical by construction. Arithmetic wraps (two's complement via
// uint64), division/modulo by zero is 0, and INT64_MIN / -1 is defined
// (not UB): a for division, 0 for modulo.

[[nodiscard]] inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

[[nodiscard]] inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

[[nodiscard]] inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

[[nodiscard]] inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}

[[nodiscard]] inline std::int64_t safe_div(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}

[[nodiscard]] inline std::int64_t safe_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

} // namespace detail

/// One fixed-size slice of the columnar store: a span per column, all of
/// length `rows`. The batch evaluator reads only the columns the
/// expression references (the portable fallback reads all six), so
/// producers should fill every slot — ColumnarTrace::block() does.
struct ColumnBlock {
  std::array<std::span<const std::int64_t>, kNumFields> col{};
  std::size_t rows = 0;

  [[nodiscard]] std::span<const std::int64_t> operator[](Field f) const {
    return col[static_cast<std::size_t>(f)];
  }
};

/// Compile-time default for BatchEvaluator's portable mode: the
/// FLUXTRACE_PORTABLE_EVAL build (CMake -DFLUXTRACE_PORTABLE_EVAL=ON, the
/// CI fallback leg) routes every evaluation through the per-row scalar
/// interpreter instead of the vector kernels.
#if defined(FLUXTRACE_PORTABLE_EVAL)
inline constexpr bool kPortableEvalDefault = true;
#else
inline constexpr bool kPortableEvalDefault = false;
#endif

/// Evaluates one expression over whole column blocks at a time.
///
/// The vector path walks the AST once per block, computing every node
/// over all rows into reusable scratch vectors — tight branch-free loops
/// over contiguous int64 the compiler auto-vectorizes. `&&`/`||` are
/// evaluated eagerly ((a != 0) & (b != 0)); because the language's
/// semantics are total (nothing faults, nothing has side effects) this
/// is bit-identical to the scalar interpreter's short-circuit. The
/// portable path (portable = true, the build default under
/// FLUXTRACE_PORTABLE_EVAL) gathers each row into FieldVals and calls
/// Expr::eval — the proven-equivalent scalar fallback the fuzz tests
/// compare against.
///
/// Not thread-safe: the scratch is per-evaluator, so give each scan
/// worker its own instance (construction is one small AST walk).
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const Expr& e, bool portable = kPortableEvalDefault);

  /// Evaluate the expression for every row; writes block.rows values.
  void eval(const ColumnBlock& block, std::int64_t* out);

  /// Selection: indices (ascending) of rows where the expression is
  /// non-zero. `out_idx` needs room for block.rows entries; returns the
  /// match count.
  [[nodiscard]] std::size_t select(const ColumnBlock& block,
                                   std::uint32_t* out_idx);

  [[nodiscard]] bool portable() const { return portable_; }

 private:
  /// A node's value over the current block: either a computed vector
  /// (data, one value per row) or a broadcast constant (data == nullptr).
  /// Constant-folding literals here keeps `ts % 5 != 0` at two vector
  /// kernels instead of four.
  struct Operand {
    const std::int64_t* data = nullptr;
    std::int64_t c = 0;
  };

  Operand eval_node(const Expr& e, const ColumnBlock& block);
  std::int64_t* slot();

  const Expr* expr_;
  bool portable_;
  std::size_t n_ = 0;         // rows in the block being evaluated
  std::size_t next_slot_ = 0; // scratch cursor, reset per eval
  std::vector<std::vector<std::int64_t>> scratch_;
};

} // namespace fluxtrace::query
