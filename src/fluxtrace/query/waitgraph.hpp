// Waiting-dependency graphs over wait edges (ISSUE 8). base::WaitEdge
// records *why* a core made no progress; this module joins those edges
// into the per-item graph the `critical_path` and `blocked_by` pipeline
// stages render:
//
//   * `critical_path` — per item, the total time the item's handoffs
//     were blocked (the union of its blocking intervals, so overlapping
//     episodes are not double-counted) and the dominant blocker
//     (cause + resource + holder core with the largest summed blocking
//     time). One row per item, worst first: "item X was blocked N tsc,
//     mostly ring-full on ring R held by core C".
//   * `blocked_by` — the same edges grouped by blocker instead of item:
//     total/max blocked time per (cause, resource, holder).
//
// WaitGraph follows the AggPartial contract (query/partials.hpp): it is
// a mergeable partial. observe() folds one edge; merge() combines two
// partials; both are order-insensitive up to the finish functions, which
// sort internally — so sequential scans, block-parallel scans merged in
// block order, and StreamingQuery folds all render bit-identical rows.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {

/// One blocker identity: who was being waited on, and why.
struct WaitKey {
  std::uint8_t cause = 0; ///< WaitCause as stored (defines sort order)
  std::uint32_t resource = 0;
  std::uint32_t holder = 0;

  friend auto operator<=>(const WaitKey&, const WaitKey&) = default;
};

/// Aggregate blocking attributed to one blocker.
struct BlockerAgg {
  std::uint64_t edges = 0;
  std::uint64_t blocked = 0; ///< summed edge durations
  std::uint64_t max = 0;     ///< longest single episode
};

/// Per-item partial: the raw blocking intervals (unioned at finish) and
/// the per-blocker attribution used to name the dominant blocker.
struct ItemWait {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  std::map<WaitKey, std::uint64_t> by_blocker;
  std::uint64_t edges = 0;
};

/// Mergeable waiting-dependency graph partial. Items are keyed by the
/// edge's ItemId cast to signed (kNoItem groups under -1: ring-empty and
/// session episodes are real blocking but not bound to one item).
class WaitGraph {
 public:
  void observe(const WaitEdge& e);
  void merge(WaitGraph&& other);

  [[nodiscard]] std::uint64_t edges() const { return edges_; }

  std::map<std::int64_t, ItemWait> items;
  std::map<WaitKey, BlockerAgg> blockers;

 private:
  std::uint64_t edges_ = 0;
};

/// Render the `critical_path` stage: columns
/// item | blocked | edges | cause | resource | holder, one row per item,
/// sorted by blocked desc then item asc. Destructive (sorts interval
/// vectors in place) — pass a copy to keep the partial, like
/// AggPartial::finish.
[[nodiscard]] QueryResult finish_critical_path(WaitGraph g);

/// Render the `blocked_by` stage: columns
/// cause | resource | holder | edges | blocked | max, sorted by
/// (cause, resource, holder) asc.
[[nodiscard]] QueryResult finish_blocked_by(const WaitGraph& g);

} // namespace fluxtrace::query
