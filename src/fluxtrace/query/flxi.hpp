// The FLXI index sidecar (ISSUE 5): a compact per-chunk summary of a
// FLXT v2 trace that lets selective queries skip most of the file. The
// analysis path writes it opportunistically (the first full scan knows
// everything the index records); a reopen validates it and prunes.
//
//   file  := u32 magic "FLXI" | u32 version=2
//          | u64 trace_size | u32 trace_crc | u32 symtab_crc
//          | u32 flags | u32 n_chunks | u32 body_crc | body
//   body  := chunk*
//   chunk := u64 offset | u32 n_records
//          | i64 min_ts | i64 max_ts | i64 min_item | i64 max_item
//          | u32 n_funcs | (u32 func_id, u32 samples)*
//
// Only *sample* chunks are indexed: marker chunks are always decoded in
// full (windows are needed for item attribution no matter what is
// pruned). min/max item are the *attributed* ids — they depend on the
// marker stream (or, under register-id attribution, the sampled id
// register) and, like func ids, on the symbol table, which is why the
// header pins the trace bytes (size + CRC32), the symbol table
// (symtab_crc), and the attribution mode (flags bit 0 = register ids):
// any mismatch invalidates the sidecar and the engine falls back to a
// full scan. CRC discipline matches FLXT v2 — a truncated, bit-flipped,
// or hostile sidecar is *detected*, never trusted (decode_flxi returns
// nullopt; nothing throws on damage), and claimed element counts are
// checked against the bytes actually present before anything is
// allocated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fluxtrace/base/symbols.hpp"

namespace fluxtrace::io {
class TraceReader;
}

namespace fluxtrace::query {

class ColumnarTrace;

inline constexpr std::uint32_t kFlxiMagic = 0x49584c46; // "FLXI"
inline constexpr std::uint32_t kFlxiVersion = 2;

/// flags bit 0: item ids were attributed from the sampled id register
/// (`use_register_ids`) rather than from marker windows. The two modes
/// yield unrelated item ranges over the same bytes, so a sidecar is only
/// valid for the mode it was built under.
inline constexpr std::uint32_t kFlxiFlagRegisterIds = 1u << 0;
inline constexpr std::uint32_t kFlxiKnownFlags = kFlxiFlagRegisterIds;

/// Summary of one FLXT v2 sample chunk.
struct FlxiChunk {
  std::uint64_t offset = 0; ///< chunk header offset in the trace file
  std::uint32_t n_records = 0;
  std::int64_t min_ts = 0, max_ts = 0;
  /// Attributed item-id range (kNoItem rows read as -1). min > max means
  /// the chunk is empty.
  std::int64_t min_item = 0, max_item = 0;
  /// (func id, samples) pairs, sorted by id; unresolved ips are omitted.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> func_counts;

  friend bool operator==(const FlxiChunk&, const FlxiChunk&) = default;
};

struct FlxiIndex {
  std::uint64_t trace_size = 0;
  std::uint32_t trace_crc = 0;  ///< io::crc32 over the whole trace image
  std::uint32_t symtab_crc = 0; ///< symtab_crc() of the attributing table
  std::uint32_t flags = 0;      ///< kFlxiFlag* bits (attribution mode)
  std::vector<FlxiChunk> chunks; ///< sample chunks, in file order

  friend bool operator==(const FlxiIndex&, const FlxiIndex&) = default;
};

/// Fingerprint of a symbol table (names + address ranges).
[[nodiscard]] std::uint32_t symtab_crc(const SymbolTable& symtab);

/// Serialize / parse the sidecar image. decode_flxi returns nullopt on
/// *any* irregularity — bad magic/version, truncation, CRC mismatch,
/// counts inconsistent with the byte budget, trailing garbage.
[[nodiscard]] std::string encode_flxi(const FlxiIndex& index);
[[nodiscard]] std::optional<FlxiIndex> decode_flxi(std::string_view bytes);

/// Sidecar path convention: the trace path plus ".flxi".
[[nodiscard]] inline std::string flxi_path(const std::string& trace_path) {
  return trace_path + ".flxi";
}

/// File conveniences. save_flxi returns false (no throw) when the file
/// cannot be written — index persistence is opportunistic, never a
/// failure of the analysis itself. load_flxi returns nullopt for a
/// missing or damaged file alike.
bool save_flxi(const std::string& path, const FlxiIndex& index);
[[nodiscard]] std::optional<FlxiIndex> load_flxi(const std::string& path);

/// Build an index over a clean FLXT v2 image whose rows are already
/// decoded into `table` (the engine's cold full scan, the hub's ingest
/// refresh). `trace_crc` is io::crc32 over the whole image — passed in
/// because every caller has it already and re-hashing a multi-hundred-MB
/// image is the expensive part. Returns nullopt when the image is not
/// indexable: wrong format, a chunk walk that fails strict decode, or a
/// chunk layout that disagrees with the decoded row count (salvage).
[[nodiscard]] std::optional<FlxiIndex> build_flxi(const io::TraceReader& reader,
                                                  const ColumnarTrace& table,
                                                  const SymbolTable& symtab,
                                                  bool use_register_ids,
                                                  std::uint32_t trace_crc);

/// Outcome of refresh_sidecar, ordered from best to worst.
enum class SidecarStatus : std::uint8_t {
  Fresh,       ///< existing sidecar already pins these bytes + symtab + mode
  Rebuilt,     ///< sidecar (re)built and written
  Unindexable, ///< trace is not a clean v2 image; no sidecar is possible
  WriteFailed, ///< index built but the sidecar file could not be written
};
[[nodiscard]] const char* to_string(SidecarStatus s);

/// Validate-or-rebuild the FLXI sidecar of an on-disk trace: the shared
/// refresh path behind `flxt_recover --rebuild-index` and the hub's
/// ingest pipeline. A sidecar that already pins the current bytes,
/// symbol table, and attribution mode is left untouched (Fresh); a
/// missing/stale/damaged one is rebuilt from a full decode. Throws
/// io::TraceIoError only when the trace itself cannot be read at all.
[[nodiscard]] SidecarStatus refresh_sidecar(const std::string& trace_path,
                                            const SymbolTable& symtab,
                                            bool use_register_ids);

} // namespace fluxtrace::query
