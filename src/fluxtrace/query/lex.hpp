// Internal lexer shared by the expression parser (expr.cpp) and the
// query pipeline parser (engine.cpp). Not part of the public query API.
#pragma once

#include <cctype>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "fluxtrace/query/expr.hpp" // ParseError

namespace fluxtrace::query::detail {

enum class Tok : std::uint8_t {
  End,
  Number, ///< integer, or float when `is_float` (only `outliers` takes floats)
  Ident,
  Str, ///< quoted string, text holds the unescaped content
  Plus, Minus, Star, Slash, Percent,
  EqEq, Ne, Le, Ge, Lt, Gt,
  AndAnd, OrOr, Not,
  LParen, RParen,
  Pipe, Comma, Colon, Assign,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;     ///< identifier/string content
  std::size_t pos = 0;  ///< byte offset in the source
  std::int64_t num = 0; ///< Number value (integer part for floats)
  double fnum = 0.0;    ///< Number value as double
  bool is_float = false;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return cur_; }

  Token next() {
    Token t = cur_;
    advance();
    return t;
  }

  [[nodiscard]] bool at(Tok k) const { return cur_.kind == k; }

  /// Consume the current token if it matches `k`.
  bool accept(Tok k) {
    if (!at(k)) return false;
    advance();
    return true;
  }

  Token expect(Tok k, const char* what) {
    if (!at(k))

      throw ParseError(std::string("expected ") + what + " at '" +
                           describe(cur_) + "'",
                       cur_.pos);
    return next();
  }

  [[nodiscard]] static std::string describe(const Token& t) {
    switch (t.kind) {
      case Tok::End: return "end of query";
      case Tok::Number: return t.text;
      case Tok::Ident: return t.text;
      case Tok::Str: return "\"" + t.text + "\"";
      case Tok::Plus: return "+";
      case Tok::Minus: return "-";
      case Tok::Star: return "*";
      case Tok::Slash: return "/";
      case Tok::Percent: return "%";
      case Tok::EqEq: return "==";
      case Tok::Ne: return "!=";
      case Tok::Le: return "<=";
      case Tok::Ge: return ">=";
      case Tok::Lt: return "<";
      case Tok::Gt: return ">";
      case Tok::AndAnd: return "&&";
      case Tok::OrOr: return "||";
      case Tok::Not: return "!";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::Pipe: return "|";
      case Tok::Comma: return ",";
      case Tok::Colon: return ":";
      case Tok::Assign: return "=";
    }
    return "?";
  }

 private:
  void advance() {
    while (at_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[at_])) != 0) {
      ++at_;
    }
    cur_ = Token{};
    cur_.pos = at_;
    if (at_ >= src_.size()) {
      cur_.kind = Tok::End;
      return;
    }
    const char c = src_[at_];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = at_;
      while (at_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[at_])) != 0 ||
              src_[at_] == '_')) {
        ++at_;
      }
      cur_.kind = Tok::Ident;
      cur_.text = std::string(src_.substr(start, at_ - start));
      return;
    }
    if (c == '"' || c == '\'') {
      lex_string(c);
      return;
    }
    auto two = [&](char a, char b, Tok k) {
      if (src_[at_] == a && at_ + 1 < src_.size() && src_[at_ + 1] == b) {
        cur_.kind = k;
        at_ += 2;
        return true;
      }
      return false;
    };
    if (two('=', '=', Tok::EqEq) || two('!', '=', Tok::Ne) ||
        two('<', '=', Tok::Le) || two('>', '=', Tok::Ge) ||
        two('&', '&', Tok::AndAnd) || two('|', '|', Tok::OrOr)) {
      return;
    }
    ++at_;
    switch (c) {
      case '+': cur_.kind = Tok::Plus; return;
      case '-': cur_.kind = Tok::Minus; return;
      case '*': cur_.kind = Tok::Star; return;
      case '/': cur_.kind = Tok::Slash; return;
      case '%': cur_.kind = Tok::Percent; return;
      case '<': cur_.kind = Tok::Lt; return;
      case '>': cur_.kind = Tok::Gt; return;
      case '!': cur_.kind = Tok::Not; return;
      case '(': cur_.kind = Tok::LParen; return;
      case ')': cur_.kind = Tok::RParen; return;
      case '|': cur_.kind = Tok::Pipe; return;
      case ',': cur_.kind = Tok::Comma; return;
      case ':': cur_.kind = Tok::Colon; return;
      case '=': cur_.kind = Tok::Assign; return;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         cur_.pos);
    }
  }

  void lex_number() {
    const std::size_t start = at_;
    std::uint64_t v = 0;
    bool overflow = false;
    if (src_[at_] == '0' && at_ + 1 < src_.size() &&
        (src_[at_ + 1] == 'x' || src_[at_ + 1] == 'X')) {
      at_ += 2;
      const std::size_t digits_start = at_;
      while (at_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[at_])) != 0) {
        const char d = src_[at_];
        const auto dv = static_cast<std::uint64_t>(
            std::isdigit(static_cast<unsigned char>(d)) != 0
                ? d - '0'
                : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10);
        if (v > (std::numeric_limits<std::uint64_t>::max() >> 4)) {
          overflow = true;
        }
        v = (v << 4) | dv;
        ++at_;
      }
      if (at_ == digits_start) {
        throw ParseError("malformed hex literal", start);
      }
    } else {
      while (at_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[at_])) != 0) {
        const auto dv = static_cast<std::uint64_t>(src_[at_] - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - dv) / 10) {
          overflow = true;
        }
        v = v * 10 + dv;
        ++at_;
      }
      if (at_ < src_.size() && src_[at_] == '.') {
        // Fractional literal: only the `outliers k=` stage accepts these;
        // the expression grammar rejects them at use.
        ++at_;
        double frac = 0.0, scale = 0.1;
        while (at_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[at_])) != 0) {
          frac += scale * (src_[at_] - '0');
          scale /= 10.0;
          ++at_;
        }
        cur_.kind = Tok::Number;
        cur_.is_float = true;
        cur_.fnum = static_cast<double>(v) + frac;
        cur_.num = static_cast<std::int64_t>(v);
        cur_.text = std::string(src_.substr(start, at_ - start));
        return;
      }
    }
    if (overflow ||
        v > static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max())) {
      // One value past int64 max is allowed so `item == -1`-style
      // sentinels can also be written as 18446744073709551615 / 0xffff...;
      // it wraps to the same bit pattern the columns store.
      if (!overflow) {
        cur_.kind = Tok::Number;
        cur_.num = static_cast<std::int64_t>(v);
        cur_.fnum = static_cast<double>(v);
        cur_.text = std::string(src_.substr(start, at_ - start));
        return;
      }
      throw ParseError("integer literal out of range", start);
    }
    cur_.kind = Tok::Number;
    cur_.num = static_cast<std::int64_t>(v);
    cur_.fnum = static_cast<double>(v);
    cur_.text = std::string(src_.substr(start, at_ - start));
  }

  void lex_string(char quote) {
    const std::size_t start = at_;
    ++at_; // opening quote
    std::string out;
    while (at_ < src_.size() && src_[at_] != quote) {
      char c = src_[at_];
      if (c == '\\' && at_ + 1 < src_.size()) {
        ++at_;
        c = src_[at_];
      }
      out.push_back(c);
      ++at_;
    }
    if (at_ >= src_.size()) {
      throw ParseError("unterminated string literal", start);
    }
    ++at_; // closing quote
    cur_.kind = Tok::Str;
    cur_.text = std::move(out);
  }

  std::string_view src_;
  std::size_t at_ = 0;
  Token cur_;
};

/// Parse one expression from an already-positioned lexer, stopping at the
/// first token the expression grammar cannot consume — which is how the
/// pipeline parser (engine.cpp) reads a `filter` stage up to its `|`.
/// Defined in expr.cpp.
[[nodiscard]] std::unique_ptr<Expr> parse_expr_tokens(
    Lexer& lex, const SymbolTable* symtab);

} // namespace fluxtrace::query::detail
