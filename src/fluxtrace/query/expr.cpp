#include "fluxtrace/query/expr.hpp"

#include <algorithm>

#include "fluxtrace/query/lex.hpp"

namespace fluxtrace::query {

namespace {

using detail::Lexer;
using detail::Tok;
using detail::Token;

// Wrap-around signed arithmetic: queries must never fault, and signed
// overflow is UB, so all arithmetic goes through uint64 two's-complement.
// The definitions live in expr.hpp's detail namespace, shared with the
// batch kernels (batch.cpp) so both evaluators agree bit-for-bit.
using detail::safe_div;
using detail::safe_mod;
using detail::wrap_add;
using detail::wrap_mul;
using detail::wrap_neg;
using detail::wrap_sub;

std::unique_ptr<Expr> make_lit(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Lit;
  e->lit = v;
  return e;
}

std::unique_ptr<Expr> make_binary(Expr::Op op, std::unique_ptr<Expr> lhs,
                                  std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

class ExprParser {
 public:
  ExprParser(Lexer& lex, const SymbolTable* symtab)
      : lex_(lex), symtab_(symtab) {}

  std::unique_ptr<Expr> parse() { return parse_or(); }

 private:
  static bool is_cmp(Tok k) {
    return k == Tok::EqEq || k == Tok::Ne || k == Tok::Lt || k == Tok::Le ||
           k == Tok::Gt || k == Tok::Ge;
  }

  static Expr::Op cmp_op(Tok k) {
    switch (k) {
      case Tok::EqEq: return Expr::Op::Eq;
      case Tok::Ne: return Expr::Op::Ne;
      case Tok::Lt: return Expr::Op::Lt;
      case Tok::Le: return Expr::Op::Le;
      case Tok::Gt: return Expr::Op::Gt;
      default: return Expr::Op::Ge;
    }
  }

  std::unique_ptr<Expr> parse_or() {
    auto lhs = parse_and();
    while (lex_.accept(Tok::OrOr)) {
      lhs = make_binary(Expr::Op::Or, std::move(lhs), parse_and());
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_and() {
    auto lhs = parse_cmp();
    while (lex_.accept(Tok::AndAnd)) {
      lhs = make_binary(Expr::Op::And, std::move(lhs), parse_cmp());
    }
    return lhs;
  }

  std::unique_ptr<Expr> make_func_match(const Token& str, bool negate) {
    if (symtab_ == nullptr) {
      throw ParseError("function-name comparison needs a symbol table, "
                       "which this context does not provide",
                       str.pos);
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::FuncMatch;
    e->func_name = str.text;
    e->negate = negate;
    for (SymbolId id = 0; id < symtab_->size(); ++id) {
      if ((*symtab_)[id].name == str.text) e->func_ids.push_back(id);
    }
    return e;
  }

  static bool is_field_ref(const Expr& e, Field f) {
    return e.kind == Expr::Kind::FieldRef && e.field == f;
  }

  std::unique_ptr<Expr> parse_cmp() {
    // String on the left: "name" ==/!= func.
    if (lex_.at(Tok::Str)) {
      const Token str = lex_.next();
      const Token op = lex_.next();
      if (!is_cmp(op.kind) ||
          (cmp_op(op.kind) != Expr::Op::Eq && cmp_op(op.kind) != Expr::Op::Ne)) {
        throw ParseError("string literal only valid in ==/!= against func",
                         str.pos);
      }
      auto rhs = parse_sum();
      if (!is_field_ref(*rhs, Field::Func)) {
        throw ParseError("string literal only valid in ==/!= against func",
                         str.pos);
      }
      return make_func_match(str, cmp_op(op.kind) == Expr::Op::Ne);
    }

    auto lhs = parse_sum();
    if (!is_cmp(lex_.peek().kind)) return lhs;
    const Token op = lex_.next();

    // func ==/!= "name".
    if (lex_.at(Tok::Str)) {
      const Token str = lex_.next();
      const Expr::Op o = cmp_op(op.kind);
      if (!is_field_ref(*lhs, Field::Func) ||
          (o != Expr::Op::Eq && o != Expr::Op::Ne)) {
        throw ParseError("string literal only valid in ==/!= against func",
                         str.pos);
      }
      return make_func_match(str, o == Expr::Op::Ne);
    }

    auto rhs = parse_sum();
    if (is_cmp(lex_.peek().kind)) {
      throw ParseError("chained comparison; parenthesize and combine with &&",
                       lex_.peek().pos);
    }
    return make_binary(cmp_op(op.kind), std::move(lhs), std::move(rhs));
  }

  std::unique_ptr<Expr> parse_sum() {
    auto lhs = parse_term();
    while (lex_.at(Tok::Plus) || lex_.at(Tok::Minus)) {
      const Tok k = lex_.next().kind;
      lhs = make_binary(k == Tok::Plus ? Expr::Op::Add : Expr::Op::Sub,
                        std::move(lhs), parse_term());
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_term() {
    auto lhs = parse_unary();
    while (lex_.at(Tok::Star) || lex_.at(Tok::Slash) || lex_.at(Tok::Percent)) {
      const Tok k = lex_.next().kind;
      const Expr::Op op = k == Tok::Star    ? Expr::Op::Mul
                          : k == Tok::Slash ? Expr::Op::Div
                                            : Expr::Op::Mod;
      lhs = make_binary(op, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_unary() {
    if (lex_.accept(Tok::Not)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->op = Expr::Op::Not;
      e->lhs = parse_unary();
      return e;
    }
    if (lex_.accept(Tok::Minus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->op = Expr::Op::Neg;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  std::unique_ptr<Expr> parse_primary() {
    if (lex_.at(Tok::Number)) {
      const Token t = lex_.next();
      if (t.is_float) {
        throw ParseError("floating-point literals are not valid in "
                         "expressions (integer cycles only)",
                         t.pos);
      }
      return make_lit(t.num);
    }
    if (lex_.at(Tok::Ident)) {
      const Token t = lex_.next();
      const auto f = field_from_name(t.text);
      if (!f.has_value()) {
        throw ParseError("unknown field '" + t.text +
                             "' (have: item func core ts dur ip)",
                         t.pos);
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::FieldRef;
      e->field = *f;
      return e;
    }
    if (lex_.accept(Tok::LParen)) {
      auto e = parse_or();
      lex_.expect(Tok::RParen, "')'");
      return e;
    }
    throw ParseError("expected a value at '" +
                         Lexer::describe(lex_.peek()) + "'",
                     lex_.peek().pos);
  }

  Lexer& lex_;
  const SymbolTable* symtab_;
};

} // namespace

std::optional<Field> field_from_name(std::string_view name) {
  if (name == "item") return Field::Item;
  if (name == "func") return Field::Func;
  if (name == "core") return Field::Core;
  if (name == "ts") return Field::Ts;
  if (name == "dur") return Field::Dur;
  if (name == "ip") return Field::Ip;
  return std::nullopt;
}

std::int64_t Expr::eval(const FieldVals& row) const {
  switch (kind) {
    case Kind::Lit: return lit;
    case Kind::FieldRef: return row.get(field);
    case Kind::FuncMatch: {
      const std::int64_t f = row.get(Field::Func);
      const bool in =
          f >= 0 && std::binary_search(func_ids.begin(), func_ids.end(),
                                       static_cast<SymbolId>(f));
      return (in != negate) ? 1 : 0;
    }
    case Kind::Unary: {
      const std::int64_t a = lhs->eval(row);
      return op == Op::Not ? (a == 0 ? 1 : 0) : wrap_neg(a);
    }
    case Kind::Binary: break;
  }
  // Logical ops short-circuit so `core != 0 && ts / core > 5`-style
  // guards behave as written.
  if (op == Op::And) {
    return (lhs->test(row) && rhs->test(row)) ? 1 : 0;
  }
  if (op == Op::Or) {
    return (lhs->test(row) || rhs->test(row)) ? 1 : 0;
  }
  const std::int64_t a = lhs->eval(row);
  const std::int64_t b = rhs->eval(row);
  switch (op) {
    case Op::Add: return wrap_add(a, b);
    case Op::Sub: return wrap_sub(a, b);
    case Op::Mul: return wrap_mul(a, b);
    case Op::Div: return safe_div(a, b);
    case Op::Mod: return safe_mod(a, b);
    case Op::Eq: return a == b ? 1 : 0;
    case Op::Ne: return a != b ? 1 : 0;
    case Op::Lt: return a < b ? 1 : 0;
    case Op::Le: return a <= b ? 1 : 0;
    case Op::Gt: return a > b ? 1 : 0;
    case Op::Ge: return a >= b ? 1 : 0;
    case Op::And:
    case Op::Or:
    case Op::Not:
    case Op::Neg: break; // handled above
  }
  return 0;
}

unsigned Expr::fields_used() const {
  switch (kind) {
    case Kind::Lit: return 0;
    case Kind::FieldRef: return field_bit(field);
    case Kind::FuncMatch: return field_bit(Field::Func);
    case Kind::Unary: return lhs->fields_used();
    case Kind::Binary: return lhs->fields_used() | rhs->fields_used();
  }
  return 0;
}

void Expr::bind_check(unsigned available, std::string_view context) const {
  const unsigned missing = fields_used() & ~available;
  if (missing == 0) return;
  for (std::size_t i = 0; i < kNumFields; ++i) {
    if ((missing & (1u << i)) != 0) {
      throw ParseError("field '" +
                           std::string(to_string(static_cast<Field>(i))) +
                           "' is not available in " + std::string(context),
                       0);
    }
  }
}

bool Expr::equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::Lit: return lit == other.lit;
    case Kind::FieldRef: return field == other.field;
    case Kind::FuncMatch:
      return func_name == other.func_name && negate == other.negate &&
             func_ids == other.func_ids;
    case Kind::Unary: return op == other.op && lhs->equals(*other.lhs);
    case Kind::Binary:
      return op == other.op && lhs->equals(*other.lhs) &&
             rhs->equals(*other.rhs);
  }
  return false;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->op = op;
  e->lit = lit;
  e->field = field;
  e->func_ids = func_ids;
  e->func_name = func_name;
  e->negate = negate;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  return e;
}

std::unique_ptr<Expr> parse_expr(std::string_view text,
                                 const SymbolTable* symtab) {
  detail::Lexer lex(text);
  ExprParser p(lex, symtab);
  auto e = p.parse();
  if (!lex.at(detail::Tok::End)) {
    throw ParseError("trailing input at '" +
                         detail::Lexer::describe(lex.peek()) + "'",
                     lex.peek().pos);
  }
  return e;
}

namespace detail {

std::unique_ptr<Expr> parse_expr_tokens(Lexer& lex,
                                        const SymbolTable* symtab) {
  ExprParser p(lex, symtab);
  return p.parse();
}

} // namespace detail

namespace {

std::string_view op_text(Expr::Op op) {
  switch (op) {
    case Expr::Op::Add: return "+";
    case Expr::Op::Sub: return "-";
    case Expr::Op::Mul: return "*";
    case Expr::Op::Div: return "/";
    case Expr::Op::Mod: return "%";
    case Expr::Op::Eq: return "==";
    case Expr::Op::Ne: return "!=";
    case Expr::Op::Lt: return "<";
    case Expr::Op::Le: return "<=";
    case Expr::Op::Gt: return ">";
    case Expr::Op::Ge: return ">=";
    case Expr::Op::And: return "&&";
    case Expr::Op::Or: return "||";
    case Expr::Op::Not: return "!";
    case Expr::Op::Neg: return "-";
  }
  return "?";
}

void print_expr(std::string& out, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Lit:
      out += std::to_string(e.lit);
      return;
    case Expr::Kind::FieldRef:
      out += to_string(e.field);
      return;
    case Expr::Kind::FuncMatch:
      out += "func ";
      out += e.negate ? "!=" : "==";
      out += " \"";
      for (const char c : e.func_name) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return;
    case Expr::Kind::Unary:
      out += op_text(e.op);
      out += '(';
      print_expr(out, *e.lhs);
      out += ')';
      return;
    case Expr::Kind::Binary:
      out += '(';
      print_expr(out, *e.lhs);
      out += ' ';
      out += op_text(e.op);
      out += ' ';
      print_expr(out, *e.rhs);
      out += ')';
      return;
  }
}

} // namespace

std::string to_string(const Expr& e) {
  std::string out;
  print_expr(out, e);
  return out;
}

namespace {

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

void narrow(Interval& iv, Expr::Op op, std::int64_t lit) {
  switch (op) {
    case Expr::Op::Eq:
      iv.lo = std::max(iv.lo, lit);
      iv.hi = std::min(iv.hi, lit);
      break;
    case Expr::Op::Lt:
      if (lit == kI64Min) {
        iv.lo = 0;
        iv.hi = -1; // provably empty
      } else {
        iv.hi = std::min(iv.hi, lit - 1);
      }
      break;
    case Expr::Op::Le: iv.hi = std::min(iv.hi, lit); break;
    case Expr::Op::Gt:
      if (lit == kI64Max) {
        iv.lo = 0;
        iv.hi = -1;
      } else {
        iv.lo = std::max(iv.lo, lit + 1);
      }
      break;
    case Expr::Op::Ge: iv.lo = std::max(iv.lo, lit); break;
    default: break;
  }
}

Expr::Op mirror(Expr::Op op) {
  switch (op) {
    case Expr::Op::Lt: return Expr::Op::Gt;
    case Expr::Op::Le: return Expr::Op::Ge;
    case Expr::Op::Gt: return Expr::Op::Lt;
    case Expr::Op::Ge: return Expr::Op::Le;
    default: return op;
  }
}

void mine_conjunct(const Expr& e, PruneHints& hints) {
  if (e.kind == Expr::Kind::FuncMatch && !e.negate) {
    std::vector<SymbolId> ids = e.func_ids;
    if (hints.funcs.has_value()) {
      std::vector<SymbolId> both;
      std::set_intersection(hints.funcs->begin(), hints.funcs->end(),
                            ids.begin(), ids.end(), std::back_inserter(both));
      hints.funcs = std::move(both);
    } else {
      hints.funcs = std::move(ids);
    }
    return;
  }
  if (e.kind != Expr::Kind::Binary) return;

  // field <cmp> literal (either orientation).
  const Expr* fe = nullptr;
  const Expr* le = nullptr;
  Expr::Op op = e.op;
  if (e.lhs->kind == Expr::Kind::FieldRef && e.rhs->kind == Expr::Kind::Lit) {
    fe = e.lhs.get();
    le = e.rhs.get();
  } else if (e.lhs->kind == Expr::Kind::Lit &&
             e.rhs->kind == Expr::Kind::FieldRef) {
    fe = e.rhs.get();
    le = e.lhs.get();
    op = mirror(op);
  } else {
    return;
  }
  if (op != Expr::Op::Eq && op != Expr::Op::Lt && op != Expr::Op::Le &&
      op != Expr::Op::Gt && op != Expr::Op::Ge) {
    return;
  }
  if (fe->field == Field::Ts) {
    narrow(hints.ts, op, le->lit);
  } else if (fe->field == Field::Item) {
    narrow(hints.item, op, le->lit);
  }
}

} // namespace

PruneHints extract_prune_hints(const Expr& e) {
  PruneHints hints;
  // Walk the top-level AND chain; anything that is not a recognized
  // conjunct shape is simply skipped (widening, never narrowing).
  std::vector<const Expr*> stack{&e};
  while (!stack.empty()) {
    const Expr* cur = stack.back();
    stack.pop_back();
    if (cur->kind == Expr::Kind::Binary && cur->op == Expr::Op::And) {
      stack.push_back(cur->lhs.get());
      stack.push_back(cur->rhs.get());
      continue;
    }
    mine_conjunct(*cur, hints);
  }
  return hints;
}

} // namespace fluxtrace::query
