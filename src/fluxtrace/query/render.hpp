// Result rendering for the query engine: the three output shapes
// flxt_query exposes (aligned table, CSV, JSON) plus the --stats
// footer. All of them print the same QueryResult cells — Cell::str()
// is the single formatting point, so the golden-CSV smoke test pins
// every shape at once.
#pragma once

#include <iosfwd>

#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {

/// Aligned plain-text table (report::Table), numeric columns
/// right-aligned.
void print_table(std::ostream& os, const QueryResult& res);

/// RFC-4180 CSV with a header row (report::CsvWriter).
void print_csv(std::ostream& os, const QueryResult& res);

/// One JSON object: {"columns": [...], "rows": [[...], ...]}. Int/Real
/// cells are JSON numbers, Text cells are strings.
void print_json(std::ostream& os, const QueryResult& res);

/// Human-readable scan statistics ("rows 1000000 matched 4096, chunks
/// 977 read 31 pruned 946 (index), threads 8").
void print_stats(std::ostream& os, const ScanStats& stats);

} // namespace fluxtrace::query
