// Streaming query execution over a live capture (ISSUE 6): the `--follow`
// half of the trace query engine.
//
// A StreamingQuery consumes the incremental TraceData batches an
// io::TraceFollower commits and evaluates a parsed pipeline continuously,
// with the *marker window* (one item's Enter→Leave residence on one core,
// paper §III-C) as the unit of streaming progress:
//
//   * markers open and close per-core item windows incrementally;
//   * samples buffer per core until the core's watermark (max timestamp
//     seen on that core) passes a window's leave edge — only then is the
//     window closed and its samples attributed, so a chunk arriving out
//     of order between cores can never mis-attribute a row;
//   * each closed window's rows flow through the pipeline's filter, fold
//     into running GroupPartial accumulators (partials.hpp — the exact
//     merge algebra the batch engine uses), and feed the continuously
//     evaluated `outliers` detector, which raises an alert (and an obs
//     counter) in the same ingest() call that closed the window — i.e.
//     within one poll interval of the window closing;
//   * snapshot() finishes a *copy* of the partials into a batch-shaped
//     QueryResult (same columns, same cell values) at any moment.
//
// Windowed dur semantics: a streamed row's dur is the first-to-last
// sample span of its {item, func} bucket *within its window*, summed over
// the windows seen so far — for traces where an item's work on a function
// lands in one window (the common pinned-worker case) this is exactly the
// batch engine's cross-trace span; when work straddles windows the
// streamed value is the sum of the per-window spans, which is the only
// quantity a bounded-memory follower can know without replaying the file.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/io/trace_file.hpp"
#include "fluxtrace/query/engine.hpp"
#include "fluxtrace/query/partials.hpp"
#include "fluxtrace/query/waitgraph.hpp"

namespace fluxtrace::query {

/// One continuously-evaluated outlier detection, raised by the ingest()
/// call that closed the offending window.
struct StreamAlert {
  ItemId item = kNoItem;
  SymbolId func = kInvalidSymbol;
  std::uint32_t core = 0;
  Tsc window_enter = 0;
  Tsc window_leave = 0;
  Tsc elapsed = 0;   ///< the {item, func} span that tripped the detector
  double mean = 0.0; ///< function's running mean at detection time
  double sigma = 0.0;
  double sigmas = 0.0; ///< deviation in sigmas
};

/// One marker window the stream closed, with what the pipeline made of it.
struct WindowResult {
  ItemId item = kNoItem;
  std::uint32_t core = 0;
  Tsc enter = 0;
  Tsc leave = 0;
  std::uint64_t rows = 0;         ///< samples attributed to the window
  std::uint64_t rows_matched = 0; ///< of those, rows passing the filter
  std::vector<StreamAlert> alerts;
};

struct StreamStats {
  std::uint64_t batches = 0;
  std::uint64_t markers = 0;
  std::uint64_t samples = 0;
  std::uint64_t wait_edges = 0; ///< wait edges ingested (wait stages)
  std::uint64_t windows_closed = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t rows_unattributed = 0; ///< aged out below any window
  std::uint64_t alerts = 0;
  std::uint64_t enters_unmatched = 0;  ///< open windows at flush
};

struct StreamOptions {
  /// Row-mode pipelines keep at most this many most-recent rows for
  /// snapshot() — the live tail a follower can afford to hold.
  std::size_t row_tail = 4096;
  /// Samples older than the core watermark by more than this slack that
  /// still match no window are counted unattributed and dropped.
  Tsc attribution_slack = 0;
  /// Evaluate the filter through the per-row scalar interpreter instead
  /// of the vector kernels (bit-identical either way).
  bool portable_eval = kPortableEvalDefault;
};

class StreamingQuery {
 public:
  /// `q` must not use `select` with `top by` columns that group mode
  /// would reject in batch; anything parse_query accepts runs. The
  /// symbol table resolves sample ips to functions exactly as the
  /// columnar build does.
  StreamingQuery(Query q, SymbolTable symtab, StreamOptions opts = {});

  /// Fold one follower batch in. Returns the windows this batch closed,
  /// in (leave, core) order — alerts ride on their window.
  std::vector<WindowResult> ingest(const io::TraceData& batch);

  /// End of stream: close every still-open window at its core watermark
  /// (synthetic leave — mirrors windows_from_markers' degraded path) and
  /// attribute the remaining buffered samples.
  std::vector<WindowResult> flush();

  /// Batch-shaped result from the partials accumulated so far: the same
  /// columns and cells QueryEngine::run would produce over the rows that
  /// have flowed through. Non-destructive; callable per poll.
  [[nodiscard]] QueryResult snapshot() const;

  [[nodiscard]] const StreamStats& stats() const { return stats_; }
  [[nodiscard]] const Query& query() const { return query_; }
  [[nodiscard]] const SymbolTable& symtab() const { return symtab_; }

 private:
  struct OpenWindow {
    ItemId item = kNoItem;
    Tsc enter = 0;
  };
  struct PendingSample {
    Tsc tsc = 0;
    std::uint64_t ip = 0;
  };
  struct CoreState {
    std::vector<OpenWindow> open; ///< innermost last (nesting stack)
    std::deque<PendingSample> pending;
    Tsc watermark = 0;
    /// Closed but not yet sealed: leave edge waits for the watermark.
    struct ClosedWindow {
      ItemId item = kNoItem;
      Tsc enter = 0;
      Tsc leave = 0;
    };
    std::vector<ClosedWindow> closed;
  };

  void seal_ready_windows(std::uint32_t core, CoreState& cs, bool force,
                          std::vector<WindowResult>& out);
  void emit_window(std::uint32_t core, ItemId item, Tsc enter, Tsc leave,
                   CoreState& cs, std::vector<WindowResult>& out);
  /// Fold window row `row` (an index into wincols_) into the pipeline
  /// state; the filter has already accepted it.
  void fold_matched(std::size_t row, WindowResult& w);

  Query query_;
  SymbolTable symtab_;
  StreamOptions opts_;

  std::map<std::uint32_t, CoreState> cores_;

  // Running pipeline state (the partials the batch engine would merge).
  std::map<std::vector<std::int64_t>, GroupPartial> groups_;
  std::deque<std::vector<Cell>> row_tail_;
  std::optional<core::FluctuationDetector> detector_;
  /// Wait-stage pipelines fold edges here instead (ISSUE 8); the window
  /// machinery above never engages for them.
  WaitGraph wait_graph_;

  // Batch filter evaluation (ISSUE 7): each sealed window's rows gather
  // into these per-window column buffers (reused across windows) and the
  // filter runs once per window through the same BatchEvaluator the
  // batch engine scans with — identical values per row, so snapshots
  // stay bit-identical to the per-row interpreter.
  std::optional<BatchEvaluator> filter_eval_;
  std::array<std::vector<std::int64_t>, kNumFields> wincols_;
  std::vector<std::int64_t> filter_mask_;

  StreamStats stats_;
};

} // namespace fluxtrace::query
