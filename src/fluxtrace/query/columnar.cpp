#include "fluxtrace/query/columnar.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/trace_table.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::query {

namespace {

// Per-core windows with the same innermost-cover probe the integrator
// uses (integrator.cpp `locate`), so `item` here always agrees with what
// flxt_report would print for the same trace.
struct CoreWindows {
  std::vector<core::ItemWindow> ws;
  std::vector<Tsc> prefix_max_leave;
};

std::map<std::uint32_t, CoreWindows> windows_by_core(
    const std::vector<Marker>& markers) {
  std::map<std::uint32_t, CoreWindows> out;
  for (const core::ItemWindow& w :
       core::TraceIntegrator::windows_from_markers(markers)) {
    out[w.core].ws.push_back(w);
  }
  for (auto& [c, cw] : out) {
    std::sort(cw.ws.begin(), cw.ws.end(),
              [](const core::ItemWindow& a, const core::ItemWindow& b) {
                return a.enter < b.enter;
              });
    cw.prefix_max_leave.resize(cw.ws.size());
    Tsc running = 0;
    for (std::size_t i = 0; i < cw.ws.size(); ++i) {
      running = std::max(running, cw.ws[i].leave);
      cw.prefix_max_leave[i] = running;
    }
  }
  return out;
}

ItemId locate(const std::map<std::uint32_t, CoreWindows>& win_by_core,
              std::uint32_t core, Tsc tsc) {
  auto it = win_by_core.find(core);
  if (it == win_by_core.end()) return kNoItem;
  const std::vector<core::ItemWindow>& ws = it->second.ws;
  const std::vector<Tsc>& pmax = it->second.prefix_max_leave;
  auto wit = std::upper_bound(
      ws.begin(), ws.end(), tsc,
      [](Tsc t, const core::ItemWindow& w) { return t < w.enter; });
  while (wit != ws.begin()) {
    const std::size_t idx = static_cast<std::size_t>(wit - ws.begin()) - 1;
    if (pmax[idx] < tsc) break;
    --wit;
    if (tsc <= wit->leave) return wit->item;
  }
  return kNoItem;
}

} // namespace

ColumnarTrace ColumnarTrace::build(const io::TraceData& data,
                                   const SymbolTable& symtab,
                                   const BuildOptions& opts) {
  OBS_SPAN("query.columnar_build");
  ColumnarTrace t;
  const std::size_t n = data.samples.size();
  t.item_.resize(n);
  t.func_.resize(n);
  t.core_.resize(n);
  t.ts_.resize(n);
  t.dur_.resize(n);
  t.ip_.resize(n);

  const auto win_by_core = windows_by_core(data.markers);

  // Pass 1: attribute item + func per row, and accumulate the per-core
  // {item, func} bucket spans the dur column derives from.
  struct Span {
    Tsc first = std::numeric_limits<Tsc>::max();
    Tsc last = 0;
    std::uint64_t samples = 0;
  };
  // Key: (item, func) outer, core inner — mirrors TraceTable's layout so
  // dur sums per-core spans exactly like TraceTable::elapsed.
  struct PairHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p)
        const {
      return std::hash<std::uint64_t>{}(p.first * 0x9e3779b97f4a7c15ull ^
                                        p.second);
    }
  };
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                     std::map<std::uint32_t, Span>, PairHash>
      buckets;

  for (std::size_t i = 0; i < n; ++i) {
    const PebsSample& s = data.samples[i];
    t.ts_[i] = static_cast<std::int64_t>(s.tsc);
    t.ip_[i] = static_cast<std::int64_t>(s.ip);
    t.core_[i] = static_cast<std::int64_t>(s.core);

    const ItemId item = opts.use_register_ids
                            ? s.regs.get(kItemIdReg)
                            : locate(win_by_core, s.core, s.tsc);
    t.item_[i] = static_cast<std::int64_t>(item);

    const auto fn = symtab.resolve(s.ip);
    t.func_[i] = fn.has_value() ? static_cast<std::int64_t>(*fn) : -1;

    if (item != kNoItem && fn.has_value()) {
      Span& sp = buckets[{item, *fn}][s.core];
      sp.first = std::min(sp.first, s.tsc);
      sp.last = std::max(sp.last, s.tsc);
      ++sp.samples;
    }
  }

  // Pass 2: per-bucket elapsed (>=2 samples per core, summed over cores),
  // then broadcast onto the rows.
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t,
                     PairHash>
      elapsed;
  elapsed.reserve(buckets.size());
  for (const auto& [key, cores] : buckets) {
    std::uint64_t total = 0;
    for (const auto& [c, sp] : cores) {
      if (sp.samples >= 2) total += sp.last - sp.first;
    }
    elapsed.emplace(key, static_cast<std::int64_t>(total));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (t.item_[i] != -1 && t.func_[i] != -1) {
      const auto it = elapsed.find({static_cast<std::uint64_t>(t.item_[i]),
                                    static_cast<std::uint64_t>(t.func_[i])});
      if (it != elapsed.end()) t.dur_[i] = it->second;
    }
  }
  return t;
}

} // namespace fluxtrace::query
