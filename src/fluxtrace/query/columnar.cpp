#include "fluxtrace/query/columnar.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/core/integrator.hpp"
#include "fluxtrace/core/trace_table.hpp"
#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::query {

namespace {

constexpr std::size_t idx(Field f) { return static_cast<std::size_t>(f); }

// Per-core windows with the same innermost-cover probe the integrator
// uses (integrator.cpp `locate`), so `item` here always agrees with what
// flxt_report would print for the same trace.
struct CoreWindows {
  std::vector<core::ItemWindow> ws;
  std::vector<Tsc> prefix_max_leave;
};

std::map<std::uint32_t, CoreWindows> windows_by_core(
    const std::vector<Marker>& markers) {
  std::map<std::uint32_t, CoreWindows> out;
  for (const core::ItemWindow& w :
       core::TraceIntegrator::windows_from_markers(markers)) {
    out[w.core].ws.push_back(w);
  }
  for (auto& [c, cw] : out) {
    std::sort(cw.ws.begin(), cw.ws.end(),
              [](const core::ItemWindow& a, const core::ItemWindow& b) {
                return a.enter < b.enter;
              });
    cw.prefix_max_leave.resize(cw.ws.size());
    Tsc running = 0;
    for (std::size_t i = 0; i < cw.ws.size(); ++i) {
      running = std::max(running, cw.ws[i].leave);
      cw.prefix_max_leave[i] = running;
    }
  }
  return out;
}

// Everything the attribution loop tracks per core: the window cursor
// (samples are near-sorted in time per core, so the previous row's
// window almost always covers the next row too) and the open {item,
// func} bucket run (consecutive same-item samples reuse the bucket
// without touching the global map).
struct CoreState {
  const CoreWindows* windows = nullptr;
  std::size_t cursor = 0;
  std::int64_t run_item = -1;
  std::vector<std::int32_t> fn_bucket; // per func id: bucket index or -1
  std::vector<std::int32_t> fn_span;   // per func id: span slot in bucket
  std::vector<std::uint32_t> touched;  // func ids to reset on item change
};

// The integrator's innermost-cover probe with a cursor fast path. The
// fast path fires only when the cursor window provably *is* the
// innermost cover (it contains tsc and the next window starts strictly
// later), so the result is identical to the full backward walk.
ItemId locate(CoreState& cs, Tsc tsc) {
  if (cs.windows == nullptr) return kNoItem;
  const std::vector<core::ItemWindow>& ws = cs.windows->ws;
  const std::vector<Tsc>& pmax = cs.windows->prefix_max_leave;
  const std::size_t cur = cs.cursor;
  if (cur < ws.size() && ws[cur].enter <= tsc && tsc <= ws[cur].leave &&
      (cur + 1 == ws.size() || tsc < ws[cur + 1].enter)) {
    return ws[cur].item;
  }
  auto wit = std::upper_bound(
      ws.begin(), ws.end(), tsc,
      [](Tsc t, const core::ItemWindow& w) { return t < w.enter; });
  while (wit != ws.begin()) {
    const std::size_t i = static_cast<std::size_t>(wit - ws.begin()) - 1;
    if (pmax[i] < tsc) break;
    --wit;
    if (tsc <= wit->leave) {
      cs.cursor = static_cast<std::size_t>(wit - ws.begin());
      return wit->item;
    }
  }
  return kNoItem;
}

} // namespace

void ColumnarTrace::attribute(const std::vector<Marker>& markers,
                              const SymbolTable& symtab,
                              const BuildOptions& opts) {
  const std::size_t n = n_rows_;
  const std::int64_t* ts = cols_[idx(Field::Ts)].data();
  const std::int64_t* ip = cols_[idx(Field::Ip)].data();
  const std::int64_t* core_c = cols_[idx(Field::Core)].data();
  std::int64_t* item_c = cols_[idx(Field::Item)].data();
  std::int64_t* func_c = cols_[idx(Field::Func)].data();
  std::int64_t* dur_c = cols_[idx(Field::Dur)].data();

  const std::map<std::uint32_t, CoreWindows> win_by_core =
      opts.use_register_ids ? std::map<std::uint32_t, CoreWindows>{}
                            : windows_by_core(markers);
  const std::size_t n_funcs = symtab.size();

  // {item, func} buckets, one CoreSpan per core that sampled the bucket
  // (usually one). Mirrors TraceTable's layout so dur sums per-core
  // spans exactly like TraceTable::elapsed.
  struct CoreSpan {
    std::uint32_t core;
    Tsc first;
    Tsc last;
    std::uint64_t samples;
  };
  struct Bucket {
    std::int64_t elapsed = 0;
    std::vector<CoreSpan> spans;
  };
  struct PairHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& p) const {
      return std::hash<std::uint64_t>{}(p.first * 0x9e3779b97f4a7c15ull ^
                                        p.second);
    }
  };
  std::vector<Bucket> buckets;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t,
                     PairHash>
      bucket_ids;
  std::vector<std::int32_t> row_bucket(n, -1);

  std::unordered_map<std::uint32_t, CoreState> cores;
  CoreState* cs = nullptr;
  std::uint32_t cs_core = 0;
  // One-entry ip -> func cache: PEBS ips repeat heavily (hot loops), and
  // symtab.resolve is a binary search per miss.
  std::uint64_t cached_ip = ~std::uint64_t{0};
  std::int64_t cached_fn = -1;
  bool cache_valid = false;

  for (std::size_t i = 0; i < n; ++i) {
    const auto core = static_cast<std::uint32_t>(core_c[i]);
    if (cs == nullptr || core != cs_core) {
      CoreState& state = cores[core];
      if (state.fn_bucket.empty() && n_funcs > 0) {
        state.fn_bucket.assign(n_funcs, -1);
        state.fn_span.assign(n_funcs, -1);
      }
      if (!opts.use_register_ids && state.windows == nullptr) {
        const auto wit = win_by_core.find(core);
        if (wit != win_by_core.end()) state.windows = &wit->second;
      }
      cs = &state;
      cs_core = core;
    }
    const Tsc tsc = static_cast<Tsc>(ts[i]);

    std::int64_t item;
    if (opts.use_register_ids) {
      item = item_c[i]; // pre-filled from the sampled register
    } else {
      item = static_cast<std::int64_t>(locate(*cs, tsc));
      item_c[i] = item;
    }

    const auto uip = static_cast<std::uint64_t>(ip[i]);
    std::int64_t fn;
    if (cache_valid && uip == cached_ip) {
      fn = cached_fn;
    } else {
      const auto r = symtab.resolve(uip);
      fn = r.has_value() ? static_cast<std::int64_t>(*r) : -1;
      cached_ip = uip;
      cached_fn = fn;
      cache_valid = true;
    }
    func_c[i] = fn;

    if (item != -1 && fn >= 0) {
      if (item != cs->run_item) {
        for (const std::uint32_t f : cs->touched) cs->fn_bucket[f] = -1;
        cs->touched.clear();
        cs->run_item = item;
      }
      const auto fi = static_cast<std::size_t>(fn);
      std::int32_t b = cs->fn_bucket[fi];
      if (b < 0) {
        const auto [it, inserted] = bucket_ids.try_emplace(
            {static_cast<std::uint64_t>(item), static_cast<std::uint64_t>(fn)},
            static_cast<std::uint32_t>(buckets.size()));
        if (inserted) buckets.emplace_back();
        b = static_cast<std::int32_t>(it->second);
        Bucket& bk = buckets[static_cast<std::size_t>(b)];
        std::int32_t si = -1;
        for (std::size_t k = 0; k < bk.spans.size(); ++k) {
          if (bk.spans[k].core == core) {
            si = static_cast<std::int32_t>(k);
            break;
          }
        }
        if (si < 0) {
          si = static_cast<std::int32_t>(bk.spans.size());
          bk.spans.push_back(CoreSpan{core, tsc, tsc, 0});
        }
        cs->fn_bucket[fi] = b;
        cs->fn_span[fi] = si;
        cs->touched.push_back(static_cast<std::uint32_t>(fi));
      }
      CoreSpan& sp = buckets[static_cast<std::size_t>(b)]
                         .spans[static_cast<std::size_t>(cs->fn_span[fi])];
      if (tsc < sp.first) sp.first = tsc;
      if (tsc > sp.last) sp.last = tsc;
      ++sp.samples;
      row_bucket[i] = b;
    }
  }

  // Per-bucket elapsed (>=2 samples per core, summed over cores), then
  // one gather broadcasts it onto the rows.
  for (Bucket& bk : buckets) {
    std::uint64_t total = 0;
    for (const CoreSpan& sp : bk.spans) {
      if (sp.samples >= 2) total += sp.last - sp.first;
    }
    bk.elapsed = static_cast<std::int64_t>(total);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (row_bucket[i] >= 0) {
      dur_c[i] = buckets[static_cast<std::size_t>(row_bucket[i])].elapsed;
    }
  }
}

void ColumnarTrace::build_zones() {
  zones_.clear();
  if (n_rows_ == 0 || zone_rows_ == 0) return;
  const std::size_t nz = (n_rows_ + zone_rows_ - 1) / zone_rows_;
  zones_.resize(nz);
  for (std::size_t z = 0; z < nz; ++z) {
    const std::size_t b = z * zone_rows_;
    const std::size_t e = std::min(b + zone_rows_, n_rows_);
    ZoneMap& zm = zones_[z];
    for (std::size_t f = 0; f < kNumFields; ++f) {
      const std::int64_t* c = cols_[f].data();
      std::int64_t mn = c[b];
      std::int64_t mx = c[b];
      for (std::size_t i = b + 1; i < e; ++i) {
        mn = std::min(mn, c[i]);
        mx = std::max(mx, c[i]);
      }
      zm.min[f] = mn;
      zm.max[f] = mx;
    }
  }
}

ColumnarTrace ColumnarTrace::build(const io::TraceData& data,
                                   const SymbolTable& symtab,
                                   const BuildOptions& opts) {
  OBS_SPAN("query.columnar_build");
  ColumnarTrace t;
  t.zone_rows_ = opts.zone_rows != 0 ? opts.zone_rows : 65536;
  const std::size_t n = data.samples.size();
  t.n_rows_ = n;
  for (auto& c : t.cols_) c.resize(n);

  std::int64_t* ts = t.cols_[idx(Field::Ts)].data();
  std::int64_t* ip = t.cols_[idx(Field::Ip)].data();
  std::int64_t* core_c = t.cols_[idx(Field::Core)].data();
  std::int64_t* item_c = t.cols_[idx(Field::Item)].data();
  for (std::size_t i = 0; i < n; ++i) {
    const PebsSample& s = data.samples[i];
    ts[i] = static_cast<std::int64_t>(s.tsc);
    ip[i] = static_cast<std::int64_t>(s.ip);
    core_c[i] = static_cast<std::int64_t>(s.core);
    if (opts.use_register_ids) {
      item_c[i] = static_cast<std::int64_t>(s.regs.get(kItemIdReg));
    }
  }
  t.attribute(data.markers, symtab, opts);
  t.build_zones();
  return t;
}

ColumnarTrace ColumnarTrace::from_reader(const io::TraceReader& reader,
                                         const SymbolTable& symtab,
                                         const BuildOptions& opts,
                                         unsigned n_threads) {
  if (io::is_chunked_format(reader.format())) {
    // Column-direct decode for the common case: a clean chunked image
    // (raw v2 or compressed v3 sample chunks — one chunk family). Any
    // structural or payload damage drops to the generic read-or-salvage
    // path below, which reproduces the old behaviour (and diagnostics)
    // exactly.
    try {
      OBS_SPAN("query.columnar_build");
      const std::string_view bytes = reader.bytes();
      const std::vector<io::V2ChunkRef> refs = io::index_trace_v2(bytes);
      ColumnarTrace t;
      t.zone_rows_ = opts.zone_rows != 0 ? opts.zone_rows : 65536;
      // Split the walk: markers decode inline (they feed attribution),
      // sample chunks get a prefix-summed row offset each so their
      // decodes can run concurrently into disjoint column slices.
      // Wait-edge chunks are skipped outright — attribution never reads
      // them, and inflating them here was pure waste.
      struct SampleChunk {
        const io::V2ChunkRef* ref;
        std::size_t row0;
      };
      std::vector<SampleChunk> schunks;
      std::size_t total_rows = 0;
      io::TraceData marker_data;
      for (const io::V2ChunkRef& ref : refs) {
        if (io::is_sample_chunk_type(ref.type)) {
          schunks.push_back({&ref, total_rows});
          total_rows += ref.n_records;
        } else if (io::is_marker_chunk_type(ref.type)) {
          io::decode_trace_v2_chunk(bytes, ref, marker_data);
        }
      }
      t.n_rows_ = total_rows;
      for (auto& c : t.cols_) c.resize(total_rows);
      const bool want_reg = opts.use_register_ids;
      const auto slice_for = [&](const SampleChunk& sc) {
        io::SampleColumnSlice s;
        s.tsc = t.cols_[idx(Field::Ts)].data() + sc.row0;
        s.ip = t.cols_[idx(Field::Ip)].data() + sc.row0;
        s.core = t.cols_[idx(Field::Core)].data() + sc.row0;
        if (want_reg) {
          s.reg = t.cols_[idx(Field::Item)].data() + sc.row0;
          s.reg_index = static_cast<unsigned>(kItemIdReg);
        }
        return s;
      };
      const auto decode_one = [&](const SampleChunk& sc) {
        const io::SampleColumnSlice s = slice_for(sc);
        if (sc.ref->type == io::kChunkTypeSamples) {
          io::decode_trace_v2_samples_slice(bytes, *sc.ref, s);
        } else {
          io::decode_v3_samples_into(bytes, *sc.ref, s);
        }
      };
      const unsigned n =
          n_threads != 0 ? n_threads
                         : std::max(1u, std::thread::hardware_concurrency());
      if (n <= 1 || schunks.size() <= 1) {
        for (const SampleChunk& sc : schunks) decode_one(sc);
      } else {
        // Damage inside a worker may not throw across the pool: flag it
        // and let the strict fallback reproduce the exact diagnostics.
        std::atomic<bool> any_bad{false};
        rt::ThreadPool pool(std::min<std::size_t>(n, schunks.size()));
        pool.parallel_for(schunks.size(), [&](std::size_t k) {
          try {
            decode_one(schunks[k]);
          } catch (const io::TraceIoError&) {
            any_bad.store(true, std::memory_order_relaxed);
          }
        });
        if (any_bad.load()) {
          throw io::TraceIoError("damaged sample chunk in parallel decode");
        }
      }
      t.attribute(marker_data.markers, symtab, opts);
      t.build_zones();
      return t;
    } catch (const io::TraceIoError&) {
      // fall through
    }
  }
  const io::TraceReader::ReadResult rr = reader.read_or_salvage(n_threads);
  ColumnarTrace t = build(rr.data, symtab, opts);
  t.salvaged_ = rr.salvaged;
  return t;
}

ColumnarTrace ColumnarTrace::open(const std::string& path,
                                  const SymbolTable& symtab,
                                  const BuildOptions& opts,
                                  unsigned n_threads) {
  return from_reader(io::open_trace(path), symtab, opts, n_threads);
}

} // namespace fluxtrace::query
