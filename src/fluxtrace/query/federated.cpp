#include "fluxtrace/query/federated.hpp"

#include <optional>
#include <thread>
#include <utility>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::query {

namespace {

struct FederatedMetrics {
  obs::Counter& queries = obs::metrics().counter("federated.queries");
  obs::Counter& members_ok = obs::metrics().counter("federated.members_ok");
  obs::Counter& members_salvaged =
      obs::metrics().counter("federated.members_salvaged");
  obs::Counter& members_quarantined =
      obs::metrics().counter("federated.members_quarantined");
  obs::Counter& members_skipped =
      obs::metrics().counter("federated.members_skipped");

  static FederatedMetrics& get() {
    static FederatedMetrics m;
    return m;
  }
};

void append_data(io::TraceData& all, io::TraceData&& part) {
  all.markers.insert(all.markers.end(), part.markers.begin(),
                     part.markers.end());
  all.samples.insert(all.samples.end(), part.samples.begin(),
                     part.samples.end());
  all.wait_edges.insert(all.wait_edges.end(), part.wait_edges.begin(),
                        part.wait_edges.end());
}

/// Per-member scan for the mergeable path. Runs inside a pool worker;
/// everything it touches is member-local.
void scan_member(const FederatedTrace& member, const SymbolTable& symtab,
                 const Query& q, const EngineOptions& eo,
                 TraceLedgerEntry& entry, std::optional<ExecPartial>& out) {
  entry.path = member.path;
  if (member.quarantined) {
    entry.state = TraceDisposition::Quarantined;
    entry.detail = "quarantined by catalog";
    return;
  }
  try {
    QueryEngine eng = QueryEngine::open(member.path, symtab, eo);
    ExecPartial part = eng.run_partial(q);
    if (part.stats.salvaged && part.stats.blocks_total == 0) {
      // Salvage produced no sample rows. Triage the file properly: a
      // markers-only recovery still counts as salvaged; a file salvage
      // recovered *nothing* from is quarantine-grade.
      const io::TraceTriage triage = io::classify_trace(eng.reader());
      if (triage.health == io::TraceHealth::Unrecoverable) {
        entry.state = TraceDisposition::Quarantined;
        entry.detail =
            "unrecoverable: " +
            std::to_string(triage.report.chunks_corrupt) +
            " corrupt chunks, " +
            std::to_string(triage.report.bytes_skipped +
                           triage.report.bytes_truncated) +
            " bytes lost";
        return;
      }
    }
    entry.state = part.stats.salvaged ? TraceDisposition::Salvaged
                                      : TraceDisposition::Ok;
    if (part.stats.salvaged) entry.detail = "partial rows (salvaged)";
    out = std::move(part);
  } catch (const io::TraceIoError& e) {
    entry.state = TraceDisposition::Skipped;
    entry.detail = e.what();
  }
}

} // namespace

std::size_t FederatedLedger::count(TraceDisposition d) const {
  std::size_t n = 0;
  for (const TraceLedgerEntry& e : traces) {
    if (e.state == d) ++n;
  }
  return n;
}

std::string FederatedLedger::summary() const {
  return "traces: " + std::to_string(count(TraceDisposition::Ok)) + " ok, " +
         std::to_string(count(TraceDisposition::Salvaged)) + " salvaged, " +
         std::to_string(count(TraceDisposition::Quarantined)) +
         " quarantined, " + std::to_string(count(TraceDisposition::Skipped)) +
         " skipped";
}

FederatedResult run_federated(const std::vector<FederatedTrace>& members,
                              const SymbolTable& symtab, const Query& q,
                              const FederatedOptions& opts) {
  OBS_SPAN("federated.run");
  FederatedMetrics::get().queries.inc();

  FederatedResult out;
  out.ledger.traces.resize(members.size());

  const bool concat_mode =
      q.outliers.has_value() || q.critical_path || q.blocked_by;

  if (!concat_mode) {
    // Mergeable stages: fan member scans out on the pool, merge the
    // partials in member index order — the thread count is never
    // observable in the result bytes.
    const unsigned fanout =
        opts.fanout_threads != 0
            ? opts.fanout_threads
            : std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::optional<ExecPartial>> partials(members.size());
    const auto scan_one = [&](std::size_t i) {
      EngineOptions eo = opts.engine;
      if (fanout > 1) eo.threads = 1; // members are the parallelism unit
      scan_member(members[i], symtab, q, eo, out.ledger.traces[i],
                  partials[i]);
    };
    if (fanout > 1 && members.size() > 1) {
      rt::ThreadPool pool(fanout);
      pool.parallel_for(members.size(), scan_one);
    } else {
      for (std::size_t i = 0; i < members.size(); ++i) scan_one(i);
    }

    std::vector<ExecPartial> contributed;
    contributed.reserve(members.size());
    for (std::optional<ExecPartial>& p : partials) {
      if (p.has_value()) contributed.push_back(std::move(*p));
    }
    out.result = QueryEngine::finish_partials(q, symtab,
                                              std::move(contributed));
  } else {
    // Order-sensitive stages (outliers, wait graphs): concatenate the
    // members' records in member order and evaluate as one trace —
    // identical to the single-trace answer by construction.
    io::TraceData all;
    for (std::size_t i = 0; i < members.size(); ++i) {
      TraceLedgerEntry& entry = out.ledger.traces[i];
      entry.path = members[i].path;
      if (members[i].quarantined) {
        entry.state = TraceDisposition::Quarantined;
        entry.detail = "quarantined by catalog";
        continue;
      }
      try {
        const io::TraceReader reader = io::open_trace(members[i].path);
        io::TraceReader::ReadResult rr = reader.read_or_salvage();
        const bool empty = rr.data.markers.empty() &&
                           rr.data.samples.empty() &&
                           rr.data.wait_edges.empty();
        if (rr.salvaged && empty) {
          entry.state = TraceDisposition::Quarantined;
          entry.detail = "unrecoverable: salvage recovered no records";
          continue;
        }
        entry.state = rr.salvaged ? TraceDisposition::Salvaged
                                  : TraceDisposition::Ok;
        if (rr.salvaged) entry.detail = "partial records (salvaged)";
        append_data(all, std::move(rr.data));
      } catch (const io::TraceIoError& e) {
        entry.state = TraceDisposition::Skipped;
        entry.detail = e.what();
      }
    }
    QueryEngine eng = QueryEngine::from_data(all, symtab, opts.engine);
    out.result = eng.run(q);
  }

  FederatedMetrics::get().members_ok.inc(
      out.ledger.count(TraceDisposition::Ok));
  FederatedMetrics::get().members_salvaged.inc(
      out.ledger.count(TraceDisposition::Salvaged));
  FederatedMetrics::get().members_quarantined.inc(
      out.ledger.count(TraceDisposition::Quarantined));
  FederatedMetrics::get().members_skipped.inc(
      out.ledger.count(TraceDisposition::Skipped));
  return out;
}

FederatedResult run_federated(const std::vector<FederatedTrace>& members,
                              const SymbolTable& symtab,
                              std::string_view query_text,
                              const FederatedOptions& opts) {
  return run_federated(members, symtab, parse_query(query_text, &symtab),
                       opts);
}

} // namespace fluxtrace::query
