// Federated query execution (ISSUE 9): evaluate one pipeline over a set
// of member traces as if over their concatenation, degrading per-trace
// instead of failing the query.
//
// Two execution strategies, picked by query shape:
//
//   * mergeable stages (filter/select/group/top/limit) — each member is
//     scanned independently (QueryEngine::run_partial, FLXI pruning and
//     all) and the per-member ExecPartials merge through the commutative
//     AggPartial algebra, finished in member order. Bit-identical to
//     evaluating the concatenated trace when the members are distinct
//     capture sessions (disjoint item ranges), because then neither the
//     marker-window attribution nor any {item, func} dur bucket spans a
//     member boundary.
//   * outliers / critical_path / blocked_by — the detector replay and
//     the wait graph are order-sensitive whole-fleet computations, so
//     the members' records are actually concatenated (in member order)
//     and evaluated as one trace. Identical by construction.
//
// Failure semantics: a member that cannot be read is *skipped*, one that
// salvages contributes its recovered subset (*salvaged*), one that
// salvages to nothing — or that the catalog already quarantined — is
// *quarantined*; the rest are *ok*. The ledger reports all four counts
// per query; only a query whose every member failed is itself an error
// (and even that returns an empty result + ledger, never a throw).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/query/engine.hpp"

namespace fluxtrace::query {

/// What became of one member trace during a federated evaluation.
enum class TraceDisposition : std::uint8_t { Ok, Salvaged, Quarantined, Skipped };

[[nodiscard]] constexpr std::string_view to_string(TraceDisposition d) {
  switch (d) {
    case TraceDisposition::Ok: return "ok";
    case TraceDisposition::Salvaged: return "salvaged";
    case TraceDisposition::Quarantined: return "quarantined";
    case TraceDisposition::Skipped: return "skipped";
  }
  return "?";
}

/// One member of a federated evaluation. `quarantined` is set by the
/// catalog for traces its manifest already condemned: they are counted
/// in the ledger but never opened (a hostile file stays unread).
struct FederatedTrace {
  std::string path;
  bool quarantined = false;
};

struct TraceLedgerEntry {
  std::string path;
  TraceDisposition state = TraceDisposition::Skipped;
  std::string detail; ///< skip reason (path + errno), salvage note, …
};

/// The per-query accounting the answer ships with: every member is in
/// exactly one state, so ok+salvaged+quarantined+skipped == members.
struct FederatedLedger {
  std::vector<TraceLedgerEntry> traces;

  [[nodiscard]] std::size_t count(TraceDisposition d) const;
  /// "traces: 5 ok, 1 salvaged, 0 quarantined, 2 skipped"
  [[nodiscard]] std::string summary() const;
};

struct FederatedOptions {
  /// Per-member engine options. In a parallel fan-out each member engine
  /// runs its scan single-threaded (members are the parallelism unit);
  /// `engine.threads` applies when fanout_threads <= 1.
  EngineOptions engine;
  /// Concurrent member scans; 0 = hardware concurrency, 1 = sequential.
  /// Never observable in the result bytes (partials merge in member
  /// order) — the fuzz suite asserts it.
  unsigned fanout_threads = 0;
};

struct FederatedResult {
  QueryResult result;
  FederatedLedger ledger;
};

/// Evaluate `q` over the members. Throws ParseError (string overload)
/// on a bad pipeline; member failures land in the ledger, never here.
[[nodiscard]] FederatedResult run_federated(
    const std::vector<FederatedTrace>& members, const SymbolTable& symtab,
    const Query& q, const FederatedOptions& opts = {});
[[nodiscard]] FederatedResult run_federated(
    const std::vector<FederatedTrace>& members, const SymbolTable& symtab,
    std::string_view query_text, const FederatedOptions& opts = {});

} // namespace fluxtrace::query
