// Fixed-width bit packing: n unsigned values of w bits each, packed
// little-endian (value i occupies bits [i*w, (i+1)*w) of the stream,
// low bits first). This is the payload layer of the frame-of-reference
// and dictionary codecs (column.hpp): both reduce a column to small
// unsigned integers and pack them at the minimal width.
//
// Decoding is bounds-driven: the byte budget for n values of width w is
// computed (and checked against the bytes actually present) before any
// output is allocated, so a forged count cannot provoke an oversized
// allocation or an out-of-range read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace fluxtrace::codec {

/// Bits needed to represent `v` (0 for v == 0).
[[nodiscard]] inline unsigned bit_width_u64(std::uint64_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Exact packed size of `n` values at `width` bits.
[[nodiscard]] inline std::size_t packed_bytes(std::size_t n, unsigned width) {
  return (n * width + 7) / 8;
}

/// Append `values` at `width` bits each (values wider than `width` bits
/// are masked). Width 0 appends nothing: the all-zeros column.
inline void pack_bits(std::string& out, std::span<const std::uint64_t> values,
                      unsigned width) {
  if (width == 0 || values.empty()) return;
  const std::size_t base = out.size();
  out.resize(base + packed_bytes(values.size(), width), '\0');
  auto* p = reinterpret_cast<unsigned char*>(out.data()) + base;
  std::size_t bitpos = 0;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (std::uint64_t v : values) {
    v &= mask;
    const std::size_t byte = bitpos >> 3;
    const unsigned off = static_cast<unsigned>(bitpos & 7);
    // The value spans bits [off, off + width) from p[byte]: at most 71
    // bits, i.e. 8 whole bytes of (v << off) plus one spill byte.
    const std::uint64_t lo = v << off;
    const unsigned span_bytes = (off + width + 7) / 8;
    for (unsigned k = 0; k < span_bytes && k < 8; ++k) {
      p[byte + k] |= static_cast<unsigned char>((lo >> (8 * k)) & 0xffu);
    }
    if (span_bytes > 8) {
      p[byte + 8] |= static_cast<unsigned char>((v >> (64 - off)) & 0xffu);
    }
    bitpos += width;
  }
}

/// Unpack `n` values of `width` bits from `b` starting at `pos` into
/// `out[0..n)`. Returns false (without touching `out`) when fewer than
/// packed_bytes(n, width) bytes remain or width > 64. Advances `pos`.
[[nodiscard]] inline bool unpack_bits(std::string_view b, std::size_t& pos,
                                      std::size_t n, unsigned width,
                                      std::uint64_t* out) {
  if (width > 64 || pos > b.size()) return false;
  const std::size_t need = packed_bytes(n, width);
  if (b.size() - pos < need) return false;
  if (width == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return true;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(b.data()) + pos;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte = bitpos >> 3;
    const unsigned off = static_cast<unsigned>(bitpos & 7);
    std::uint64_t v = 0;
    for (unsigned k = 0; k < 8 && byte + k < need; ++k) {
      v |= static_cast<std::uint64_t>(p[byte + k]) << (8 * k);
    }
    v >>= off;
    if (off != 0 && off + width > 64 && byte + 8 < need) {
      v |= static_cast<std::uint64_t>(p[byte + 8]) << (64 - off);
    }
    out[i] = v & mask;
    bitpos += width;
  }
  pos += need;
  return true;
}

} // namespace fluxtrace::codec
