#include "fluxtrace/codec/column.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "fluxtrace/codec/bitpack.hpp"
#include "fluxtrace/codec/varint.hpp"

namespace fluxtrace::codec {

namespace {

constexpr std::size_t kNoFit = std::numeric_limits<std::size_t>::max();

[[nodiscard]] std::uint64_t as_u64(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

[[nodiscard]] std::int64_t as_i64(std::uint64_t v) {
  return static_cast<std::int64_t>(v);
}

/// v[i] - v[i-1] with two's-complement wrap (defined in unsigned
/// arithmetic; the decoder reverses it with a wrapping add, so deltas
/// round-trip even across the full int64 range).
[[nodiscard]] std::int64_t wrap_delta(std::int64_t a, std::int64_t b) {
  return as_i64(as_u64(a) - as_u64(b));
}

// --- per-codec encoders ------------------------------------------------

void encode_raw64(std::span<const std::int64_t> v, std::string& out) {
  out.reserve(out.size() + v.size() * 8);
  for (std::int64_t x : v) {
    std::uint64_t u = as_u64(x);
    for (int k = 0; k < 8; ++k) {
      out.push_back(static_cast<char>((u >> (8 * k)) & 0xffu));
    }
  }
}

void encode_const(std::span<const std::int64_t> v, std::string& out) {
  put_varint(out, zigzag(v[0]));
}

void encode_varints(std::span<const std::int64_t> v, std::string& out) {
  for (std::int64_t x : v) put_varint(out, zigzag(x));
}

void encode_delta(std::span<const std::int64_t> v, std::string& out) {
  put_varint(out, zigzag(v[0]));
  for (std::size_t i = 1; i < v.size(); ++i) {
    put_varint(out, zigzag(wrap_delta(v[i], v[i - 1])));
  }
}

/// Sorted distinct values of `v` (empty result only for empty input).
[[nodiscard]] std::vector<std::int64_t> build_dict(
    std::span<const std::int64_t> v) {
  std::vector<std::int64_t> d(v.begin(), v.end());
  std::sort(d.begin(), d.end());
  d.erase(std::unique(d.begin(), d.end()), d.end());
  return d;
}

/// Dictionary layout: varint n_dict | zigzag varint d[0] | varint
/// (d[i]-d[i-1]-1) for i in [1,n_dict) | indices bit-packed at
/// bit_width(n_dict-1). Storing gap-minus-one makes a strictly sorted
/// dictionary the only expressible kind.
void encode_dict(std::span<const std::int64_t> v,
                 const std::vector<std::int64_t>& d, std::string& out) {
  put_varint(out, d.size());
  put_varint(out, zigzag(d[0]));
  for (std::size_t i = 1; i < d.size(); ++i) {
    put_varint(out, as_u64(d[i]) - as_u64(d[i - 1]) - 1);
  }
  const unsigned width = bit_width_u64(d.size() - 1);
  std::vector<std::uint64_t> idx(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    idx[i] = static_cast<std::uint64_t>(
        std::lower_bound(d.begin(), d.end(), v[i]) - d.begin());
  }
  pack_bits(out, idx, width);
}

[[nodiscard]] std::size_t dict_encoded_size(std::size_t n,
                                            const std::vector<std::int64_t>& d) {
  std::size_t s = varint_len(d.size()) + varint_len(zigzag(d[0]));
  for (std::size_t i = 1; i < d.size(); ++i) {
    s += varint_len(as_u64(d[i]) - as_u64(d[i - 1]) - 1);
  }
  return s + packed_bytes(n, bit_width_u64(d.size() - 1));
}

/// Frame-of-reference layout: zigzag varint min | u8 width | offsets
/// (v - min, unsigned wrap) bit-packed at `width`.
void encode_forpack(std::span<const std::int64_t> v, std::int64_t min,
                    unsigned width, std::string& out) {
  put_varint(out, zigzag(min));
  out.push_back(static_cast<char>(width));
  std::vector<std::uint64_t> offs(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    offs[i] = as_u64(v[i]) - as_u64(min);
  }
  pack_bits(out, offs, width);
}

// --- per-codec decoders (strict: every byte must be consumed) ---------

[[nodiscard]] bool decode_raw64(std::string_view b, std::size_t n,
                                std::int64_t* out) {
  if (b.size() != n * 8) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(b.data());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t u = 0;
    for (int k = 0; k < 8; ++k) {
      u |= static_cast<std::uint64_t>(p[i * 8 + k]) << (8 * k);
    }
    out[i] = as_i64(u);
  }
  return true;
}

[[nodiscard]] bool decode_const(std::string_view b, std::size_t n,
                                std::int64_t* out) {
  std::size_t pos = 0;
  std::uint64_t z = 0;
  if (!get_varint(b, pos, z) || pos != b.size()) return false;
  const std::int64_t v = unzigzag(z);
  for (std::size_t i = 0; i < n; ++i) out[i] = v;
  return true;
}

[[nodiscard]] bool decode_varints(std::string_view b, std::size_t n,
                                  std::int64_t* out) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z = 0;
    if (!get_varint(b, pos, z)) return false;
    out[i] = unzigzag(z);
  }
  return pos == b.size();
}

[[nodiscard]] bool decode_delta(std::string_view b, std::size_t n,
                                std::int64_t* out) {
  std::size_t pos = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z = 0;
    if (!get_varint(b, pos, z)) return false;
    acc = i == 0 ? static_cast<std::uint64_t>(unzigzag(z))
                 : acc + static_cast<std::uint64_t>(unzigzag(z));
    out[i] = as_i64(acc);
  }
  return pos == b.size();
}

[[nodiscard]] bool decode_dict(std::string_view b, std::size_t n,
                               std::int64_t* out) {
  std::size_t pos = 0;
  std::uint64_t n_dict = 0;
  if (!get_varint(b, pos, n_dict)) return false;
  // A dictionary never has more entries than rows, and the encoder caps
  // it at kMaxDictEntries — anything larger is forged, and rejecting it
  // here bounds the allocation below.
  if (n_dict == 0 || n_dict > n || n_dict > kMaxDictEntries) return false;
  std::vector<std::int64_t> d(static_cast<std::size_t>(n_dict));
  std::uint64_t z = 0;
  if (!get_varint(b, pos, z)) return false;
  d[0] = unzigzag(z);
  for (std::size_t i = 1; i < d.size(); ++i) {
    std::uint64_t gap = 0;
    if (!get_varint(b, pos, gap)) return false;
    d[i] = as_i64(as_u64(d[i - 1]) + gap + 1);
    if (d[i] <= d[i - 1]) return false; // wrapped: not a sorted dictionary
  }
  const unsigned width = bit_width_u64(n_dict - 1);
  std::vector<std::uint64_t> idx(n);
  if (!unpack_bits(b, pos, n, width, idx.data())) return false;
  if (pos != b.size()) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (idx[i] >= n_dict) return false; // forged index past the dictionary
    out[i] = d[static_cast<std::size_t>(idx[i])];
  }
  return true;
}

[[nodiscard]] bool decode_forpack(std::string_view b, std::size_t n,
                                  std::int64_t* out) {
  std::size_t pos = 0;
  std::uint64_t z = 0;
  if (!get_varint(b, pos, z)) return false;
  const std::uint64_t min = as_u64(unzigzag(z));
  if (pos >= b.size()) return false;
  const unsigned width = static_cast<unsigned char>(b[pos++]);
  if (width > 64) return false;
  std::vector<std::uint64_t> offs(n);
  if (!unpack_bits(b, pos, n, width, offs.data())) return false;
  if (pos != b.size()) return false;
  for (std::size_t i = 0; i < n; ++i) out[i] = as_i64(min + offs[i]);
  return true;
}

} // namespace

std::string_view column_codec_name(ColumnCodec c) {
  switch (c) {
  case ColumnCodec::Raw64: return "raw64";
  case ColumnCodec::Const: return "const";
  case ColumnCodec::Varint: return "varint";
  case ColumnCodec::DeltaVarint: return "delta";
  case ColumnCodec::Dict: return "dict";
  case ColumnCodec::ForPack: return "forpack";
  }
  return "?";
}

std::string encode_column(std::span<const std::int64_t> values,
                          ColumnCodec codec) {
  std::string out;
  if (values.empty()) {
    if (codec != ColumnCodec::Raw64) {
      throw std::invalid_argument("empty column encodes as Raw64 only");
    }
    return out;
  }
  switch (codec) {
  case ColumnCodec::Raw64:
    encode_raw64(values, out);
    return out;
  case ColumnCodec::Const:
    for (std::int64_t v : values) {
      if (v != values[0]) {
        throw std::invalid_argument("Const codec on a non-constant column");
      }
    }
    encode_const(values, out);
    return out;
  case ColumnCodec::Varint:
    encode_varints(values, out);
    return out;
  case ColumnCodec::DeltaVarint:
    encode_delta(values, out);
    return out;
  case ColumnCodec::Dict: {
    auto d = build_dict(values);
    if (d.size() > kMaxDictEntries) {
      throw std::invalid_argument("Dict codec: too many distinct values");
    }
    encode_dict(values, d, out);
    return out;
  }
  case ColumnCodec::ForPack: {
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    const unsigned width = bit_width_u64(as_u64(*mx) - as_u64(*mn));
    encode_forpack(values, *mn, width, out);
    return out;
  }
  }
  throw std::invalid_argument("unknown column codec");
}

EncodedColumn encode_column_best(std::span<const std::int64_t> values) {
  EncodedColumn enc;
  if (values.empty()) return enc; // Raw64, no bytes
  const std::size_t n = values.size();

  // One pass for min/max/equality and the varint/delta sums.
  std::int64_t mn = values[0];
  std::int64_t mx = values[0];
  bool all_equal = true;
  std::size_t varint_sz = 0;
  std::size_t delta_sz = varint_len(zigzag(values[0]));
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v = values[i];
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    all_equal = all_equal && v == values[0];
    varint_sz += varint_len(zigzag(v));
    if (i > 0) delta_sz += varint_len(zigzag(wrap_delta(v, values[i - 1])));
  }
  const std::size_t const_sz =
      all_equal ? varint_len(zigzag(values[0])) : kNoFit;
  const unsigned for_width = bit_width_u64(as_u64(mx) - as_u64(mn));
  const std::size_t for_sz =
      varint_len(zigzag(mn)) + 1 + packed_bytes(n, for_width);

  // The dictionary needs a sort; only bother when it could plausibly
  // win (ForPack already caps the damage, so skip huge cardinalities).
  std::vector<std::int64_t> dict;
  std::size_t dict_sz = kNoFit;
  if (!all_equal) {
    dict = build_dict(values);
    if (dict.size() <= kMaxDictEntries && dict.size() < n) {
      dict_sz = dict_encoded_size(n, dict);
    }
  }

  // Fixed preference order breaks size ties toward the simpler decode.
  struct Cand {
    ColumnCodec codec;
    std::size_t size;
  };
  const Cand cands[] = {
      {ColumnCodec::Const, const_sz},     {ColumnCodec::ForPack, for_sz},
      {ColumnCodec::DeltaVarint, delta_sz}, {ColumnCodec::Dict, dict_sz},
      {ColumnCodec::Varint, varint_sz},   {ColumnCodec::Raw64, n * 8},
  };
  Cand best = cands[0];
  for (const Cand& c : cands) {
    if (c.size < best.size) best = c;
  }

  enc.codec = best.codec;
  switch (best.codec) {
  case ColumnCodec::Const: encode_const(values, enc.bytes); break;
  case ColumnCodec::ForPack:
    encode_forpack(values, mn, for_width, enc.bytes);
    break;
  case ColumnCodec::DeltaVarint: encode_delta(values, enc.bytes); break;
  case ColumnCodec::Dict: encode_dict(values, dict, enc.bytes); break;
  case ColumnCodec::Varint: encode_varints(values, enc.bytes); break;
  case ColumnCodec::Raw64: encode_raw64(values, enc.bytes); break;
  }
  return enc;
}

bool decode_column(ColumnCodec codec, std::string_view payload, std::size_t n,
                   std::int64_t* out) {
  if (static_cast<std::uint8_t>(codec) >= kNumColumnCodecs) return false;
  if (n == 0) return payload.empty();
  switch (codec) {
  case ColumnCodec::Raw64: return decode_raw64(payload, n, out);
  case ColumnCodec::Const: return decode_const(payload, n, out);
  case ColumnCodec::Varint: return decode_varints(payload, n, out);
  case ColumnCodec::DeltaVarint: return decode_delta(payload, n, out);
  case ColumnCodec::Dict: return decode_dict(payload, n, out);
  case ColumnCodec::ForPack: return decode_forpack(payload, n, out);
  }
  return false;
}

} // namespace fluxtrace::codec
