// Column codecs for the FLXT v3 compressed columnar container
// (docs/format.md). A column is n int64 values; the encoder picks, per
// column per chunk, the cheapest of six encodings by *exact* encoded
// size — there is no heuristic that can mispredict:
//
//   Raw64       fixed 8 bytes/value (the fallback; never larger than v2)
//   Const       one zigzag varint, all n values equal (idle GPR columns)
//   Varint      n zigzag varints (small-magnitude, unordered)
//   DeltaVarint first value + n-1 zigzag varint deltas (timestamps)
//   Dict        sorted distinct values + bit-packed indices (func/item
//               ids: few distinct values, any order)
//   ForPack     frame-of-reference: min + fixed-width bit-packed offsets
//               (core ids, durations, ips clustered in a code segment)
//
// Decoding is total and hostile-input hardened: every codec validates
// its payload against the caller-supplied row count before allocating
// anything (dictionary sizes are bounded by n, bit-pack widths by 64,
// varints must be canonical), and any irregularity — truncation, trailing
// bytes, out-of-range dictionary index, unsorted dictionary — returns
// false rather than throwing or reading out of bounds. The chunk CRC
// catches random damage; these checks make *crafted* payloads equally
// inert (the FLXI forged-count discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace fluxtrace::codec {

enum class ColumnCodec : std::uint8_t {
  Raw64 = 0,
  Const = 1,
  Varint = 2,
  DeltaVarint = 3,
  Dict = 4,
  ForPack = 5,
};

inline constexpr std::uint8_t kNumColumnCodecs = 6;

/// Human-readable codec name for flxt_dump ("raw64", "dict", ...).
[[nodiscard]] std::string_view column_codec_name(ColumnCodec c);

/// Largest dictionary encode_column_best() will build. Beyond this the
/// index widths stop paying for the dictionary itself and ForPack or
/// Varint win anyway.
inline constexpr std::size_t kMaxDictEntries = 4096;

struct EncodedColumn {
  ColumnCodec codec = ColumnCodec::Raw64;
  std::string bytes;
};

/// Encode `values` with the cheapest applicable codec (exact encoded
/// sizes compared; ties break toward the simpler codec). An empty column
/// encodes as Raw64 with no bytes.
[[nodiscard]] EncodedColumn encode_column_best(
    std::span<const std::int64_t> values);

/// Encode with one specific codec (for tests and size accounting).
/// Const requires all values equal; Dict requires the distinct count to
/// fit kMaxDictEntries. Throws std::invalid_argument when the codec
/// cannot represent `values`.
[[nodiscard]] std::string encode_column(std::span<const std::int64_t> values,
                                        ColumnCodec codec);

/// Decode exactly `n` values from `payload` into `out[0..n)`. Returns
/// false on any irregularity: unknown codec, truncated or overlong
/// payload (every byte must be consumed), non-canonical varints,
/// dictionary larger than n / not strictly sorted / with out-of-range
/// indices, or a bit-pack width over 64. On false, `out` contents are
/// unspecified but no out-of-bounds access has occurred and no
/// allocation beyond O(n) was made.
[[nodiscard]] bool decode_column(ColumnCodec codec, std::string_view payload,
                                 std::size_t n, std::int64_t* out);

} // namespace fluxtrace::codec
