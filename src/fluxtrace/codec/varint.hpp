// LEB128 varints and zigzag, the integer wire primitives of the FLXT v3
// compressed columnar container (docs/format.md). Encoding is canonical:
// the minimal number of 7-bit groups, never more. Decoding *rejects*
// non-canonical input — an overlong encoding (trailing 0x80-chained
// groups that add no bits, e.g. 0x80 0x00 for zero) is treated as
// damage, not tolerated, so a v3 byte stream has exactly one spelling
// per value and hostile input cannot smuggle length ambiguity past the
// CRC-validated framing (the same discipline as the FLXI forged-count
// fix: validate before trusting, bound before allocating).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fluxtrace::codec {

/// Longest canonical varint: 10 groups of 7 bits cover 64 bits (the
/// tenth group carries the top single bit, so its byte is 0x01 at most).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Append the canonical LEB128 encoding of `v`.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80u | (v & 0x7fu)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Bytes put_varint would append for `v` (for exact size estimation).
[[nodiscard]] inline std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Strict canonical decode at `pos`. On success advances `pos` past the
/// value and returns true. Returns false (leaving `pos` unspecified) on
/// truncation, more than kMaxVarintBytes groups, a tenth byte carrying
/// more than the top bit, or a non-minimal (overlong) encoding.
[[nodiscard]] inline bool get_varint(std::string_view b, std::size_t& pos,
                                     std::uint64_t& out) {
  std::uint64_t v = 0;
  std::size_t n = 0;
  std::uint8_t c = 0;
  do {
    if (pos >= b.size() || n >= kMaxVarintBytes) return false;
    c = static_cast<std::uint8_t>(b[pos++]);
    if (n == 9 && (c & ~std::uint8_t{0x01}) != 0) return false; // >64 bits
    v |= static_cast<std::uint64_t>(c & 0x7fu) << (7 * n);
    ++n;
  } while ((c & 0x80u) != 0);
  if (n > 1 && c == 0) return false; // overlong: a final group of no bits
  out = v;
  return true;
}

/// Zigzag: small-magnitude signed values (deltas, frame-of-reference
/// minima) become small unsigned varints.
[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

} // namespace fluxtrace::codec
