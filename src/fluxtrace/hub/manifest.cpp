#include "fluxtrace/hub/manifest.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "fluxtrace/io/chunked.hpp" // io::crc32

namespace fluxtrace::hub {

namespace {

constexpr std::uint8_t kRecUpsert = 1;
constexpr std::uint8_t kRecRemove = 2;
constexpr std::uint8_t kRecCompactIntent = 3;
constexpr std::uint8_t kRecCompactCommit = 4;
constexpr std::uint8_t kRecCompactAbort = 5;

constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kRecordHeaderBytes = 4 + 1 + 4 + 4;

void app_u8(std::string& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}

void app_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void app_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
  }
}

void app_str(std::string& b, const std::string& s) {
  app_u32(b, static_cast<std::uint32_t>(s.size()));
  b += s;
}

// Cursor reads that fail closed, same idiom as the FLXI decoder: any
// overrun flips `ok` and the caller bails once at the end.
struct Reader {
  std::string_view b;
  std::size_t at = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (at + 1 > b.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(b[at++]);
  }

  std::uint32_t u32() {
    if (at + 4 > b.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at + i]))
           << (8 * i);
    }
    at += 4;
    return v;
  }

  std::uint64_t u64() {
    if (at + 8 > b.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[at + i]))
           << (8 * i);
    }
    at += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || at + n > b.size()) {
      ok = false;
      return {};
    }
    std::string s(b.substr(at, n));
    at += n;
    return s;
  }
};

void encode_entry(std::string& b, const TraceEntry& e) {
  app_str(b, e.path);
  app_u8(b, static_cast<std::uint8_t>(e.state));
  app_u64(b, e.size_bytes);
  app_u32(b, e.crc);
  app_u64(b, e.ingested_at_ns);
  app_u64(b, e.rows);
  app_u64(b, e.chunks_ok);
  app_u64(b, e.chunks_corrupt);
  app_u64(b, e.bytes_lost);
  app_u8(b, e.sidecar ? 1 : 0);
  app_str(b, e.detail);
}

bool decode_entry(Reader& r, TraceEntry& e) {
  e.path = r.str();
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(TraceState::Expired)) return false;
  e.state = static_cast<TraceState>(state);
  e.size_bytes = r.u64();
  e.crc = r.u32();
  e.ingested_at_ns = r.u64();
  e.rows = r.u64();
  e.chunks_ok = r.u64();
  e.chunks_corrupt = r.u64();
  e.bytes_lost = r.u64();
  e.sidecar = r.u8() != 0;
  e.detail = r.str();
  return r.ok;
}

std::string header_bytes() {
  std::string h;
  app_u32(h, kManifestMagic);
  app_u32(h, kManifestVersion);
  return h;
}

std::string record_bytes(std::uint8_t type, const std::string& payload) {
  std::string rec;
  rec.reserve(kRecordHeaderBytes + payload.size());
  app_u32(rec, kRecordMagic);
  app_u8(rec, type);
  app_u32(rec, static_cast<std::uint32_t>(payload.size()));
  app_u32(rec, io::crc32(payload.data(), payload.size()));
  rec += payload;
  return rec;
}

void write_all(int fd, const std::string& bytes, const std::string& what) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ManifestError(what + ": write failed: " +
                          std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    throw ManifestError(what + ": fsync failed: " +
                        std::string(std::strerror(errno)));
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return; // best-effort; the rename itself already happened
  ::fsync(dfd);
  ::close(dfd);
}

} // namespace

const char* to_string(TraceState s) {
  switch (s) {
    case TraceState::Ok: return "ok";
    case TraceState::Salvaged: return "salvaged";
    case TraceState::Quarantined: return "quarantined";
    case TraceState::Expired: return "expired";
  }
  return "?";
}

Manifest::Manifest(Manifest&& other) noexcept
    : path_(std::move(other.path_)), fault_(std::move(other.fault_)),
      fd_(std::exchange(other.fd_, -1)), entries_(std::move(other.entries_)),
      pending_(std::move(other.pending_)), stats_(other.stats_),
      records_(other.records_) {}

Manifest& Manifest::operator=(Manifest&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fault_ = std::move(other.fault_);
    fd_ = std::exchange(other.fd_, -1);
    entries_ = std::move(other.entries_);
    pending_ = std::move(other.pending_);
    stats_ = other.stats_;
    records_ = other.records_;
  }
  return *this;
}

Manifest::~Manifest() {
  if (fd_ >= 0) ::close(fd_);
}

void Manifest::reopen_fd_append() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw ManifestError("cannot open manifest for append: " + path_ + ": " +
                        std::string(std::strerror(errno)));
  }
}

Manifest Manifest::open(const std::string& path, WriteFault fault) {
  Manifest m;
  m.path_ = path;
  m.fault_ = std::move(fault);

  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    if (is) {
      std::ostringstream buf;
      buf << is.rdbuf();
      bytes = std::move(buf).str();
    }
  }

  bool rewrite_header = false;
  std::size_t good_end = kHeaderBytes;
  if (bytes.size() < kHeaderBytes) {
    rewrite_header = true;
    m.stats_.recreated = !bytes.empty();
    m.stats_.bytes_truncated += bytes.size();
  } else {
    Reader hr{bytes};
    if (hr.u32() != kManifestMagic || hr.u32() != kManifestVersion) {
      // A destroyed header means nothing after it can be trusted. Restart
      // the journal; ingest is idempotent and re-registers everything.
      rewrite_header = true;
      m.stats_.recreated = true;
      m.stats_.bytes_truncated += bytes.size();
    }
  }

  if (!rewrite_header) {
    // Replay records. Any damage — torn tail, bit flip, hostile length —
    // stops the replay and truncates the journal at the last good byte.
    std::size_t at = kHeaderBytes;
    while (at < bytes.size()) {
      Reader r{bytes, at};
      const std::uint32_t magic = r.u32();
      const std::uint8_t type = r.u8();
      const std::uint32_t len = r.u32();
      const std::uint32_t crc = r.u32();
      if (!r.ok || magic != kRecordMagic || r.at + len > bytes.size()) break;
      const std::string payload(bytes.substr(r.at, len));
      if (io::crc32(payload.data(), payload.size()) != crc) break;
      // A record that passes CRC but does not decode is equally fatal:
      // apply() throws on a malformed payload, and replay stops before it.
      try {
        m.apply(type, payload);
      } catch (const ManifestError&) {
        break;
      }
      ++m.stats_.records_applied;
      ++m.records_;
      at = r.at + len;
      good_end = at;
    }
    if (good_end < bytes.size()) {
      m.stats_.truncated = true;
      m.stats_.bytes_truncated += bytes.size() - good_end;
      if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
        throw ManifestError("cannot repair manifest (truncate): " + path +
                            ": " + std::string(std::strerror(errno)));
      }
    }
  }

  if (rewrite_header) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw ManifestError("cannot create manifest: " + path + ": " +
                          std::string(std::strerror(errno)));
    }
    write_all(fd, header_bytes(), "manifest header");
    fsync_or_throw(fd, "manifest header");
    ::close(fd);
  }

  m.reopen_fd_append();
  return m;
}

void Manifest::append(std::uint8_t type, const std::string& payload) {
  const std::string rec = record_bytes(type, payload);
  if (fault_ && fault_(rec.size())) {
    throw ManifestError("manifest append failed: injected fault (" +
                        std::to_string(rec.size()) + " bytes)");
  }
  write_all(fd_, rec, "manifest append");
  fsync_or_throw(fd_, "manifest append");
  ++records_;
}

void Manifest::apply(std::uint8_t type, const std::string& payload) {
  Reader r{payload};
  switch (type) {
    case kRecUpsert: {
      TraceEntry e;
      if (!decode_entry(r, e) || r.at != payload.size()) {
        throw ManifestError("malformed upsert record");
      }
      entries_[e.path] = std::move(e);
      return;
    }
    case kRecRemove: {
      const std::string p = r.str();
      if (!r.ok || r.at != payload.size()) {
        throw ManifestError("malformed remove record");
      }
      entries_.erase(p);
      return;
    }
    case kRecCompactIntent: {
      CompactIntent ci;
      ci.segment_path = r.str();
      const std::uint32_t n = r.u32();
      if (!r.ok || n > payload.size()) {
        throw ManifestError("malformed compact-intent record");
      }
      ci.members.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) ci.members.push_back(r.str());
      if (!r.ok || r.at != payload.size()) {
        throw ManifestError("malformed compact-intent record");
      }
      pending_ = std::move(ci);
      return;
    }
    case kRecCompactCommit: {
      TraceEntry seg;
      if (!decode_entry(r, seg)) {
        throw ManifestError("malformed compact-commit record");
      }
      const std::uint32_t n = r.u32();
      if (!r.ok || n > payload.size()) {
        throw ManifestError("malformed compact-commit record");
      }
      std::vector<std::string> members;
      members.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) members.push_back(r.str());
      if (!r.ok || r.at != payload.size()) {
        throw ManifestError("malformed compact-commit record");
      }
      // The composite applies atomically: segment registered AND every
      // member expired, or (on any failure above) neither.
      entries_[seg.path] = seg;
      for (const std::string& mp : members) {
        const auto it = entries_.find(mp);
        if (it == entries_.end()) continue;
        it->second.state = TraceState::Expired;
        it->second.detail = "compacted into " + seg.path;
      }
      pending_.reset();
      return;
    }
    case kRecCompactAbort: {
      const std::string p = r.str();
      if (!r.ok || r.at != payload.size()) {
        throw ManifestError("malformed compact-abort record");
      }
      if (pending_.has_value() && pending_->segment_path == p) {
        pending_.reset();
      }
      return;
    }
    default:
      throw ManifestError("unknown manifest record type " +
                          std::to_string(type));
  }
}

void Manifest::upsert(const TraceEntry& e) {
  std::string payload;
  encode_entry(payload, e);
  append(kRecUpsert, payload);
  entries_[e.path] = e;
}

void Manifest::remove(const std::string& trace_path) {
  std::string payload;
  app_str(payload, trace_path);
  append(kRecRemove, payload);
  entries_.erase(trace_path);
}

void Manifest::compact_intent(const CompactIntent& ci) {
  std::string payload;
  app_str(payload, ci.segment_path);
  app_u32(payload, static_cast<std::uint32_t>(ci.members.size()));
  for (const std::string& mp : ci.members) app_str(payload, mp);
  append(kRecCompactIntent, payload);
  pending_ = ci;
}

void Manifest::compact_commit(const TraceEntry& segment,
                              const std::vector<std::string>& members) {
  std::string payload;
  encode_entry(payload, segment);
  app_u32(payload, static_cast<std::uint32_t>(members.size()));
  for (const std::string& mp : members) app_str(payload, mp);
  append(kRecCompactCommit, payload);
  entries_[segment.path] = segment;
  for (const std::string& mp : members) {
    const auto it = entries_.find(mp);
    if (it == entries_.end()) continue;
    it->second.state = TraceState::Expired;
    it->second.detail = "compacted into " + segment.path;
  }
  pending_.reset();
}

void Manifest::compact_abort(const std::string& segment_path) {
  std::string payload;
  app_str(payload, segment_path);
  append(kRecCompactAbort, payload);
  if (pending_.has_value() && pending_->segment_path == segment_path) {
    pending_.reset();
  }
}

void Manifest::snapshot() {
  std::string bytes = header_bytes();
  for (const auto& [path, entry] : entries_) {
    std::string payload;
    encode_entry(payload, entry);
    bytes += record_bytes(kRecUpsert, payload);
  }
  std::size_t n_records = entries_.size();
  if (pending_.has_value()) {
    // Snapshotting mid-compaction preserves the intent: the rollback
    // obligation must survive the journal rewrite.
    std::string payload;
    app_str(payload, pending_->segment_path);
    app_u32(payload, static_cast<std::uint32_t>(pending_->members.size()));
    for (const std::string& mp : pending_->members) app_str(payload, mp);
    bytes += record_bytes(kRecCompactIntent, payload);
    ++n_records;
  }

  if (fault_ && fault_(bytes.size())) {
    throw ManifestError("manifest snapshot failed: injected fault (" +
                        std::to_string(bytes.size()) + " bytes)");
  }

  const std::string tmp = path_ + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw ManifestError("cannot write manifest snapshot: " + tmp + ": " +
                        std::string(std::strerror(errno)));
  }
  try {
    write_all(fd, bytes, "manifest snapshot");
    fsync_or_throw(fd, "manifest snapshot");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw ManifestError("manifest snapshot rename failed: " + path_ + ": " +
                        std::string(std::strerror(err)));
  }
  fsync_parent_dir(path_);
  records_ = n_records;
  reopen_fd_append();
}

bool Manifest::wants_snapshot() const {
  return records_ >= 8 && records_ >= 4 * std::max<std::size_t>(
                                              1, entries_.size());
}

} // namespace fluxtrace::hub
