#include "fluxtrace/hub/catalog.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fluxtrace/io/trace_reader.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/query/flxi.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::hub {

namespace {

constexpr const char* kManifestName = "catalog.flxh";

struct HubMetrics {
  obs::Counter& ingested = obs::metrics().counter("hub.ingested");
  obs::Counter& salvaged = obs::metrics().counter("hub.salvaged");
  obs::Counter& quarantined = obs::metrics().counter("hub.quarantined");
  obs::Counter& expired = obs::metrics().counter("hub.expired");
  obs::Counter& compactions = obs::metrics().counter("hub.compactions");
  obs::Counter& retries = obs::metrics().counter("hub.retries");
  obs::Counter& breaker_opens = obs::metrics().counter("hub.breaker_opens");
  obs::Counter& scan_errors = obs::metrics().counter("hub.scan_errors");

  static HubMetrics& get() {
    static HubMetrics m;
    return m;
  }
};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_trace_name(const std::string& name) {
  // .flxt2/.flxt3 are the conventional names for chunked spools (the
  // container is autodetected either way — this is only the dir filter).
  return ends_with(name, ".flxt") || ends_with(name, ".flxz") ||
         ends_with(name, ".flxt2") || ends_with(name, ".flxt3");
}

std::string errno_context(const std::string& path, int err) {
  return path + ": " + std::strerror(err);
}

/// Recursive POSIX walk. Every failure is one `errors` line; the walk
/// never aborts — a fleet directory full of broken symlinks, vanished
/// mounts and permission holes still yields every readable trace.
void walk_dir(const std::string& dir, std::vector<std::string>& traces,
              std::vector<std::string>& errors) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    errors.push_back("cannot open directory: " + errno_context(dir, errno));
    return;
  }
  std::vector<std::string> subdirs;
  while (true) {
    errno = 0;
    dirent* ent = ::readdir(d);
    if (ent == nullptr) {
      if (errno != 0) {
        errors.push_back("cannot read directory: " +
                         errno_context(dir, errno));
      }
      break;
    }
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      errors.push_back("cannot stat: " + errno_context(path, errno));
      continue;
    }
    if (S_ISDIR(st.st_mode)) {
      subdirs.push_back(path);
    } else if (S_ISREG(st.st_mode) && is_trace_name(name)) {
      traces.push_back(path);
    }
  }
  ::closedir(d);
  for (const std::string& sub : subdirs) walk_dir(sub, traces, errors);
}

/// Delete a trace file and its sidecar; ENOENT is success (already gone).
bool unlink_trace(const std::string& path, std::string* error) {
  bool ok = true;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    if (error != nullptr) {
      *error = "cannot delete: " + errno_context(path, errno);
    }
    ok = false;
  }
  const std::string sidecar = query::flxi_path(path);
  ::unlink(sidecar.c_str()); // best-effort; sidecars are derived data
  return ok;
}

/// True when the file at `path` still carries exactly the bytes the
/// entry describes — the guard that keeps sweeps from deleting a file
/// that was replaced after its entry was written.
bool file_matches_entry(const std::string& path, const TraceEntry& e) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
  if (static_cast<std::uint64_t>(st.st_size) != e.size_bytes) return false;
  try {
    const io::TraceReader r = io::open_trace(path);
    return io::crc32(r.bytes().data(), r.bytes().size()) == e.crc;
  } catch (const io::TraceIoError&) {
    return false;
  }
}

void write_file_fsync(const std::string& path, const std::string& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw io::TraceIoError("cannot open for writing: " +
                           errno_context(path, errno));
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(path.c_str());
      throw io::TraceIoError("write failed: " + errno_context(path, err));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw io::TraceIoError("fsync failed: " + errno_context(path, err));
  }
  ::close(fd);
}

} // namespace

/// Per-shard circuit breaker (the ResilientWriter discipline applied to
/// the read path): breaker_strikes exhausted-retry traces open the
/// circuit; while open, the shard fails its traces fast; after
/// breaker_cooldown_ns a half-open probe is allowed and a success
/// closes it again.
struct Catalog::ShardBreaker {
  std::mutex mu;
  std::uint32_t strikes = 0;
  bool open = false;
  std::uint64_t opened_at_ns = 0;
};

void Catalog::note(const char* checkpoint) {
  if (opts_.checkpoint) opts_.checkpoint(checkpoint);
}

Catalog Catalog::open(const std::string& dir, const SymbolTable& symtab,
                      CatalogOptions opts) {
  OBS_SPAN("hub.open");
  Catalog c;
  c.dir_ = dir;
  c.symtab_ = &symtab;
  c.opts_ = std::move(opts);
  if (!c.opts_.now_ns) c.opts_.now_ns = steady_now_ns;

  ::mkdir(dir.c_str(), 0755); // ok if it already exists

  c.manifest_ = std::make_unique<Manifest>(
      Manifest::open(dir + "/" + kManifestName, c.opts_.manifest_fault));
  c.open_report_.replay = c.manifest_->replay_stats();

  // Roll back a compaction that died between intent and commit: the
  // segment (possibly half-written) is deleted and the intent closed.
  // The members were never touched, so the catalog is exactly as it was
  // before the compaction started.
  if (c.manifest_->pending_intent().has_value()) {
    const CompactIntent ci = *c.manifest_->pending_intent();
    unlink_trace(ci.segment_path, nullptr);
    c.manifest_->compact_abort(ci.segment_path);
    c.open_report_.rolled_back_compaction = true;
  }

  // Sweep expired leftovers: a crash between journal-commit and file
  // delete leaves the file on disk; on the next open it is deleted —
  // but only if its bytes still match the entry.
  for (const auto& [path, entry] : c.manifest_->entries()) {
    if (entry.state != TraceState::Expired) continue;
    if (file_matches_entry(path, entry)) {
      if (unlink_trace(path, nullptr)) ++c.open_report_.swept_files;
    }
  }
  return c;
}

ScanResult Catalog::scan() const {
  OBS_SPAN("hub.scan");
  ScanResult out;
  walk_dir(dir_, out.traces, out.errors);
  std::sort(out.traces.begin(), out.traces.end());
  HubMetrics::get().scan_errors.inc(out.errors.size());
  return out;
}

IngestReport Catalog::ingest() {
  OBS_SPAN("hub.ingest");
  const ScanResult sr = scan();

  IngestReport report;
  report.scanned = sr.traces.size();
  report.errors = sr.errors;
  report.failed += sr.errors.size();

  const unsigned n_shards = std::max(
      1u, opts_.threads != 0 ? opts_.threads
                             : std::thread::hardware_concurrency());
  std::vector<ShardBreaker> breakers(n_shards);
  std::mutex commit_mu; // serializes manifest appends + report/stats

  const auto ingest_one = [&](std::size_t i) {
    const std::string& path = sr.traces[i];
    ShardBreaker& br = breakers[i % n_shards];

    // Breaker gate.
    {
      std::lock_guard<std::mutex> lk(br.mu);
      if (br.open) {
        if (opts_.now_ns() <
            br.opened_at_ns + opts_.breaker_cooldown_ns) {
          std::lock_guard<std::mutex> rk(commit_mu);
          ++report.failed;
          ++stats_.breaker_rejects;
          report.errors.push_back(path + ": shard breaker open");
          return;
        }
        br.open = false; // cooldown elapsed: half-open probe
        br.strikes = br.strikes > 0 ? br.strikes - 1 : 0;
      }
    }

    // Read with retry + capped backoff. Injected transient faults and
    // real open failures both count as attempts.
    std::string read_error;
    bool read_ok = false;
    io::TraceTriage triage;
    std::uint64_t file_size = 0;
    std::uint32_t file_crc = 0;
    for (std::uint32_t attempt = 0; attempt < opts_.max_attempts; ++attempt) {
      if (attempt > 0) {
        const std::uint64_t delay = std::min(
            opts_.backoff_cap_ns, opts_.backoff_base_ns << (attempt - 1));
        std::lock_guard<std::mutex> rk(commit_mu);
        ++stats_.retries;
        stats_.backoff_ns += delay;
        HubMetrics::get().retries.inc();
      }
      if (opts_.read_fault && opts_.read_fault(path)) {
        read_error = path + ": injected transient read fault";
        continue;
      }
      try {
        const io::TraceReader reader = io::open_trace(path);
        file_size = reader.size_bytes();
        file_crc = io::crc32(reader.bytes().data(), reader.bytes().size());
        triage = io::classify_trace(reader);
        read_ok = true;
        break;
      } catch (const io::TraceIoError& e) {
        read_error = e.what();
      }
    }

    if (!read_ok) {
      bool opened = false;
      {
        std::lock_guard<std::mutex> lk(br.mu);
        if (++br.strikes >= opts_.breaker_strikes && !br.open) {
          br.open = true;
          br.opened_at_ns = opts_.now_ns();
          opened = true;
        }
      }
      std::lock_guard<std::mutex> rk(commit_mu);
      ++report.failed;
      report.errors.push_back(read_error);
      if (opened) {
        ++stats_.breaker_opens;
        HubMetrics::get().breaker_opens.inc();
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lk(br.mu);
      br.strikes = 0; // a success resets the shard
    }

    // Unchanged? (size + crc both match the live entry)
    {
      std::lock_guard<std::mutex> lk(commit_mu);
      const auto it = manifest_->entries().find(path);
      if (it != manifest_->entries().end() &&
          it->second.state != TraceState::Expired &&
          it->second.size_bytes == file_size && it->second.crc == file_crc) {
        ++report.unchanged;
        return;
      }
    }

    TraceEntry e;
    e.path = path;
    e.size_bytes = file_size;
    e.crc = file_crc;
    e.ingested_at_ns = opts_.now_ns();
    e.rows = triage.report.data.samples.size();
    e.chunks_ok = triage.report.chunks_ok;
    e.chunks_corrupt = triage.report.chunks_corrupt;
    e.bytes_lost =
        triage.report.bytes_skipped + triage.report.bytes_truncated;

    switch (triage.health) {
      case io::TraceHealth::Clean:
        e.state = TraceState::Ok;
        break;
      case io::TraceHealth::Salvaged:
        e.state = TraceState::Salvaged;
        e.detail = std::to_string(e.chunks_corrupt) + " corrupt chunks, " +
                   std::to_string(e.bytes_lost) + " bytes lost";
        break;
      case io::TraceHealth::Unrecoverable:
        e.state = TraceState::Quarantined;
        e.detail = "unrecoverable: " + std::to_string(e.chunks_corrupt) +
                   " corrupt chunks, " + std::to_string(e.bytes_lost) +
                   " bytes lost";
        break;
    }

    // Sidecar refresh for anything queries will read. A sidecar failure
    // degrades (queries scan without pruning); it never fails ingest.
    if (e.state != TraceState::Quarantined) {
      try {
        const query::SidecarStatus s = query::refresh_sidecar(
            path, *symtab_, opts_.use_register_ids);
        e.sidecar = s == query::SidecarStatus::Fresh ||
                    s == query::SidecarStatus::Rebuilt;
      } catch (const io::TraceIoError&) {
        e.sidecar = false;
      }
    }

    std::lock_guard<std::mutex> lk(commit_mu);
    try {
      manifest_->upsert(e);
    } catch (const ManifestError& ex) {
      ++report.failed;
      report.errors.push_back(path + ": " + ex.what());
      return;
    }
    switch (e.state) {
      case TraceState::Ok:
        ++report.registered;
        HubMetrics::get().ingested.inc();
        break;
      case TraceState::Salvaged:
        ++report.salvaged;
        HubMetrics::get().salvaged.inc();
        break;
      case TraceState::Quarantined:
        ++report.quarantined;
        HubMetrics::get().quarantined.inc();
        break;
      case TraceState::Expired:
        break;
    }
    note("ingest.registered");
  };

  if (n_shards > 1 && sr.traces.size() > 1) {
    rt::ThreadPool pool(n_shards);
    pool.parallel_for(sr.traces.size(), ingest_one);
  } else {
    for (std::size_t i = 0; i < sr.traces.size(); ++i) ingest_one(i);
  }

  if (manifest_->wants_snapshot()) {
    try {
      manifest_->snapshot();
    } catch (const ManifestError& e) {
      report.errors.push_back(std::string("manifest snapshot failed: ") +
                              e.what());
    }
  }
  return report;
}

void Catalog::expire_entry(const TraceEntry& e, const char* why,
                           RetainReport& report) {
  TraceEntry expired = e;
  expired.state = TraceState::Expired;
  expired.detail = why;
  try {
    manifest_->upsert(expired);
  } catch (const ManifestError& ex) {
    report.errors.push_back(e.path + ": " + ex.what());
    return;
  }
  note("retain.committed");
  // The journal now says "expired" — the delete may die here and the
  // sweep-on-open finishes the job.
  std::string err;
  if (!unlink_trace(e.path, &err)) {
    report.errors.push_back(err);
  }
  ++report.expired;
  report.bytes_reclaimed += e.size_bytes;
  HubMetrics::get().expired.inc();
}

RetainReport Catalog::retain(std::uint64_t max_age_ns,
                             std::uint64_t max_total_bytes) {
  OBS_SPAN("hub.retain");
  RetainReport report;
  const std::uint64_t now = opts_.now_ns();

  // Pass 1: age. Quarantined entries age out too — the loss accounting
  // survives in the journal; only the hostile bytes are reclaimed.
  std::vector<TraceEntry> live;
  for (const auto& [path, entry] : manifest_->entries()) {
    if (entry.state == TraceState::Expired) continue;
    if (max_age_ns != 0 && entry.ingested_at_ns + max_age_ns < now) {
      expire_entry(entry, "expired by age", report);
      continue;
    }
    live.push_back(entry);
  }

  // Pass 2: size budget, oldest first.
  if (max_total_bytes != 0) {
    std::uint64_t total = 0;
    for (const TraceEntry& e : live) total += e.size_bytes;
    std::stable_sort(live.begin(), live.end(),
                     [](const TraceEntry& a, const TraceEntry& b) {
                       return a.ingested_at_ns < b.ingested_at_ns;
                     });
    for (const TraceEntry& e : live) {
      if (total <= max_total_bytes) break;
      expire_entry(e, "expired by size budget", report);
      total -= e.size_bytes;
    }
  }

  if (manifest_->wants_snapshot()) {
    try {
      manifest_->snapshot();
    } catch (const ManifestError& e) {
      report.errors.push_back(std::string("manifest snapshot failed: ") +
                              e.what());
    }
  }
  return report;
}

CompactReport Catalog::compact(std::uint64_t threshold_bytes,
                               std::size_t min_members) {
  OBS_SPAN("hub.compact");
  CompactReport report;

  // Candidates: clean traces under the threshold, in manifest (= sorted
  // path) order so the merged record order is deterministic and equals
  // the federated member order.
  std::vector<TraceEntry> members;
  for (const auto& [path, entry] : manifest_->entries()) {
    if (entry.state != TraceState::Ok) continue;
    if (entry.size_bytes >= threshold_bytes) continue;
    members.push_back(entry);
  }
  if (members.size() < std::max<std::size_t>(2, min_members)) return report;

  // Next segment sequence number: one past anything ever journaled.
  std::size_t seq = 0;
  for (const auto& [path, entry] : manifest_->entries()) {
    const std::size_t at = path.rfind("/seg-");
    if (at == std::string::npos) continue;
    seq = std::max(seq, static_cast<std::size_t>(
                            std::atoll(path.c_str() + at + 5)));
  }
  char name[32];
  std::snprintf(name, sizeof name, "/seg-%06zu.flxt", seq + 1);
  const std::string seg_path = dir_ + name;

  CompactIntent ci;
  ci.segment_path = seg_path;
  for (const TraceEntry& m : members) ci.members.push_back(m.path);
  try {
    manifest_->compact_intent(ci);
  } catch (const ManifestError& e) {
    report.errors.push_back(e.what());
    return report;
  }
  note("compact.intent");

  // Read and concatenate the members (strict: a member that fails the
  // clean read it passed at ingest has drifted — abort, re-ingest will
  // reclassify it).
  io::TraceData all;
  std::uint64_t rows = 0;
  for (const TraceEntry& m : members) {
    try {
      const io::TraceReader reader = io::open_trace(m.path);
      io::TraceData d = reader.read();
      rows += d.samples.size();
      all.markers.insert(all.markers.end(), d.markers.begin(),
                         d.markers.end());
      all.samples.insert(all.samples.end(), d.samples.begin(),
                         d.samples.end());
      all.wait_edges.insert(all.wait_edges.end(), d.wait_edges.begin(),
                            d.wait_edges.end());
    } catch (const io::TraceIoError& e) {
      report.errors.push_back(std::string("member drifted: ") + e.what());
      manifest_->compact_abort(seg_path);
      return report;
    }
  }

  std::string seg_bytes;
  {
    std::ostringstream os;
    io::write_trace_v2(os, all);
    seg_bytes = std::move(os).str();
  }
  try {
    write_file_fsync(seg_path, seg_bytes);
  } catch (const io::TraceIoError& e) {
    report.errors.push_back(e.what());
    manifest_->compact_abort(seg_path);
    return report;
  }
  note("compact.segment");

  TraceEntry seg;
  seg.path = seg_path;
  seg.state = TraceState::Ok;
  seg.size_bytes = seg_bytes.size();
  seg.crc = io::crc32(seg_bytes.data(), seg_bytes.size());
  seg.ingested_at_ns = opts_.now_ns();
  seg.rows = rows;
  seg.chunks_ok = 0; // strict-written; chunk accounting comes from triage
  try {
    const query::SidecarStatus s =
        query::refresh_sidecar(seg_path, *symtab_, opts_.use_register_ids);
    seg.sidecar = s == query::SidecarStatus::Fresh ||
                  s == query::SidecarStatus::Rebuilt;
  } catch (const io::TraceIoError&) {
    seg.sidecar = false;
  }

  try {
    manifest_->compact_commit(seg, ci.members);
  } catch (const ManifestError& e) {
    report.errors.push_back(e.what());
    unlink_trace(seg_path, nullptr);
    try {
      manifest_->compact_abort(seg_path);
    } catch (const ManifestError&) {
      // Both appends failed (dead disk): the intent stays pending and
      // the next open rolls the segment back.
    }
    return report;
  }
  note("compact.commit");

  // Past the commit point: the members are expired in the journal, so a
  // crash in this loop leaves files the sweep-on-open deletes.
  for (const TraceEntry& m : members) {
    unlink_trace(m.path, nullptr);
  }
  note("compact.cleanup");

  report.segments_written = 1;
  report.members_merged = members.size();
  report.segment_path = seg_path;
  HubMetrics::get().compactions.inc();

  if (manifest_->wants_snapshot()) {
    try {
      manifest_->snapshot();
    } catch (const ManifestError& e) {
      report.errors.push_back(std::string("manifest snapshot failed: ") +
                              e.what());
    }
  }
  return report;
}

VerifyReport Catalog::verify() const {
  OBS_SPAN("hub.verify");
  VerifyReport report;
  for (const auto& [path, entry] : manifest_->entries()) {
    if (entry.state == TraceState::Expired) continue;
    ++report.checked;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      ++report.missing;
      report.problems.push_back("missing: " + errno_context(path, errno));
      continue;
    }
    if (static_cast<std::uint64_t>(st.st_size) != entry.size_bytes ||
        !file_matches_entry(path, entry)) {
      ++report.drifted;
      report.problems.push_back("drifted: " + path +
                                ": size/crc no longer match manifest");
      continue;
    }
    if (entry.sidecar) {
      struct stat sst{};
      if (::stat(query::flxi_path(path).c_str(), &sst) != 0) {
        ++report.sidecars_stale;
        report.problems.push_back("sidecar missing: " +
                                  query::flxi_path(path));
      }
    }
  }
  return report;
}

std::vector<query::FederatedTrace> Catalog::query_members() const {
  std::vector<query::FederatedTrace> out;
  for (const auto& [path, entry] : manifest_->entries()) {
    switch (entry.state) {
      case TraceState::Ok:
      case TraceState::Salvaged:
        out.push_back({path, false});
        break;
      case TraceState::Quarantined:
        out.push_back({path, true});
        break;
      case TraceState::Expired:
        break;
    }
  }
  return out;
}

} // namespace fluxtrace::hub
