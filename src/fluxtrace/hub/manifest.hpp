// The catalog manifest journal (ISSUE 9): a crash-consistent append-only
// record of every trace the hub knows about — the same durability
// discipline as the FLXT v2 chunk container, applied to catalog state.
//
//   file   := u32 magic "FXHM" | u32 version=1 | record*
//   record := u32 magic "HREC" | u8 type | u32 payload_len
//           | u32 payload_crc | payload
//
// Record types:
//   1 Upsert        — one TraceEntry (register / state change / expiry)
//   2 Remove        — drop a trace's entry entirely (admin purge)
//   3 CompactIntent — a compaction is about to write `segment_path`
//                     from `members`; replayed unpaired = rollback work
//   4 CompactCommit — ONE composite record: the segment's entry plus the
//                     member expirations, applied atomically — a commit
//                     can never half-apply, so the members are expired
//                     iff the segment is registered
//   5 CompactAbort  — the intent was rolled back
//
// Crash consistency on replay: every record is CRC-checked; a torn tail
// (the writer died mid-append) is "not yet written" — replay stops at
// the last good record and truncates the file there, so the journal
// self-repairs on open. A bit-flipped record mid-file is detected the
// same way; the suffix after it is discarded (appends after damage
// cannot be trusted to describe state built on the damaged record) and
// ingest — which is idempotent — re-registers anything dropped.
//
// Growth is bounded by snapshot(): the live entry map is rewritten as a
// fresh journal (header + one Upsert per entry) to a temp file, fsynced,
// and atomically renamed over the old one — a kill -9 at any instant
// leaves either the old journal or the new, never neither.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fluxtrace::hub {

inline constexpr std::uint32_t kManifestMagic = 0x4d485846;  // "FXHM"
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::uint32_t kRecordMagic = 0x43455248;    // "HREC"

/// The catalog's per-trace state machine. Every trace the hub has ever
/// seen is in exactly one of these states — the "zero unaccounted
/// traces" invariant the kill-9 sweep asserts.
enum class TraceState : std::uint8_t {
  Ok = 0,          ///< clean; queries read it directly
  Salvaged = 1,    ///< damaged but partially recovered; queries degrade
  Quarantined = 2, ///< hostile/unrecoverable; never read again
  Expired = 3,     ///< retired by retention or merged into a segment
};

[[nodiscard]] const char* to_string(TraceState s);

/// One catalog entry. Loss accounting (chunks_ok / chunks_corrupt /
/// bytes_lost) is exact, from the salvage report that triaged the trace;
/// size+crc identify the file bytes so sweeps never delete a file that
/// was replaced after the entry was written.
struct TraceEntry {
  std::string path; ///< as registered (absolute or catalog-relative)
  TraceState state = TraceState::Ok;
  std::uint64_t size_bytes = 0;
  std::uint32_t crc = 0;           ///< io::crc32 of the whole file image
  std::uint64_t ingested_at_ns = 0;
  std::uint64_t rows = 0;          ///< sample records contributed
  std::uint64_t chunks_ok = 0;
  std::uint64_t chunks_corrupt = 0;
  std::uint64_t bytes_lost = 0;    ///< skipped + truncated during salvage
  bool sidecar = false;            ///< a fresh FLXI sidecar is on disk
  std::string detail;              ///< quarantine / expiry reason

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// A compaction in flight: found unpaired on replay, it means the writer
/// died between intent and commit — the catalog rolls the segment back.
struct CompactIntent {
  std::string segment_path;
  std::vector<std::string> members;

  friend bool operator==(const CompactIntent&, const CompactIntent&) = default;
};

struct ReplayStats {
  std::size_t records_applied = 0;
  std::uint64_t bytes_truncated = 0; ///< torn/damaged suffix dropped
  bool truncated = false;
  bool recreated = false; ///< header was damaged; journal restarted empty
};

class ManifestError : public std::runtime_error {
 public:
  explicit ManifestError(const std::string& msg) : std::runtime_error(msg) {}
};

class Manifest {
 public:
  /// Injected write failure (ENOSPC budgets in the chaos suite): called
  /// with the byte count about to be appended; returning true makes the
  /// append throw ManifestError instead of writing.
  using WriteFault = std::function<bool(std::size_t)>;

  /// Open-or-create, replaying (and self-repairing) an existing journal.
  /// Throws ManifestError only when the file cannot be opened/created at
  /// all; damaged content truncates, never throws.
  [[nodiscard]] static Manifest open(const std::string& path,
                                     WriteFault fault = nullptr);

  Manifest(Manifest&&) noexcept;
  Manifest& operator=(Manifest&&) noexcept;
  Manifest(const Manifest&) = delete;
  Manifest& operator=(const Manifest&) = delete;
  ~Manifest();

  [[nodiscard]] const std::map<std::string, TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::optional<CompactIntent>& pending_intent() const {
    return pending_;
  }
  [[nodiscard]] const ReplayStats& replay_stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records in the journal file (replayed + appended this session).
  [[nodiscard]] std::size_t journal_records() const { return records_; }

  // Each mutation appends one fsynced record; ManifestError on failure
  // (injected fault or real I/O error), leaving in-memory state
  // unchanged — the caller's circuit breaker decides what happens next.
  void upsert(const TraceEntry& e);
  void remove(const std::string& trace_path);
  void compact_intent(const CompactIntent& ci);
  void compact_commit(const TraceEntry& segment,
                      const std::vector<std::string>& members);
  void compact_abort(const std::string& segment_path);

  /// Atomic journal compaction: write-new → fsync → rename → fsync dir.
  void snapshot();
  /// True when the journal carries >= 4 records per live entry (and at
  /// least a handful) — the periodic-compaction trigger.
  [[nodiscard]] bool wants_snapshot() const;

 private:
  Manifest() = default;
  void append(std::uint8_t type, const std::string& payload);
  void apply(std::uint8_t type, const std::string& payload);
  void reopen_fd_append();

  std::string path_;
  WriteFault fault_;
  int fd_ = -1;
  std::map<std::string, TraceEntry> entries_;
  std::optional<CompactIntent> pending_;
  ReplayStats stats_;
  std::size_t records_ = 0;
};

} // namespace fluxtrace::hub
