// The fleet-scale trace catalog (ISSUE 9): one directory tree of FLXT
// traces, one crash-consistent manifest journal, and the operations a
// fleet collector runs forever: ingest, retain, compact, verify.
//
//   Catalog::open(dir)          replay manifest, roll back a half-done
//                               compaction, sweep expired leftovers
//   scan()                      walk the tree; unreadable entries are
//                               reported (path + errno) and *skipped*,
//                               never fatal — a hostile fleet directory
//                               cannot take the catalog down
//   ingest()                    sharded over a thread pool: triage each
//                               trace (clean / salvaged / unrecoverable
//                               via io::classify_trace), refresh its
//                               FLXI sidecar, register it. Transient
//                               read faults retry with capped backoff;
//                               a shard whose faults persist opens its
//                               circuit breaker (the ResilientWriter
//                               discipline, applied to reads)
//   retain(age, bytes)          expire by age and by total-size budget;
//                               journal-commit first, delete second
//   compact(threshold)          merge small clean traces into one
//                               consolidated segment: intent → write
//                               new + fsync → commit (one composite
//                               record) → delete old. A kill -9 at any
//                               point leaves either the members or the
//                               segment accounted, never neither
//   verify()                    audit manifest against disk: size+crc
//                               drift, missing files, stale sidecars
//
// Every trace the catalog has ever seen is in exactly one TraceState —
// ok / salvaged / quarantined / expired — and the chaos suite replays
// the journal after kill -9 at every checkpoint to prove it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/hub/manifest.hpp"
#include "fluxtrace/query/federated.hpp"

namespace fluxtrace::hub {

struct CatalogOptions {
  /// Ingest shards (0 = hardware concurrency). Shard i handles every
  /// trace whose scan index ≡ i (mod shards); each shard carries its own
  /// circuit breaker so one bad disk region cannot wedge the others.
  unsigned threads = 0;
  /// Attribution mode baked into refreshed FLXI sidecars.
  bool use_register_ids = false;

  // Retry / breaker shape, mirrored from io::ResilientWriterConfig so
  // the two resilience layers tune the same way.
  std::uint32_t max_attempts = 3;
  std::uint64_t backoff_base_ns = 1'000;
  std::uint64_t backoff_cap_ns = 1'000'000;
  std::uint32_t breaker_strikes = 3;
  std::uint64_t breaker_cooldown_ns = 10'000'000;

  // --- test seams -------------------------------------------------------
  /// Clock for ingested_at / retention age / breaker cooldown. Defaults
  /// to the steady clock.
  std::function<std::uint64_t()> now_ns;
  /// Injected manifest write failure (ENOSPC budgets); see
  /// Manifest::WriteFault.
  Manifest::WriteFault manifest_fault;
  /// Injected transient read fault: consulted before each read attempt
  /// of `path`; true = this attempt fails (retried up to max_attempts).
  std::function<bool(const std::string& path)> read_fault;
  /// Crash checkpoint hook, called at every durability boundary with a
  /// stable name ("ingest.registered", "retain.committed",
  /// "compact.intent", "compact.segment", "compact.commit",
  /// "compact.cleanup"). The chaos driver wires it to _Exit(137).
  std::function<void(const char* checkpoint)> checkpoint;
};

/// What Catalog::open found and repaired.
struct OpenReport {
  ReplayStats replay;
  std::size_t swept_files = 0;     ///< expired leftovers deleted on open
  bool rolled_back_compaction = false; ///< dangling intent undone
};

struct ScanResult {
  std::vector<std::string> traces; ///< sorted, catalog-relative-stable
  /// One line per unreadable entry: "path: strerror(errno)". The walk
  /// continues past every failure.
  std::vector<std::string> errors;
};

struct IngestReport {
  std::size_t scanned = 0;
  std::size_t registered = 0;  ///< new or changed traces ingested clean
  std::size_t salvaged = 0;    ///< ingested in degraded form
  std::size_t quarantined = 0; ///< unrecoverable; never read again
  std::size_t unchanged = 0;   ///< already registered, same size+crc
  std::size_t failed = 0;      ///< read failures / open breakers
  std::vector<std::string> errors; ///< path + reason per failure
};

struct RetainReport {
  std::size_t expired = 0;
  std::uint64_t bytes_reclaimed = 0;
  std::vector<std::string> errors;
};

struct CompactReport {
  std::size_t segments_written = 0;
  std::size_t members_merged = 0;
  std::string segment_path;
  std::vector<std::string> errors;
};

struct VerifyReport {
  std::size_t checked = 0;
  std::size_t missing = 0;       ///< live entry, file gone
  std::size_t drifted = 0;       ///< size or crc no longer match
  std::size_t sidecars_stale = 0;
  std::vector<std::string> problems;

  [[nodiscard]] bool clean() const {
    return missing == 0 && drifted == 0 && sidecars_stale == 0;
  }
};

/// Ingest-side resilience accounting (the read-path mirror of
/// io::ResilientWriter::Stats).
struct CatalogStats {
  std::uint64_t retries = 0;       ///< read attempts beyond the first
  std::uint64_t backoff_ns = 0;    ///< total capped backoff accrued
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_rejects = 0; ///< ingests refused while open
};

class Catalog {
 public:
  /// Open-or-create the catalog rooted at `dir` (the manifest journal
  /// lives at dir/catalog.flxh). Replays the journal, rolls back any
  /// half-done compaction, sweeps expired leftovers whose size+crc still
  /// match their entry. Throws ManifestError when the journal cannot be
  /// opened at all.
  [[nodiscard]] static Catalog open(const std::string& dir,
                                    const SymbolTable& symtab,
                                    CatalogOptions opts = {});

  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  [[nodiscard]] const OpenReport& open_report() const { return open_report_; }
  [[nodiscard]] const Manifest& manifest() const { return *manifest_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const CatalogStats& stats() const { return stats_; }

  /// Recursive directory walk for *.flxt / *.flxz trace files. Sidecars,
  /// temp files and the manifest itself are skipped; unreadable entries
  /// land in `errors` with path + errno context and the walk continues.
  [[nodiscard]] ScanResult scan() const;

  /// scan() + sharded ingest of everything new or changed.
  IngestReport ingest();

  /// Expire by age (`max_age_ns` since ingest, 0 = no age limit) and by
  /// total live-byte budget (`max_total_bytes`, 0 = unlimited; oldest
  /// expire first). Journal-commit precedes every file delete.
  RetainReport retain(std::uint64_t max_age_ns, std::uint64_t max_total_bytes);

  /// Merge every clean trace smaller than `threshold_bytes` (at least
  /// `min_members` of them) into one consolidated v2 segment, staged
  /// write-new → fsync → journal-commit → delete-old.
  CompactReport compact(std::uint64_t threshold_bytes,
                        std::size_t min_members = 2);

  /// Audit every live entry against the bytes on disk.
  [[nodiscard]] VerifyReport verify() const;

  /// The federated-query member set: live traces in manifest (= sorted
  /// path) order, with quarantined entries flagged so the query layer
  /// counts them without ever opening them. Expired entries are gone.
  [[nodiscard]] std::vector<query::FederatedTrace> query_members() const;

 private:
  Catalog() = default;

  struct ShardBreaker;
  void expire_entry(const TraceEntry& e, const char* why,
                    RetainReport& report);
  void note(const char* checkpoint);

  std::string dir_;
  const SymbolTable* symtab_ = nullptr;
  CatalogOptions opts_;
  std::unique_ptr<Manifest> manifest_;
  OpenReport open_report_;
  CatalogStats stats_;
};

} // namespace fluxtrace::hub
