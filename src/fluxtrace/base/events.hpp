// Hardware (PMU) events the simulated core can count and PEBS can sample
// on. The paper uses UOPS_RETIRED.ALL throughout; §V-D extends the method
// to cache misses and other per-core events just by changing this choice.
#pragma once

#include <cstdint>
#include <string_view>

namespace fluxtrace {

/// Precise events supported by the simulated PMU. Names mirror the Intel
/// SDM event mnemonics used in the paper.
enum class HwEvent : std::uint8_t {
  UopsRetired,   ///< UOPS_RETIRED.ALL — the paper's default sampling event.
  CacheMisses,   ///< MEM_LOAD_RETIRED.L3_MISS-style last-level miss count.
  BranchMisses,  ///< BR_MISP_RETIRED.ALL_BRANCHES.
  LoadsRetired,  ///< MEM_INST_RETIRED.ALL_LOADS.
};

inline constexpr std::size_t kNumHwEvents = 4;

[[nodiscard]] constexpr std::string_view to_string(HwEvent e) {
  switch (e) {
    case HwEvent::UopsRetired:  return "UOPS_RETIRED.ALL";
    case HwEvent::CacheMisses:  return "MEM_LOAD_RETIRED.L3_MISS";
    case HwEvent::BranchMisses: return "BR_MISP_RETIRED.ALL_BRANCHES";
    case HwEvent::LoadsRetired: return "MEM_INST_RETIRED.ALL_LOADS";
  }
  return "UNKNOWN";
}

/// Per-core free-running counters for every event, independent of PEBS.
/// Used by profile-style analyses (e.g. the Fig. 2 cycles-per-function
/// estimate) and by tests to cross-check sampled counts.
struct EventCounters {
  std::uint64_t v[kNumHwEvents]{};

  [[nodiscard]] std::uint64_t get(HwEvent e) const {
    return v[static_cast<std::size_t>(e)];
  }
  void add(HwEvent e, std::uint64_t n) {
    v[static_cast<std::size_t>(e)] += n;
  }
};

} // namespace fluxtrace
