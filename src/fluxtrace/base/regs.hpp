// The x86-64 general-purpose register file, as captured by a PEBS record.
// PEBS dumps the architectural GPRs verbatim; fluxtrace models the subset a
// diagnosis consumer can use. In particular the timer-switching extension
// (paper §V-A) reserves R13 to carry the data-item id across user-level
// context switches.
#pragma once

#include <array>
#include <cstdint>

namespace fluxtrace {

/// x86-64 general-purpose register names, in PEBS record layout order.
enum class Reg : std::uint8_t {
  Rax, Rbx, Rcx, Rdx, Rsi, Rdi, Rbp, Rsp,
  R8, R9, R10, R11, R12, R13, R14, R15,
};

inline constexpr std::size_t kNumRegs = 16;

/// A snapshot of the general-purpose registers. Copyable POD; a PEBS
/// record embeds one by value.
struct RegisterFile {
  std::array<std::uint64_t, kNumRegs> v{};

  [[nodiscard]] std::uint64_t get(Reg r) const {
    return v[static_cast<std::size_t>(r)];
  }
  void set(Reg r, std::uint64_t value) {
    v[static_cast<std::size_t>(r)] = value;
  }
  friend bool operator==(const RegisterFile&, const RegisterFile&) = default;
};

/// Register reserved for the data-item id in the timer-switching
/// architecture (§V-A): the paper verified that Linux and glibc build and
/// run with R13 reserved via a compiler flag.
inline constexpr Reg kItemIdReg = Reg::R13;

} // namespace fluxtrace
