// PEBS sample records. A real PEBS record (Skylake) carries the GPRs, the
// instruction pointer, the TSC, and assorted fields irrelevant here
// (paper §III-B). fluxtrace keeps exactly the fields the hybrid method
// consumes, plus the core id attached when the buffer is drained.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace {

/// Size of one raw PEBS record on disk. Skylake's PEBS record format is
/// 96+ bytes; the paper's data-volume figures (§IV-C3) scale with this.
inline constexpr std::uint64_t kPebsRecordBytes = 96;

/// One PEBS sample: what the hardware wrote into the PEBS buffer.
struct PebsSample {
  Tsc tsc = 0;           ///< hardware timestamp of the sampled instruction
  std::uint64_t ip = 0;  ///< instruction pointer
  std::uint32_t core = 0;///< core whose counter overflowed (drain-time tag)
  RegisterFile regs;     ///< architectural GPR snapshot

  friend bool operator==(const PebsSample&, const PebsSample&) = default;
};

using SampleVec = std::vector<PebsSample>;

/// One lost sample, placed in time: the counter overflowed at `tsc` on
/// `core` but no record reached software (PEBS disarmed during a drain,
/// or loss injected by a fault plan). Carrying losses alongside the
/// sample stream lets consumers attribute them to data-items instead of
/// silently under-counting (§III-E).
struct SampleLoss {
  std::uint32_t core = 0;
  Tsc tsc = 0;

  friend bool operator==(const SampleLoss&, const SampleLoss&) = default;
};

} // namespace fluxtrace
