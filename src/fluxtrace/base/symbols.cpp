#include "fluxtrace/base/symbols.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace {

SymbolId SymbolTable::add(std::string_view name, std::uint64_t code_bytes) {
  assert(code_bytes > 0 && "a function must occupy at least one byte");
  Symbol s;
  s.name = std::string(name);
  s.lo = next_addr_;
  s.hi = next_addr_ + code_bytes;
  next_addr_ = s.hi;
  symbols_.push_back(std::move(s));
  return static_cast<SymbolId>(symbols_.size() - 1);
}

SymbolId SymbolTable::add_range(std::string_view name, std::uint64_t lo,
                                std::uint64_t hi) {
  assert(hi > lo && "a function must occupy at least one byte");
  assert(lo >= (symbols_.empty() ? 0 : symbols_.back().hi) &&
         "ranges must be ascending and disjoint");
  Symbol s;
  s.name = std::string(name);
  s.lo = lo;
  s.hi = hi;
  next_addr_ = std::max(next_addr_, hi);
  symbols_.push_back(std::move(s));
  return static_cast<SymbolId>(symbols_.size() - 1);
}

std::optional<SymbolId> SymbolTable::resolve(std::uint64_t ip) const {
  // Ranges are contiguous and sorted by construction: binary search on lo.
  auto it = std::upper_bound(
      symbols_.begin(), symbols_.end(), ip,
      [](std::uint64_t v, const Symbol& s) { return v < s.lo; });
  if (it == symbols_.begin()) return std::nullopt;
  --it;
  if (ip >= it->lo && ip < it->hi) {
    return static_cast<SymbolId>(it - symbols_.begin());
  }
  return std::nullopt;
}

std::optional<SymbolId> SymbolTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) return static_cast<SymbolId>(i);
  }
  return std::nullopt;
}

std::uint64_t SymbolTable::ip_at(SymbolId id, double frac) const {
  const Symbol& s = symbols_[id];
  if (frac < 0.0) frac = 0.0;
  if (frac >= 1.0) frac = 0.999999;
  return s.lo + static_cast<std::uint64_t>(frac * static_cast<double>(s.size()));
}

} // namespace fluxtrace
