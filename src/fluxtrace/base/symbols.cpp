#include "fluxtrace/base/symbols.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace {

SymbolId SymbolTable::add(std::string_view name, std::uint64_t code_bytes) {
  assert(code_bytes > 0 && "a function must occupy at least one byte");
  Symbol s;
  s.name = std::string(name);
  s.lo = next_addr_;
  s.hi = next_addr_ + code_bytes;
  next_addr_ = s.hi;
  lo_.push_back(s.lo);
  hi_.push_back(s.hi);
  symbols_.push_back(std::move(s));
  return static_cast<SymbolId>(symbols_.size() - 1);
}

SymbolId SymbolTable::add_range(std::string_view name, std::uint64_t lo,
                                std::uint64_t hi) {
  assert(hi > lo && "a function must occupy at least one byte");
  assert(lo >= (symbols_.empty() ? 0 : symbols_.back().hi) &&
         "ranges must be ascending and disjoint");
  Symbol s;
  s.name = std::string(name);
  s.lo = lo;
  s.hi = hi;
  next_addr_ = std::max(next_addr_, hi);
  lo_.push_back(s.lo);
  hi_.push_back(s.hi);
  symbols_.push_back(std::move(s));
  return static_cast<SymbolId>(symbols_.size() - 1);
}

std::optional<SymbolId> SymbolTable::resolve(std::uint64_t ip) const {
  // Ranges are sorted and disjoint by construction: binary search over the
  // flat lo_ array (8 bounds per cache line), then confirm against hi_.
  auto it = std::upper_bound(lo_.begin(), lo_.end(), ip);
  if (it == lo_.begin()) return std::nullopt;
  const std::size_t idx = static_cast<std::size_t>(it - lo_.begin()) - 1;
  if (ip < hi_[idx]) {
    return static_cast<SymbolId>(idx);
  }
  return std::nullopt;
}

std::optional<SymbolId> SymbolTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) return static_cast<SymbolId>(i);
  }
  return std::nullopt;
}

std::uint64_t SymbolTable::ip_at(SymbolId id, double frac) const {
  const Symbol& s = symbols_[id];
  if (frac < 0.0) frac = 0.0;
  if (frac >= 1.0) frac = 0.999999;
  return s.lo + static_cast<std::uint64_t>(frac * static_cast<double>(s.size()));
}

} // namespace fluxtrace
