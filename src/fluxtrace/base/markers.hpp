// The coarse-grained instrumentation half of the hybrid approach: a
// marking function called at *data-item switches* only — the code points
// where a pinned worker thread starts or finishes processing one data-item
// (paper §III-C). Each call records (timestamp, data-item id).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fluxtrace/base/time.hpp"

namespace fluxtrace {

/// Identifier of a data-item (packet, query, request). 64-bit so apps can
/// embed flow/sequence structure if they want.
using ItemId = std::uint64_t;

inline constexpr ItemId kNoItem = static_cast<ItemId>(-1);

/// What a marker denotes: the item entering or leaving this core.
enum class MarkerKind : std::uint8_t { Enter, Leave };

/// One instrumentation record, as written by the marking function.
struct Marker {
  Tsc tsc = 0;
  ItemId item = kNoItem;
  std::uint32_t core = 0;
  MarkerKind kind = MarkerKind::Enter;

  friend bool operator==(const Marker&, const Marker&) = default;
};

/// Append-only log the marking function writes into. One global log is
/// shared by all cores in the simulator (the machine serializes steps, so
/// no synchronization is needed); records carry their core id.
class MarkerLog {
 public:
  /// Optional live consumer, invoked on every record() — the hook online
  /// processing (core::OnlineTracer) attaches to.
  using Sink = std::function<void(const Marker&)>;

  /// Optional loss filter consulted before a record lands: return true to
  /// drop it (the write was skipped under overload — sim::FaultPlan
  /// installs its marker-loss decision here). Dropped records reach
  /// neither the log nor the sink, exactly like a skipped store.
  using DropFilter = std::function<bool(const Marker&)>;

  void record(std::uint32_t core, Tsc tsc, ItemId item, MarkerKind kind) {
    const Marker m{tsc, item, core, kind};
    if (drop_ && drop_(m)) {
      ++dropped_;
      return;
    }
    markers_.push_back(m);
    if (sink_) sink_(markers_.back());
  }

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_drop_filter(DropFilter f) { drop_ = std::move(f); }

  /// Records the drop filter swallowed (what production would have lost
  /// without ever knowing).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] const std::vector<Marker>& markers() const { return markers_; }
  [[nodiscard]] std::size_t size() const { return markers_.size(); }
  [[nodiscard]] bool empty() const { return markers_.empty(); }
  void clear() { markers_.clear(); }

  /// Markers recorded on one core, in record order (== time order, since a
  /// core's TSC is monotone).
  [[nodiscard]] std::vector<Marker> for_core(std::uint32_t core) const;

 private:
  std::vector<Marker> markers_;
  Sink sink_;
  DropFilter drop_;
  std::uint64_t dropped_ = 0;
};

} // namespace fluxtrace
