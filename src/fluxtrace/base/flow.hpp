// The 12-byte flow key the DPDK ACL case study classifies on (paper
// §IV-C1): source address (4 bytes), destination address (4 bytes), and
// source + destination TCP ports (2 + 2 bytes). Shared between the packet
// substrate and the ACL classifier.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace fluxtrace {

/// Flow key in host byte order; key_bytes() yields the network-order byte
/// string the tries walk.
struct FlowKey {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// The trie key: src addr, dst addr, src port, dst port — each
  /// big-endian, 12 bytes total (design (3) in §IV-C1).
  [[nodiscard]] std::array<std::uint8_t, 12> key_bytes() const {
    return {
        static_cast<std::uint8_t>(src_addr >> 24),
        static_cast<std::uint8_t>(src_addr >> 16),
        static_cast<std::uint8_t>(src_addr >> 8),
        static_cast<std::uint8_t>(src_addr),
        static_cast<std::uint8_t>(dst_addr >> 24),
        static_cast<std::uint8_t>(dst_addr >> 16),
        static_cast<std::uint8_t>(dst_addr >> 8),
        static_cast<std::uint8_t>(dst_addr),
        static_cast<std::uint8_t>(src_port >> 8),
        static_cast<std::uint8_t>(src_port),
        static_cast<std::uint8_t>(dst_port >> 8),
        static_cast<std::uint8_t>(dst_port),
    };
  }
};

inline constexpr std::size_t kFlowKeyBytes = 12;

/// Parse dotted-quad notation ("192.168.10.4") to a host-order address.
/// Returns 0 on malformed input (0.0.0.0 is not a useful address here).
[[nodiscard]] constexpr std::uint32_t ipv4(const char* s) {
  std::uint32_t addr = 0;
  std::uint32_t octet = 0;
  int octets = 0;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(*p - '0');
      if (octet > 255) return 0;
    } else if (*p == '.' || *p == '\0') {
      addr = (addr << 8) | octet;
      octet = 0;
      ++octets;
      if (*p == '\0') break;
    } else {
      return 0;
    }
  }
  return octets == 4 ? addr : 0;
}

/// Format a host-order address as dotted-quad.
[[nodiscard]] inline std::string ipv4_to_string(std::uint32_t a) {
  return std::to_string((a >> 24) & 0xff) + '.' +
         std::to_string((a >> 16) & 0xff) + '.' +
         std::to_string((a >> 8) & 0xff) + '.' + std::to_string(a & 0xff);
}

} // namespace fluxtrace
