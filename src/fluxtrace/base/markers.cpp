#include "fluxtrace/base/markers.hpp"

namespace fluxtrace {

std::vector<Marker> MarkerLog::for_core(std::uint32_t core) const {
  std::vector<Marker> out;
  for (const Marker& m : markers_) {
    if (m.core == core) out.push_back(m);
  }
  return out;
}

} // namespace fluxtrace
