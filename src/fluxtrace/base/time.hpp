// Simulated time: the machine counts TSC cycles exactly as an Intel core
// does, and everything in fluxtrace (markers, PEBS samples, latencies) is
// expressed in cycles of a single global clock domain. CpuSpec converts
// between cycles and wall-clock nanoseconds.
#pragma once

#include <cstdint>

namespace fluxtrace {

/// Timestamp counter value, in CPU cycles. All cores share one clock domain
/// (invariant TSC), as on the paper's Skylake evaluation machine.
using Tsc = std::uint64_t;

/// Signed cycle delta, for overflow-free subtraction in intermediate math.
using TscDelta = std::int64_t;

/// Static description of the simulated CPU. Defaults approximate the
/// paper's Skylake Xeon testbed (Table II): ~3 GHz, 4-wide retirement.
struct CpuSpec {
  double freq_ghz = 3.0;       ///< TSC frequency.
  double cycles_per_uop = 0.4; ///< average retirement cost of one micro-op
                               ///< (Skylake retires up to 4 uops/cycle; real
                               ///< code averages ~2.5 uops/cycle).
  std::uint32_t num_cores = 4;
  Tsc branch_miss_penalty = 15; ///< pipeline-flush stall per mispredict

  /// Convert a duration in nanoseconds to cycles (rounded to nearest).
  [[nodiscard]] constexpr Tsc cycles(double ns) const {
    return static_cast<Tsc>(ns * freq_ghz + 0.5);
  }
  /// Convert a cycle count to nanoseconds.
  [[nodiscard]] constexpr double ns(Tsc c) const {
    return static_cast<double>(c) / freq_ghz;
  }
  /// Convert a cycle count to microseconds (the paper's reporting unit).
  [[nodiscard]] constexpr double us(Tsc c) const { return ns(c) / 1000.0; }
  /// Cycles taken to retire `uops` micro-ops at the base rate.
  [[nodiscard]] constexpr Tsc uop_cycles(std::uint64_t uops) const {
    return static_cast<Tsc>(static_cast<double>(uops) * cycles_per_uop + 0.5);
  }
};

} // namespace fluxtrace
