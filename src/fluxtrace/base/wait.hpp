// Wait edges: the "why did this item wait" half of the trace (ISSUE 8).
// Per-item-per-function elapsed time locates where cycles went; a wait
// edge records a span during which one core made no progress because it
// was blocked on a resource another core holds — an SPSC ring that
// stayed full (the consumer owns the space), a ring that stayed empty
// (the producer owns the data), a capture sink exerting backpressure, or
// the supervisor shedding records under pressure. Joining these edges
// with the attributed samples yields the waiting-dependency graph
// (query/waitgraph.hpp) behind the `critical_path` and `blocked_by`
// pipeline stages.
//
// Capture is episode-based and cold-path-only: the first failed
// push/pop opens an episode, the next successful one closes it, and only
// the close records anything. A ring running below capacity never
// touches the probe beyond one branch per operation.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace {

/// Why the waiter was blocked.
enum class WaitCause : std::uint8_t {
  RingFull = 0,         ///< producer observed a full SPSC ring
  RingEmpty = 1,        ///< consumer observed an empty (or not-ready) ring
  SinkBackpressure = 2, ///< capture session entered the backpressured state
  Shed = 3,             ///< capture session was shedding records
};

inline constexpr std::uint8_t kNumWaitCauses = 4;

[[nodiscard]] constexpr std::string_view to_string(WaitCause c) {
  switch (c) {
    case WaitCause::RingFull: return "ring-full";
    case WaitCause::RingEmpty: return "ring-empty";
    case WaitCause::SinkBackpressure: return "sink-backpressure";
    case WaitCause::Shed: return "shed";
  }
  return "?";
}

/// One closed blocking episode: waiter_core made no progress over
/// [enter, leave] because `resource` was unavailable, and holder_core is
/// the core whose progress would have freed it (the consumer of a full
/// ring, the producer of an empty one, the sink drain for backpressure).
/// `item` is the data-item the waiter was trying to hand off when known
/// (ring-full episodes carry the blocked item; empty-ring and session
/// episodes are not item-bound and carry kNoItem).
struct WaitEdge {
  Tsc enter = 0;
  Tsc leave = 0;
  ItemId item = kNoItem;
  std::uint32_t waiter_core = 0;
  std::uint32_t holder_core = 0;
  std::uint32_t resource = 0;
  WaitCause cause = WaitCause::RingFull;

  [[nodiscard]] Tsc blocked() const { return leave - enter; }

  friend bool operator==(const WaitEdge&, const WaitEdge&) = default;
};

/// Append-only collector for closed episodes. The record path is
/// mutex-guarded so a producer thread (ring-full episodes) and a consumer
/// thread (ring-empty episodes) can share one log — stall closes are cold
/// by definition, so the lock is never on a fast path. `edges()` hands
/// out the underlying vector and is only meaningful once the recording
/// threads are quiescent (joined, or the single-threaded simulator).
class WaitLog {
 public:
  /// Optional hook invoked (under the lock) on every record — the seam
  /// higher layers use to bump obs counters without base depending on
  /// obs (obs::count_wait_edge is the canonical hook).
  using Hook = void (*)(const WaitEdge&);

  void set_hook(Hook hook) { hook_ = hook; }

  void record(const WaitEdge& e) {
    const std::lock_guard<std::mutex> lock(mu_);
    edges_.push_back(e);
    if (hook_ != nullptr) hook_(e);
  }

  [[nodiscard]] const std::vector<WaitEdge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return edges_.size();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    edges_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<WaitEdge> edges_;
  Hook hook_ = nullptr;
};

} // namespace fluxtrace
