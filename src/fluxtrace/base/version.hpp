// The single source of truth for the fluxtrace version. Everything that
// reports a version — the flxt_* tools' shared --version flag
// (tools/cli.hpp), docs, packaging — reads these constants; nothing else
// may hard-code a version string.
#pragma once

#include <string_view>

namespace fluxtrace {

inline constexpr int kVersionMajor = 0;
inline constexpr int kVersionMinor = 5;
inline constexpr int kVersionPatch = 0;

inline constexpr std::string_view kVersionString = "0.5.0";

} // namespace fluxtrace
