// The symbol table of the traced binary: function names and the address
// ranges of their machine code. Integration step 2 of the paper compares
// each PEBS sample's instruction pointer against these ranges to recover
// which function was executing when the sample was taken.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fluxtrace {

/// Dense id of a function symbol; index into the SymbolTable.
using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// One function's entry: [lo, hi) address range of its code.
struct Symbol {
  std::string name;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0; // exclusive

  [[nodiscard]] std::uint64_t size() const { return hi - lo; }
};

/// Append-only symbol table. Functions are laid out contiguously from a
/// base address, mirroring the text section of a real binary; lookup by
/// instruction pointer is a binary search over the (sorted, disjoint)
/// ranges. resolve() is the hottest call in trace integration, so the
/// bounds are mirrored into flat sorted arrays: the search touches eight
/// packed bounds per cache line instead of striding over string-bearing
/// Symbol records. resolve() only reads, so concurrent lookups from the
/// parallel analysis engine are safe.
class SymbolTable {
 public:
  /// Text-section base; arbitrary but non-zero so that ip==0 is never valid.
  static constexpr std::uint64_t kTextBase = 0x400000;

  /// Register a function of `code_bytes` bytes of machine code; returns its
  /// id. Names need not be unique, but usually are.
  SymbolId add(std::string_view name, std::uint64_t code_bytes = 0x400);

  /// Register a function at an explicit address range [lo, hi); ranges
  /// must arrive in ascending, non-overlapping order (as a symbol-file
  /// reader produces them). Subsequent add() calls continue after `hi`.
  SymbolId add_range(std::string_view name, std::uint64_t lo,
                     std::uint64_t hi);

  /// Find the function containing instruction pointer `ip`, or nullopt if
  /// `ip` falls outside every registered range.
  [[nodiscard]] std::optional<SymbolId> resolve(std::uint64_t ip) const;

  /// Find a symbol by exact name (first match), or nullopt.
  [[nodiscard]] std::optional<SymbolId> find(std::string_view name) const;

  [[nodiscard]] const Symbol& operator[](SymbolId id) const {
    return symbols_[id];
  }
  [[nodiscard]] std::string_view name(SymbolId id) const {
    return symbols_[id].name;
  }
  [[nodiscard]] std::size_t size() const { return symbols_.size(); }
  [[nodiscard]] bool empty() const { return symbols_.empty(); }

  /// Instruction pointer at fractional offset `frac` in [0,1) through the
  /// function's code. The simulator uses this to synthesize the ip a PEBS
  /// sample would carry at a given progress point.
  [[nodiscard]] std::uint64_t ip_at(SymbolId id, double frac) const;

 private:
  std::vector<Symbol> symbols_;
  // Flat copies of the [lo, hi) bounds, index-parallel to symbols_: the
  // resolve() fast path binary-searches lo_ and confirms against hi_
  // without ever touching a Symbol record.
  std::vector<std::uint64_t> lo_;
  std::vector<std::uint64_t> hi_;
  std::uint64_t next_addr_ = kTextBase;
};

} // namespace fluxtrace
