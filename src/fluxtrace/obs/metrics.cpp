#include "fluxtrace/obs/metrics.hpp"

#include <stdexcept>

namespace fluxtrace::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

} // namespace detail

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  if (target > static_cast<double>(count)) target = static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) >= target) {
      const std::uint64_t lo = hist_bucket_lo(i);
      const std::uint64_t hi = hist_bucket_hi(i);
      const double width = static_cast<double>(hi - lo) + 1.0;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(n);
      double v = static_cast<double>(lo) + frac * width;
      if (v < static_cast<double>(min)) v = static_cast<double>(min);
      if (v > static_cast<double>(max)) v = static_cast<double>(max);
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max); // unreachable when counts are consistent
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  std::uint64_t mn = ~std::uint64_t{0};
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t smin = s.min.load(std::memory_order_relaxed);
    if (smin < mn) mn = smin;
    const std::uint64_t smax = s.max.load(std::memory_order_relaxed);
    if (smax > out.max) out.max = smax;
  }
  for (const std::uint64_t n : out.buckets) out.count += n;
  out.min = out.count == 0 ? 0 : mn;
  return out;
}

Registry& Registry::global() {
  static Registry* r = new Registry; // leaked: handles must outlive atexit
  return *r;
}

void Registry::claim(std::string_view name, Kind kind) {
  const auto it = kinds_.find(name);
  if (it == kinds_.end()) {
    kinds_.emplace(std::string(name), kind);
  } else if (it->second != kind) {
    throw std::logic_error("obs metric '" + std::string(name) +
                           "' registered twice with different kinds");
  }
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim(name, Kind::Counter);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim(name, Kind::Gauge);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  claim(name, Kind::Histogram);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

void count_wait_edge(const WaitEdge& e) {
  struct WaitMetrics {
    Counter& ring_full = metrics().counter("rt.ring.full_stalls");
    Counter& ring_empty = metrics().counter("rt.ring.empty_stalls");
    Counter& backpressure = metrics().counter("session.backpressure_waits");
    static WaitMetrics& get() {
      static WaitMetrics m;
      return m;
    }
  };
  WaitMetrics& m = WaitMetrics::get();
  switch (e.cause) {
    case WaitCause::RingFull: m.ring_full.inc(); break;
    case WaitCause::RingEmpty: m.ring_empty.inc(); break;
    case WaitCause::SinkBackpressure:
    case WaitCause::Shed: m.backpressure.inc(); break;
  }
}

} // namespace fluxtrace::obs
