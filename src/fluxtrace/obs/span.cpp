#include "fluxtrace/obs/span.hpp"

#include <chrono>
#include <memory>
#include <mutex>

#include "fluxtrace/rt/spsc_ring.hpp"

namespace fluxtrace::obs {

std::uint64_t steady_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

struct SpanLog::ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::uint32_t track_id)
      : ring(capacity), track(track_id) {}
  rt::SpscRing<SpanEvent> ring;
  std::uint32_t track;
};

struct SpanLog::Impl {
  std::mutex mu; ///< guards the buffer list and drain
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint32_t> next_track{0};
  std::atomic<std::size_t> capacity{8192};
  Counter& drops = Registry::global().counter("obs.spans_dropped");
};

SpanLog::SpanLog() : impl_(new Impl) {}

SpanLog& SpanLog::global() {
  static SpanLog* log = new SpanLog; // leaked: spans may record at exit
  return *log;
}

SpanLog::ThreadBuffer& SpanLog::local() {
  thread_local std::shared_ptr<ThreadBuffer> tl = [this] {
    auto buf = std::make_shared<ThreadBuffer>(
        impl_->capacity.load(std::memory_order_relaxed),
        impl_->next_track.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->buffers.push_back(buf);
    return buf;
  }();
  return *tl;
}

void SpanLog::record(const char* name, std::uint64_t begin_ns,
                     std::uint64_t end_ns) {
  ThreadBuffer& b = local();
  if (!b.ring.push(
          SpanEvent{name, begin_ns, end_ns, b.track, SpanClock::Steady})) {
    impl_->drops.inc();
  }
}

void SpanLog::record_virtual(const char* name, std::uint64_t begin_tsc,
                             std::uint64_t end_tsc, std::uint32_t core) {
  ThreadBuffer& b = local();
  if (!b.ring.push(
          SpanEvent{name, begin_tsc, end_tsc, core, SpanClock::VirtualTsc})) {
    impl_->drops.inc();
  }
}

std::vector<SpanEvent> SpanLog::drain() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<SpanEvent> out;
  SpanEvent batch[256];
  for (const auto& buf : impl_->buffers) {
    for (;;) {
      const std::size_t n = buf->ring.pop_burst(batch, 256);
      if (n == 0) break;
      out.insert(out.end(), batch, batch + n);
    }
  }
  return out;
}

std::uint64_t SpanLog::dropped() const { return impl_->drops.value(); }

void SpanLog::set_thread_capacity(std::size_t spans) {
  impl_->capacity.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
}

} // namespace fluxtrace::obs
