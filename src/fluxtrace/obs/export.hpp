// Self-telemetry, part 3: exporters.
//
//   * write_chrome_trace() — Chrome trace-event JSON (the "JSON Array
//     Format" every Perfetto / chrome://tracing build loads): paired
//     "B"/"E" duration events per track, with process/thread metadata.
//     Steady-clock spans appear under pid 1 ("fluxtrace"), one tid per
//     thread, ts in microseconds. Virtual-TSC spans appear under pid 2
//     ("fluxtrace sim (virtual tsc)"), one tid per simulated core, with
//     cycles exported as if nanoseconds (ts = cycles/1000) — a separate
//     process so the two time axes are never misread as one.
//   * write_prometheus() — plain-text exposition of a registry snapshot:
//     counters and gauges verbatim, histograms as summaries with
//     quantile="0.5|0.95|0.99" plus _sum/_count. Metric names are
//     prefixed "fluxtrace_" and sanitized to [a-zA-Z0-9_:].
#pragma once

#include <iosfwd>
#include <vector>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::obs {

/// Write `spans` (any order; sorted per track internally) as Chrome
/// trace-event JSON. Every "B" gets a matching "E" with the same name on
/// the same pid/tid, properly nested — the validity test parses the
/// output back and asserts exactly that.
void write_chrome_trace(std::ostream& os, std::vector<SpanEvent> spans);

/// Prometheus text exposition of a metrics snapshot.
void write_prometheus(std::ostream& os, const Registry::Snapshot& snap);

} // namespace fluxtrace::obs
