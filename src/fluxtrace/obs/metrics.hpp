// Self-telemetry, part 1: the metrics registry. The tracer diagnoses
// other programs' fluctuations; this subsystem lets it diagnose its own
// (ISSUE 3) with the same always-on, low-overhead discipline the paper
// demands of production tracing:
//
//   * Counter / Gauge / Histogram are thread-sharded: every mutation is
//     one relaxed atomic RMW on a cache-line-private slot, so hot paths
//     (thread-pool tasks, chunk decodes, PEBS drains) never contend.
//   * Handles are plain references into the registry, valid forever (the
//     registry is a leaky singleton); instrumented code looks a metric up
//     once and keeps the reference.
//   * snapshot() sums the shards — values are eventually consistent
//     across threads, exact once the writers are quiescent.
//   * Histograms are log-bucketed (one bucket per power of two) and
//     derive p50/p95/p99 from the bucket counts; exact min/max/sum ride
//     along so all-equal distributions report exact quantiles.
//
// Defining FLUXTRACE_OBS_NOOP compiles every mutation out entirely; the
// default build keeps metrics always-on (they are cheap) and gates only
// the clock-reading span layer (span.hpp) behind obs::enabled().
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fluxtrace/base/wait.hpp"

namespace fluxtrace::obs {

/// Runtime switch for the *timed* telemetry paths (spans, task latency
/// timing). Off by default: the disabled configuration must cost <2% on
/// the end-to-end read benchmark.
namespace detail {
inline std::atomic<bool> g_enabled{false};
} // namespace detail

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Shard count per metric. Threads hash onto shards; 16 slots keeps the
/// worst case (more threads than shards) at 2-3 writers per line while
/// bounding per-metric memory.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

inline constexpr std::size_t kLineBytes = 64;

/// Stable per-thread shard slot, assigned round-robin at first use.
[[nodiscard]] std::size_t shard_index();

struct alignas(kLineBytes) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(kLineBytes) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

} // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
#ifndef FLUXTRACE_OBS_NOOP
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_;
};

/// Signed level tracked as a sum of sharded deltas (queue depths, open
/// resources): add() on one thread and sub() on another still sum to the
/// true level.
class Gauge {
 public:
  void add(std::int64_t d) {
#ifndef FLUXTRACE_OBS_NOOP
    shards_[detail::shard_index()].v.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  void sub(std::int64_t d) { add(-d); }
  [[nodiscard]] std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::PaddedI64, kMetricShards> shards_;
};

/// Bucket count for the log-bucketed histogram: bucket 0 holds the value
/// 0; bucket k (1..64) holds [2^(k-1), 2^k - 1].
inline constexpr std::size_t kHistBuckets = 65;

[[nodiscard]] constexpr std::size_t hist_bucket(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}
[[nodiscard]] constexpr std::uint64_t hist_bucket_lo(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}
[[nodiscard]] constexpr std::uint64_t hist_bucket_hi(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// Point-in-time view of a histogram, with the quantile math. The
/// quantile definition (tested exactly in tests/obs/metrics_test.cpp):
/// q <= 0 returns the minimum; otherwise
/// target rank t = q*count (clamped to [1, count]); find the first
/// bucket whose cumulative count reaches t; interpolate linearly inside
/// it as lo + (t - cum_before)/n_bucket * (hi - lo + 1); clamp the
/// result into [min, max] so degenerate distributions are exact.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0; ///< 0 when empty
  std::uint64_t max = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  [[nodiscard]] double quantile(double q) const;
};

/// Log-bucketed latency/size histogram with sharded buckets.
class Histogram {
 public:
  void observe(std::uint64_t v) {
#ifndef FLUXTRACE_OBS_NOOP
    Shard& s = shards_[detail::shard_index()];
    s.buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    update_min(s.min, v);
    update_max(s.max, v);
#else
    (void)v;
#endif
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  struct alignas(detail::kLineBytes) Shard {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  static void update_min(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
    std::uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<Shard, kMetricShards> shards_;
};

/// Named metric families. Lookup takes a mutex — instrumented code is
/// expected to resolve its handles once (a function-local static, a
/// member set in a constructor) and mutate through the references, which
/// never invalidate. Names are dotted ("rt.pool.tasks_executed"); each
/// name owns exactly one kind — asking for an existing name as a
/// different kind throws std::logic_error (a wiring bug, not input).
class Registry {
 public:
  Registry() = default; ///< tests may build private registries
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem reports into. Never
  /// destroyed, so handles stay valid during static teardown.
  static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  /// Name-sorted sums of every shard; exact once writers are quiescent.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  void claim(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for Registry::global().
[[nodiscard]] inline Registry& metrics() { return Registry::global(); }

/// The canonical base::WaitLog hook (ISSUE 8): bumps the stall counters
/// (`rt.ring.full_stalls`, `rt.ring.empty_stalls`,
/// `session.backpressure_waits`) for every recorded wait edge. base
/// cannot link obs, so sim::Machine (and anything else that owns a
/// WaitLog above the obs layer) installs this via WaitLog::set_hook.
void count_wait_edge(const WaitEdge& e);

} // namespace fluxtrace::obs
