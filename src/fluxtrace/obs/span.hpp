// Self-telemetry, part 2: scoped spans. OBS_SPAN("decode_chunk") records
// one begin/end interval for the enclosing scope into a per-thread
// wait-free ring (rt::SpscRing — the owning thread produces, the
// exporter drains), so the tracer can show its *own* timeline in
// Perfetto/chrome://tracing next to the workloads it analyses.
//
// Two clock domains, never mixed (ISSUE 3: determinism preserved):
//   * Steady     — std::chrono::steady_clock, ns since the first use in
//                  this process; what the analysis layer (io, core, rt)
//                  stamps. Tracks are per-thread.
//   * VirtualTsc — the simulator's cycle clock; what the sim layer
//                  stamps (PEBS drains). Tracks are per simulated core,
//                  and the export puts them under a separate process so
//                  the timelines cannot be misread as one axis.
//
// Everything is gated on obs::enabled(): a disabled span is one relaxed
// load and no clock read. A full ring drops the span and counts the drop
// (obs.spans_dropped) — self-telemetry must never block the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::obs {

enum class SpanClock : std::uint8_t {
  Steady,     ///< steady_clock ns since process-local epoch
  VirtualTsc, ///< simulated TSC cycles
};

/// One closed interval. `name` must be a static-lifetime string (the
/// macro passes literals); `track` is the obs thread id (Steady) or the
/// simulated core (VirtualTsc).
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t track = 0;
  SpanClock clock = SpanClock::Steady;
};

/// Nanoseconds on the steady clock since this process first asked.
[[nodiscard]] std::uint64_t steady_now_ns();

/// The process-wide span collector: per-thread SPSC rings, registered on
/// first use, drained by the exporter.
class SpanLog {
 public:
  static SpanLog& global();

  /// Record a closed Steady span on the calling thread's ring.
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);
  /// Record a closed VirtualTsc span (sim layer; `core` is the track).
  void record_virtual(const char* name, std::uint64_t begin_tsc,
                      std::uint64_t end_tsc, std::uint32_t core);

  /// Pop everything recorded so far, in no particular global order (the
  /// exporter sorts per track). One drainer at a time.
  [[nodiscard]] std::vector<SpanEvent> drain();

  /// Spans discarded because a thread's ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Ring capacity for threads that register *after* this call
  /// (existing rings keep their size). Default 8192 spans per thread.
  void set_thread_capacity(std::size_t spans);

 private:
  SpanLog();
  struct ThreadBuffer;
  ThreadBuffer& local();

  struct Impl;
  Impl* impl_; // leaked with the singleton
};

/// RAII span: stamps begin at construction, records at destruction.
/// Disabled telemetry makes both ends a no-op (no clock read).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (enabled()) {
      name_ = name;
      begin_ = steady_now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      SpanLog::global().record(name_, begin_, steady_now_ns());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ = 0;
};

} // namespace fluxtrace::obs

#define FLUXTRACE_OBS_CONCAT2(a, b) a##b
#define FLUXTRACE_OBS_CONCAT(a, b) FLUXTRACE_OBS_CONCAT2(a, b)

#ifndef FLUXTRACE_OBS_NOOP
#define OBS_SPAN(name)                                                        \
  ::fluxtrace::obs::ScopedSpan FLUXTRACE_OBS_CONCAT(obs_span_, __LINE__)(name)
#else
#define OBS_SPAN(name) ((void)0)
#endif
