#include "fluxtrace/obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <utility>

namespace fluxtrace::obs {

namespace {

constexpr int kSteadyPid = 1;
constexpr int kVirtualPid = 2;

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Chrome "ts" is microseconds. Steady spans carry ns; virtual spans
/// carry cycles exported as if ns — either way /1000 with ns precision.
std::string ts_us(std::uint64_t t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", t / 1000,
                static_cast<unsigned>(t % 1000));
  return buf;
}

class EventSink {
 public:
  explicit EventSink(std::ostream& os) : os_(os) { os_ << "{\"traceEvents\":["; }
  void meta(int pid, int tid, const char* what, const std::string& name) {
    sep();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid;
    if (tid >= 0) os_ << ",\"tid\":" << tid;
    os_ << ",\"name\":\"" << what << "\",\"args\":{\"name\":\"" << name
        << "\"}}";
  }
  void begin(int pid, std::uint32_t tid, std::uint64_t ts, const char* name) {
    sep();
    os_ << "{\"ph\":\"B\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << ts_us(ts) << ",\"name\":\"" << json_escape(name)
        << "\"}";
  }
  void end(int pid, std::uint32_t tid, std::uint64_t ts, const char* name) {
    sep();
    os_ << "{\"ph\":\"E\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":" << ts_us(ts) << ",\"name\":\"" << json_escape(name)
        << "\"}";
  }
  void close() { os_ << "],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  void sep() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
};

} // namespace

void write_chrome_trace(std::ostream& os, std::vector<SpanEvent> spans) {
  // Group by (clock, track): each group becomes one pid/tid timeline.
  std::map<std::pair<int, std::uint32_t>, std::vector<SpanEvent>> tracks;
  for (SpanEvent& s : spans) {
    const int pid = s.clock == SpanClock::Steady ? kSteadyPid : kVirtualPid;
    tracks[{pid, s.track}].push_back(s);
  }

  EventSink sink(os);
  bool steady_seen = false;
  bool virtual_seen = false;
  for (const auto& [key, _] : tracks) {
    (key.first == kSteadyPid ? steady_seen : virtual_seen) = true;
  }
  if (steady_seen) sink.meta(kSteadyPid, -1, "process_name", "fluxtrace");
  if (virtual_seen) {
    sink.meta(kVirtualPid, -1, "process_name", "fluxtrace sim (virtual tsc)");
  }
  for (const auto& [key, _] : tracks) {
    const char* kind = key.first == kSteadyPid ? "thread " : "core ";
    sink.meta(key.first, static_cast<int>(key.second), "thread_name",
              kind + std::to_string(key.second));
  }

  for (auto& [key, evs] : tracks) {
    const auto [pid, tid] = key;
    // Outermost-first order: begin ascending, longer span first on ties.
    // RAII guarantees spans on one track nest or are disjoint, so a
    // simple sweep with a stack emits a correctly paired, ts-monotone
    // B/E stream.
    std::sort(evs.begin(), evs.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;
              });
    std::vector<const SpanEvent*> stack;
    for (const SpanEvent& s : evs) {
      while (!stack.empty() && stack.back()->end <= s.begin) {
        sink.end(pid, tid, stack.back()->end, stack.back()->name);
        stack.pop_back();
      }
      sink.begin(pid, tid, s.begin, s.name);
      stack.push_back(&s);
    }
    while (!stack.empty()) {
      sink.end(pid, tid, stack.back()->end, stack.back()->name);
      stack.pop_back();
    }
  }
  sink.close();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "fluxtrace_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

} // namespace

void write_prometheus(std::ostream& os, const Registry::Snapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << prom_num(h.quantile(0.5)) << "\n";
    os << n << "{quantile=\"0.95\"} " << prom_num(h.quantile(0.95)) << "\n";
    os << n << "{quantile=\"0.99\"} " << prom_num(h.quantile(0.99)) << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
}

} // namespace fluxtrace::obs
