// NGINX-like web server model for the Figure 2 motivation experiment:
// per-request elapsed time of each function of a web server, estimated the
// way the paper does it — measure cycles per function with the PMU over a
// long run (perf-style), then attribute 149 µs × c_f / c_a to function f.
// The point the figure makes: most functions take below ~4 µs per request,
// so instrumenting every function is far too heavy.
//
// The model processes requests through a realistic chain of event-loop and
// HTTP-processing functions whose per-request work varies deterministically
// per request id (connection reuse, header size, log buffering...).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

struct WebServerConfig {
  std::uint64_t total_requests = 3000;
  double inter_request_gap_ns = 2000.0; ///< 1K concurrent connections keep
                                        ///< the worker almost saturated
  bool instrument = false; ///< emit per-request markers (hybrid tracing)
};

class WebServerModel {
 public:
  explicit WebServerModel(SymbolTable& symtab, WebServerConfig cfg = {});

  void attach(sim::Machine& m, std::uint32_t worker_core);

  struct Fn {
    SymbolId sym = kInvalidSymbol;
    std::uint64_t base_uops = 0;   ///< typical per-request work
    std::uint32_t jitter_pct = 0;  ///< deterministic per-request variation
    std::uint32_t mem_loads = 0;   ///< per-request loads (buffers, tables)
  };

  [[nodiscard]] const std::vector<Fn>& functions() const { return fns_; }
  [[nodiscard]] std::uint64_t processed() const { return task_.processed(); }

 private:
  class WorkerTask final : public sim::Task {
   public:
    explicit WorkerTask(WebServerModel& m) : model_(m) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override {
      return "nginx-worker";
    }
    [[nodiscard]] std::uint64_t processed() const { return processed_; }

   private:
    WebServerModel& model_;
    std::uint64_t processed_ = 0;
    Tsc next_ready_ = 0;
  };

  WebServerConfig cfg_;
  std::vector<Fn> fns_;
  WorkerTask task_;
};

} // namespace fluxtrace::apps
