#include "fluxtrace/apps/webserver_model.hpp"

namespace fluxtrace::apps {

namespace {
constexpr std::uint64_t kConnHeap = 0x40000000ull;

/// Deterministic per-(request, function) jitter in [-1, 1] — splitmix64
/// folded to a signed fraction.
double jitter(std::uint64_t request, std::uint64_t fn) {
  std::uint64_t z = request * 0x9e3779b97f4a7c15ull + fn * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return (static_cast<double>(z & 0xffffu) / 32768.0) - 1.0;
}
} // namespace

WebServerModel::WebServerModel(SymbolTable& symtab, WebServerConfig cfg)
    : cfg_(cfg), task_(*this) {
  // Per-request work in uops; at cycles_per_uop = 0.4 and 3 GHz,
  // 7500 uops ≈ 1 µs. The mix mirrors what perf shows for NGINX serving
  // the 612-byte default index page: many sub-microsecond helpers, a few
  // multi-microsecond syscall-adjacent functions, one long tail.
  const auto add = [&](std::string_view name, std::uint64_t uops,
                       std::uint32_t jitter_pct, std::uint32_t loads) {
    fns_.push_back(Fn{symtab.add(name), uops, jitter_pct, loads});
  };
  add("ngx_epoll_process_events", 28000, 35, 60);       // ~3.7 us
  add("ngx_event_accept", 9000, 50, 20);                // ~1.2 us
  add("ngx_http_init_connection", 6000, 30, 12);        // ~0.8 us
  add("ngx_http_process_request_line", 11000, 40, 25);  // ~1.5 us
  add("ngx_http_process_request_headers", 17000, 45, 40);// ~2.3 us
  add("ngx_http_core_find_location", 5200, 25, 10);     // ~0.7 us
  add("ngx_http_static_handler", 13000, 30, 30);        // ~1.7 us
  add("ngx_http_send_header", 8200, 25, 16);            // ~1.1 us
  add("ngx_output_chain", 7400, 30, 18);                // ~1.0 us
  add("ngx_linux_sendfile_chain", 30000, 40, 50);       // ~4.0 us
  add("ngx_writev", 21000, 35, 30);                     // ~2.8 us
  add("ngx_http_finalize_request", 4400, 20, 8);        // ~0.6 us
  add("ngx_http_log_handler", 5800, 30, 14);            // ~0.8 us
  add("ngx_http_free_request", 3100, 20, 6);            // ~0.4 us
  add("ngx_event_expire_timers", 2300, 40, 5);          // ~0.3 us
  add("ngx_palloc", 2000, 25, 4);                       // ~0.27 us
  add("ngx_http_keepalive_handler", 3800, 45, 8);       // ~0.5 us
  add("ngx_http_validate_host", 1600, 20, 3);           // ~0.2 us
}

void WebServerModel::attach(sim::Machine& m, std::uint32_t worker_core) {
  m.attach(worker_core, task_);
}

sim::StepStatus WebServerModel::WorkerTask::step(sim::Cpu& cpu) {
  if (processed_ >= model_.cfg_.total_requests) return sim::StepStatus::Done;
  if (cpu.now() < next_ready_) return sim::StepStatus::Idle;

  const std::uint64_t req = processed_;
  if (model_.cfg_.instrument) cpu.mark_enter(req);
  for (std::size_t i = 0; i < model_.fns_.size(); ++i) {
    const Fn& f = model_.fns_[i];
    const double j = jitter(req, i) * (static_cast<double>(f.jitter_pct) / 100.0);
    const auto uops = static_cast<std::uint64_t>(
        static_cast<double>(f.base_uops) * (1.0 + j));
    sim::ExecBlock blk{f.sym, uops, uops / 250, {}};
    if (f.mem_loads > 0) {
      // Each request touches its own connection state (cold-ish) —
      // spread across a 64 MiB arena so reuse across requests is partial.
      blk.mem = sim::MemPattern{
          kConnHeap + (req % 1024) * 65536, f.mem_loads, 256};
    }
    cpu.run(blk);
  }
  if (model_.cfg_.instrument) cpu.mark_leave(req);

  ++processed_;
  next_ready_ =
      cpu.now() + cpu.spec().cycles(model_.cfg_.inter_request_gap_ns);
  return processed_ >= model_.cfg_.total_requests ? sim::StepStatus::Done
                                                  : sim::StepStatus::Progress;
}

} // namespace fluxtrace::apps
