// The realistic case study (§IV-C): a DPDK-style firewall with three
// worker threads pinned to cores — RX pulls packets from NIC 0 into a
// software ring, ACL classifies them against the installed rules (the
// fluctuating function, rte_acl_classify), TX pushes the survivors out of
// NIC 1. The ACL thread is the instrumented one: it logs the timestamp
// right after retrieving a packet from the RX ring and right before
// pushing it to the TX ring.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/batch.hpp"
#include "fluxtrace/net/nic.hpp"
#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

struct AclFirewallConfig {
  acl::MultiTrieConfig trie{acl::kPaperRulesPerTrie, 0};
  acl::AclCostModel cost{};
  /// Fraction of rte_acl_classify's time that is memory-bound stall
  /// (trie-node loads) rather than retired work. The walk's total time is
  /// unchanged; only the uop (and hence sample) rate inside it drops.
  double classify_stall_fraction = 0.4;
  std::uint64_t rx_uops = 900;   ///< per-packet NIC poll + ring push
  std::uint64_t tx_uops = 900;   ///< per-packet ring pop + NIC push
  std::uint64_t pop_uops = 350;  ///< ACL thread: retrieve from RX ring
  std::uint64_t push_uops = 350; ///< ACL thread: hand to TX ring
  std::uint64_t poll_uops = 120; ///< one empty poll in any busy loop
  std::size_t ring_depth = 4096;
  bool forward_dropped = false;  ///< also forward Drop verdicts (testing)
  bool instrument = true;        ///< emit the ACL thread's markers
  /// Also mark packets on the RX and TX threads (multi-core tracing: the
  /// same item then has one window per core it crossed, and the
  /// integrator reports per-core function times plus queueing gaps).
  bool instrument_rx_tx = false;
  /// When > 1, the ACL thread processes bursts of up to this many packets
  /// under a single batch marker pair (§IV-C2 future work; see
  /// core::BatchIntegrator for the expansion back to per-item estimates).
  std::uint32_t batch_size = 1;
};

class AclFirewallApp {
 public:
  AclFirewallApp(SymbolTable& symtab, const acl::RuleSet& rules,
                 AclFirewallConfig cfg = {});

  /// Attach the three worker threads. NIC 0 is rx_nic() (feed it from a
  /// TrafficGen), NIC 1 is tx_nic() (collect from it).
  void attach(sim::Machine& m, std::uint32_t rx_core, std::uint32_t acl_core,
              std::uint32_t tx_core);

  /// The workers run until this many packets have been transmitted.
  void expect_packets(std::uint64_t n) { expected_ = n; }

  [[nodiscard]] net::Nic& rx_nic() { return nic0_; }
  [[nodiscard]] net::Nic& tx_nic() { return nic1_; }
  [[nodiscard]] const acl::MultiTrieClassifier& classifier() const {
    return classifier_;
  }

  [[nodiscard]] SymbolId classify_symbol() const { return rte_acl_classify_; }
  [[nodiscard]] SymbolId acl_loop_symbol() const { return acl_main_loop_; }

  /// Batch membership registry (meaningful when cfg.batch_size > 1).
  [[nodiscard]] const core::BatchTable& batch_table() const {
    return batches_;
  }

  [[nodiscard]] std::uint64_t classified() const { return classified_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t transmitted() const { return transmitted_; }

 private:
  class RxTask final : public sim::Task {
   public:
    explicit RxTask(AclFirewallApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "rx"; }

   private:
    AclFirewallApp& app_;
    std::uint64_t forwarded_ = 0;
  };

  class AclTask final : public sim::Task {
   public:
    explicit AclTask(AclFirewallApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "acl"; }

   private:
    AclFirewallApp& app_;
  };

  class TxTask final : public sim::Task {
   public:
    explicit TxTask(AclFirewallApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "tx"; }

   private:
    AclFirewallApp& app_;
  };

  AclFirewallConfig cfg_;
  acl::MultiTrieClassifier classifier_;

  SymbolId rx_loop_, tx_loop_, acl_main_loop_, rte_acl_classify_;
  net::Nic nic0_, nic1_;
  rt::SimChannel<net::Packet> rx_to_acl_;
  rt::SimChannel<net::Packet> acl_to_tx_;

  RxTask rx_task_;
  AclTask acl_task_;
  TxTask tx_task_;

  core::BatchTable batches_;
  std::uint64_t expected_ = 0;
  std::uint64_t classified_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transmitted_ = 0;
};

} // namespace fluxtrace::apps
