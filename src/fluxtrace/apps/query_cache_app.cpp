#include "fluxtrace/apps/query_cache_app.hpp"

#include <algorithm>

namespace fluxtrace::apps {

QueryCacheApp::QueryCacheApp(SymbolTable& symtab, QueryCacheAppConfig cfg)
    : cfg_(cfg),
      f1_(symtab.add("sample_app::f1_parse", 0x400)),
      f2_(symtab.add("sample_app::f2_cache_lookup", 0x600)),
      f3_(symtab.add("sample_app::f3_transform", 0x800)),
      rx_loop_(symtab.add("sample_app::rx_loop", 0x200)),
      worker_loop_(symtab.add("sample_app::worker_loop", 0x200)),
      ring_(1024),
      rx_(*this),
      worker_(*this) {}

void QueryCacheApp::submit(std::vector<Query> queries) {
  queries_ = std::move(queries);
}

void QueryCacheApp::attach(sim::Machine& m, std::uint32_t rx_core,
                           std::uint32_t worker_core) {
  m.attach(rx_core, rx_);
  m.attach(worker_core, worker_);
}

std::vector<Query> QueryCacheApp::paper_queries() {
  const std::uint32_t ns[] = {3, 3, 4, 3, 5, 4, 5, 3, 5, 4};
  std::vector<Query> out;
  out.reserve(std::size(ns));
  for (std::size_t i = 0; i < std::size(ns); ++i) {
    out.push_back(Query{static_cast<ItemId>(i + 1), ns[i]});
  }
  return out;
}

sim::StepStatus QueryCacheApp::RxTask::step(sim::Cpu& cpu) {
  if (next_ >= app_.queries_.size()) return sim::StepStatus::Done;
  if (cpu.now() < next_send_) {
    return sim::StepStatus::Idle; // pacing between incoming queries
  }
  // Receive + forward one query (Thread 0's work).
  cpu.exec(app_.rx_loop_, app_.cfg_.rx_uops_per_query);
  const bool ok = app_.ring_.push(app_.queries_[next_], cpu.now());
  if (!ok) return sim::StepStatus::Idle; // queue full: retry later
  ++next_;
  next_send_ = cpu.now() + cpu.spec().cycles(app_.cfg_.inter_query_gap_ns);
  return sim::StepStatus::Progress;
}

std::uint64_t QueryCacheApp::WorkerTask::count_uncached(
    std::uint32_t n_chunks) {
  const std::uint32_t cap = app_.cfg_.cache_capacity_chunks;
  if (cap == 0) {
    // Unbounded (the paper's app): points [0, high_water) stay cached.
    const std::uint64_t points =
        static_cast<std::uint64_t>(n_chunks) * app_.cfg_.points_per_n;
    const std::uint64_t uncached_points =
        points > high_water_ ? points - high_water_ : 0;
    high_water_ = std::max<std::uint64_t>(high_water_, points);
    return uncached_points / app_.cfg_.points_per_n;
  }

  // Bounded: LRU over chunk indices 0..n-1 (a query of n needs them all).
  std::uint64_t uncached = 0;
  for (std::uint32_t chunk = 0; chunk < n_chunks; ++chunk) {
    auto it = std::find(lru_chunks_.begin(), lru_chunks_.end(), chunk);
    if (it != lru_chunks_.end()) {
      lru_chunks_.erase(it); // re-insert as MRU below
    } else {
      ++uncached;
      if (lru_chunks_.size() >= cap) {
        lru_chunks_.erase(lru_chunks_.begin()); // evict LRU
        ++evictions_;
      }
    }
    lru_chunks_.push_back(chunk);
  }
  return uncached;
}

sim::StepStatus QueryCacheApp::WorkerTask::step(sim::Cpu& cpu) {
  if (processed_ >= app_.queries_.size()) return sim::StepStatus::Done;

  const auto q = app_.ring_.pop(cpu.now());
  if (!q.has_value()) {
    // Top of the while loop: one empty poll of the input queue.
    cpu.exec(app_.worker_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }

  const QueryCacheAppConfig& c = app_.cfg_;
  const std::uint64_t points = q->n * c.points_per_n;
  const std::uint64_t uncached_chunks = count_uncached(q->n);
  const std::uint64_t uncached = uncached_chunks * c.points_per_n;
  const std::uint64_t cached = points - uncached;

  // --- data-item switch: enter (top of the while-loop body).
  cpu.mark_enter(q->id);

  // f1: parse/set up the query. Short — often below the sample interval,
  // the case §V-B1 discusses.
  cpu.exec(app_.f1_, c.f1_uops);

  // f2: probe the results-cache index for every point (compact entries,
  // so a cold index costs far less than recomputing the points).
  sim::MemPattern probe{c.index_base, static_cast<std::uint32_t>(points),
                        c.index_stride};
  cpu.exec_mem(app_.f2_, points * c.f2_uops_per_point, probe);

  // f3: transform the points that were not cached, then cache them.
  if (uncached > 0) {
    sim::MemPattern compute{c.points_base + cached * c.point_bytes,
                            static_cast<std::uint32_t>(uncached),
                            static_cast<std::uint32_t>(c.point_bytes)};
    cpu.exec_mem(app_.f3_, uncached * c.f3_uops_per_point, compute);
  }

  // --- data-item switch: leave (bottom of the while-loop body).
  cpu.mark_leave(q->id);

  ++processed_;
  return processed_ >= app_.queries_.size() ? sim::StepStatus::Done
                                            : sim::StepStatus::Progress;
}

} // namespace fluxtrace::apps
