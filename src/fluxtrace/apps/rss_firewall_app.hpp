// RSS-style firewall: RX spreads packets across N ACL worker cores (as a
// NIC's receive-side scaling spreads flows across queues), a single TX
// core merges the outputs. The same hybrid procedure runs on every worker
// simultaneously (§III-D), and a new fluctuation appears that none of the
// single-worker experiments have: *head-of-line blocking* — an identical
// cheap packet is fast on one worker and slow on another purely because a
// heavy packet sits ahead of it in that worker's queue. The per-core
// windows separate queue wait from classify time, which is how the
// diagnosis distinguishes load imbalance from a slow code path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "fluxtrace/acl/classifier.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/net/nic.hpp"
#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

enum class RssDispatch : std::uint8_t {
  RoundRobin, ///< packet i → worker i mod N
  FlowHash,   ///< hash of the 12-byte key → worker (same flow, same worker)
};

struct RssFirewallConfig {
  std::uint32_t num_workers = 2;
  RssDispatch dispatch = RssDispatch::RoundRobin;
  acl::MultiTrieConfig trie{acl::kPaperRulesPerTrie, 0};
  acl::AclCostModel cost{};
  double classify_stall_fraction = 0.4;
  std::uint64_t rx_uops = 900;
  std::uint64_t tx_uops = 900;
  std::uint64_t pop_uops = 350;
  std::uint64_t push_uops = 350;
  std::uint64_t poll_uops = 120;
  std::size_t ring_depth = 4096;
  /// Worker in/out ring depth; 0 means ring_depth. Shrinking only the
  /// worker rings (the NICs keep ring_depth) turns head-of-line pressure
  /// into observable ring-full wait edges without overflowing the wire.
  std::size_t worker_ring_depth = 0;
};

class RssFirewallApp {
 public:
  /// Wait-edge resource ids (ISSUE 8): ring kInRingBase+w is worker w's
  /// input ring (RX → worker), kOutRingBase+w its output (worker → TX).
  static constexpr std::uint32_t kInRingBase = 10;
  static constexpr std::uint32_t kOutRingBase = 20;

  RssFirewallApp(SymbolTable& symtab, const acl::RuleSet& rules,
                 RssFirewallConfig cfg = {});

  /// Attach RX, the N workers (consecutive cores from `first_acl_core`),
  /// and TX. Requires first_acl_core + num_workers <= tx_core.
  void attach(sim::Machine& m, std::uint32_t rx_core,
              std::uint32_t first_acl_core, std::uint32_t tx_core);

  void expect_packets(std::uint64_t n) { expected_ = n; }

  [[nodiscard]] net::Nic& rx_nic() { return nic0_; }
  [[nodiscard]] net::Nic& tx_nic() { return nic1_; }
  [[nodiscard]] SymbolId classify_symbol() const { return rte_acl_classify_; }
  [[nodiscard]] std::uint32_t num_workers() const {
    return cfg_.num_workers;
  }
  /// Worker index a packet id was dispatched to (filled during the run).
  [[nodiscard]] std::uint32_t worker_of(ItemId id) const {
    return id < worker_of_.size() ? worker_of_[id] : ~0u;
  }
  [[nodiscard]] std::uint64_t classified(std::uint32_t worker) const {
    return workers_[worker]->classified;
  }
  [[nodiscard]] std::uint64_t transmitted() const { return transmitted_; }

 private:
  class RxTask final : public sim::Task {
   public:
    explicit RxTask(RssFirewallApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "rss-rx"; }

   private:
    RssFirewallApp& app_;
    std::uint64_t forwarded_ = 0;
    std::uint32_t next_rr_ = 0;
    /// Packet refused by a full worker ring: retried (never dropped) so
    /// head-of-line pressure shows up as ring-full wait edges, not loss.
    std::optional<net::Packet> pending_;
    std::uint32_t pending_target_ = 0;
  };

  struct Worker;

  class WorkerTask final : public sim::Task {
   public:
    WorkerTask(RssFirewallApp& app, Worker& w) : app_(app), w_(w) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "rss-acl"; }

   private:
    RssFirewallApp& app_;
    Worker& w_;
    /// Classified packet refused by a full output ring: retried.
    std::optional<net::Packet> pending_out_;
  };

  struct Worker {
    explicit Worker(RssFirewallApp& app, std::size_t ring_depth)
        : in(ring_depth), out(ring_depth), task(app, *this) {}
    rt::SimChannel<net::Packet> in;
    rt::SimChannel<net::Packet> out;
    WorkerTask task;
    std::uint64_t classified = 0;
  };

  class TxTask final : public sim::Task {
   public:
    explicit TxTask(RssFirewallApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "rss-tx"; }

   private:
    RssFirewallApp& app_;
    std::uint32_t next_rr_ = 0;
  };

  [[nodiscard]] std::uint32_t dispatch_worker(const net::Packet& p);
  [[nodiscard]] std::uint64_t total_classified() const;

  RssFirewallConfig cfg_;
  acl::MultiTrieClassifier classifier_;
  SymbolId rx_loop_, tx_loop_, acl_main_loop_, rte_acl_classify_;
  net::Nic nic0_, nic1_;
  std::vector<std::unique_ptr<Worker>> workers_;
  RxTask rx_task_;
  TxTask tx_task_;
  std::vector<std::uint32_t> worker_of_;
  std::uint64_t expected_ = 0;
  std::uint64_t transmitted_ = 0;
};

} // namespace fluxtrace::apps
