// The database case study: a mini storage engine (B+ tree index, buffer
// pool, WAL with group commit) behind a two-thread, self-switching query
// pipeline — the architecture of Fig. 5 applied to the paper's other
// motivating domain (§I, §II-A: Huang et al. measured TPC-C latencies
// whose "standard deviation was twice the mean" on production engines).
//
// Fluctuation sources, all non-functional state:
//   * buffer-pool warmth — an identical point query pays a storage read
//     once a scan evicted its heap page;
//   * group commit — the insert that fills the WAL buffer pays the whole
//     group's flush;
//   * index splits — an insert that overflows B+ tree nodes does extra
//     structural work.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/db/bufferpool.hpp"
#include "fluxtrace/db/table.hpp"
#include "fluxtrace/db/wal.hpp"
#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

enum class DbQueryType : std::uint8_t { Point, Range, Insert };

struct DbQuery {
  ItemId id = kNoItem;
  DbQueryType type = DbQueryType::Point;
  std::uint64_t key = 0;
  std::uint32_t limit = 0; ///< rows, for Range
};

struct MiniDbAppConfig {
  std::size_t pool_frames = 96;
  std::size_t wal_group = 64;
  db::TableConfig table{};

  // Executor cost model (uops of retired work / ns of storage stall).
  std::uint64_t parse_uops = 3000;
  std::uint64_t per_index_node_uops = 500;
  std::uint64_t per_row_uops = 900;
  std::uint64_t per_split_uops = 3500;
  std::uint64_t wal_append_uops = 1200;
  std::uint64_t wal_flush_uops = 2000;
  double page_read_ns = 9000.0;   ///< NVMe page read on pool miss
  double page_write_ns = 11000.0; ///< dirty-page write-back
  double wal_flush_ns = 26000.0;  ///< group-commit fsync

  /// Checkpoint every N queries (0 = never): flush all dirty pool pages,
  /// a periodic stall whose cost scales with how much writing happened —
  /// the fourth fluctuation source.
  std::uint64_t checkpoint_every = 0;
  std::uint64_t checkpoint_uops = 4000;

  double inter_query_gap_ns = 8000.0;
  std::uint64_t client_uops_per_query = 1500;
  std::uint64_t poll_uops = 150;
};

class MiniDbApp {
 public:
  explicit MiniDbApp(SymbolTable& symtab, MiniDbAppConfig cfg = {});

  /// Bulk-load `rows` sequential keys (a restored database). Costs no
  /// simulated time; the buffer pool ends holding the most recently
  /// loaded pages.
  void preload(std::size_t rows);

  void submit(std::vector<DbQuery> queries);
  void attach(sim::Machine& m, std::uint32_t client_core,
              std::uint32_t executor_core);

  // The executor's functions, for trace queries.
  [[nodiscard]] SymbolId parse() const { return parse_; }
  [[nodiscard]] SymbolId index_lookup() const { return index_lookup_; }
  [[nodiscard]] SymbolId fetch_rows() const { return fetch_rows_; }
  [[nodiscard]] SymbolId apply_insert() const { return apply_insert_; }
  [[nodiscard]] SymbolId wal_append() const { return wal_append_; }
  [[nodiscard]] SymbolId wal_flush() const { return wal_flush_; }
  [[nodiscard]] SymbolId checkpoint() const { return checkpoint_; }

  [[nodiscard]] const db::BufferPool& pool() const { return pool_; }
  [[nodiscard]] const db::Table& table() const { return table_; }
  [[nodiscard]] const db::Wal& wal() const { return wal_; }
  [[nodiscard]] std::uint64_t processed() const { return executor_.processed(); }

  /// A TPC-C-flavoured mixed workload: mostly point lookups on a hot key
  /// set, a stream of inserts, and occasional range scans whose page
  /// pulls evict hot pages. Deterministic in `seed`.
  [[nodiscard]] static std::vector<DbQuery> make_mixed_workload(
      std::size_t n, std::uint64_t seed, std::uint64_t loaded_rows,
      std::uint64_t hot_keys = 512);

 private:
  class ClientTask final : public sim::Task {
   public:
    explicit ClientTask(MiniDbApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "db-client"; }

   private:
    MiniDbApp& app_;
    std::size_t next_ = 0;
    Tsc next_send_ = 0;
  };

  class ExecutorTask final : public sim::Task {
   public:
    explicit ExecutorTask(MiniDbApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override {
      return "db-executor";
    }
    [[nodiscard]] std::uint64_t processed() const { return processed_; }

   private:
    void run_storage(sim::Cpu& cpu, SymbolId fn, std::uint64_t uops,
                     const db::OpStats& st);
    MiniDbApp& app_;
    std::uint64_t processed_ = 0;
  };

  MiniDbAppConfig cfg_;
  SymbolId parse_, index_lookup_, fetch_rows_, apply_insert_, wal_append_,
      wal_flush_, checkpoint_, exec_loop_, client_loop_;
  db::BufferPool pool_;
  db::Table table_;
  db::Wal wal_;
  std::uint64_t next_insert_key_ = 0;
  std::vector<DbQuery> queries_;
  rt::SimChannel<DbQuery> ring_;
  ClientTask client_;
  ExecutorTask executor_;
};

} // namespace fluxtrace::apps
