#include "fluxtrace/apps/minidb_app.hpp"

#include <algorithm>

namespace fluxtrace::apps {

namespace {
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
} // namespace

MiniDbApp::MiniDbApp(SymbolTable& symtab, MiniDbAppConfig cfg)
    : cfg_(cfg),
      parse_(symtab.add("minidb::parse_query", 0x400)),
      index_lookup_(symtab.add("minidb::index_lookup", 0x800)),
      fetch_rows_(symtab.add("minidb::fetch_rows", 0x800)),
      apply_insert_(symtab.add("minidb::apply_insert", 0x600)),
      wal_append_(symtab.add("minidb::wal_append", 0x300)),
      wal_flush_(symtab.add("minidb::wal_flush", 0x300)),
      checkpoint_(symtab.add("minidb::checkpoint", 0x400)),
      exec_loop_(symtab.add("minidb::executor_loop", 0x200)),
      client_loop_(symtab.add("minidb::client_loop", 0x200)),
      pool_(cfg.pool_frames),
      table_(pool_, cfg.table),
      wal_(cfg.wal_group),
      ring_(1024),
      client_(*this),
      executor_(*this) {}

void MiniDbApp::preload(std::size_t rows) {
  for (std::size_t i = 0; i < rows; ++i) {
    (void)table_.insert(next_insert_key_++);
  }
}

void MiniDbApp::submit(std::vector<DbQuery> queries) {
  queries_ = std::move(queries);
}

void MiniDbApp::attach(sim::Machine& m, std::uint32_t client_core,
                       std::uint32_t executor_core) {
  m.attach(client_core, client_);
  m.attach(executor_core, executor_);
}

std::vector<DbQuery> MiniDbApp::make_mixed_workload(
    std::size_t n, std::uint64_t seed, std::uint64_t loaded_rows,
    std::uint64_t hot_keys) {
  std::uint64_t state = seed;
  std::vector<DbQuery> out;
  out.reserve(n);
  // The hot set sits at the low end of the key space (oldest pages, the
  // ones bulk loading left cold in the pool — they warm up quickly).
  for (std::size_t i = 0; i < n; ++i) {
    DbQuery q;
    q.id = static_cast<ItemId>(i + 1);
    const std::uint64_t dice = splitmix(state) % 100;
    if (dice < 70) {
      q.type = DbQueryType::Point;
      q.key = splitmix(state) % hot_keys;
    } else if (dice < 90) {
      q.type = DbQueryType::Insert; // key assigned by the executor
    } else {
      q.type = DbQueryType::Range;
      q.key = splitmix(state) % loaded_rows;
      q.limit = 32 + static_cast<std::uint32_t>(splitmix(state) % 64);
    }
    out.push_back(q);
  }
  return out;
}

sim::StepStatus MiniDbApp::ClientTask::step(sim::Cpu& cpu) {
  if (next_ >= app_.queries_.size()) return sim::StepStatus::Done;
  if (cpu.now() < next_send_) return sim::StepStatus::Idle;
  cpu.exec(app_.client_loop_, app_.cfg_.client_uops_per_query);
  if (!app_.ring_.push(app_.queries_[next_], cpu.now())) {
    return sim::StepStatus::Idle;
  }
  ++next_;
  next_send_ = cpu.now() + cpu.spec().cycles(app_.cfg_.inter_query_gap_ns);
  return sim::StepStatus::Progress;
}

void MiniDbApp::ExecutorTask::run_storage(sim::Cpu& cpu, SymbolId fn,
                                          std::uint64_t uops,
                                          const db::OpStats& st) {
  // Storage waits (pool misses, dirty write-backs) are spent busy-polling
  // the I/O completion queue (SPDK-style), so they retire uops inside the
  // function that incurred them — the hybrid trace then attributes the
  // wait to fetch_rows/apply_insert, which is how a diagnosis tells a
  // cold buffer pool from a slow algorithm.
  const double wait_ns = st.page_misses * app_.cfg_.page_read_ns +
                         st.dirty_evictions * app_.cfg_.page_write_ns;
  const auto wait_uops = static_cast<std::uint64_t>(
      static_cast<double>(cpu.spec().cycles(wait_ns)) /
      cpu.spec().cycles_per_uop);
  cpu.exec(fn, uops + wait_uops);
}

sim::StepStatus MiniDbApp::ExecutorTask::step(sim::Cpu& cpu) {
  if (processed_ >= app_.queries_.size()) return sim::StepStatus::Done;
  auto q = app_.ring_.pop(cpu.now());
  if (!q.has_value()) {
    cpu.exec(app_.exec_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }

  const MiniDbAppConfig& c = app_.cfg_;
  cpu.mark_enter(q->id);
  cpu.exec(app_.parse_, c.parse_uops);

  switch (q->type) {
    case DbQueryType::Point: {
      const db::OpStats st = app_.table_.point(q->key);
      cpu.exec(app_.index_lookup_, st.index_nodes * c.per_index_node_uops);
      run_storage(cpu, app_.fetch_rows_, st.rows * c.per_row_uops + 500, st);
      break;
    }
    case DbQueryType::Range: {
      const db::OpStats st = app_.table_.range(q->key, q->limit);
      cpu.exec(app_.index_lookup_, st.index_nodes * c.per_index_node_uops);
      run_storage(cpu, app_.fetch_rows_, st.rows * c.per_row_uops + 500, st);
      break;
    }
    case DbQueryType::Insert: {
      const db::OpStats st = app_.table_.insert(app_.next_insert_key_++);
      cpu.exec(app_.index_lookup_, st.index_nodes * c.per_index_node_uops);
      run_storage(cpu, app_.apply_insert_,
                  st.rows * c.per_row_uops +
                      st.index_splits * c.per_split_uops + 500,
                  st);
      const db::Wal::AppendResult wr = app_.wal_.append();
      cpu.exec(app_.wal_append_, c.wal_append_uops);
      if (wr.flushed) {
        // Group commit: this unlucky insert pays the fsync (busy-polled).
        const auto fsync_uops = static_cast<std::uint64_t>(
            static_cast<double>(cpu.spec().cycles(c.wal_flush_ns)) /
            cpu.spec().cycles_per_uop);
        cpu.exec(app_.wal_flush_, c.wal_flush_uops + fsync_uops);
      }
      break;
    }
  }

  // Periodic checkpoint: the unlucky query also pays for flushing every
  // dirty page accumulated since the last one.
  if (c.checkpoint_every > 0 && processed_ % c.checkpoint_every ==
                                    c.checkpoint_every - 1) {
    const std::size_t flushed = app_.pool_.flush_all();
    const auto write_uops = static_cast<std::uint64_t>(
        static_cast<double>(
            cpu.spec().cycles(static_cast<double>(flushed) *
                              c.page_write_ns)) /
        cpu.spec().cycles_per_uop);
    cpu.exec(app_.checkpoint_, c.checkpoint_uops + write_uops);
  }

  cpu.mark_leave(q->id);
  ++processed_;
  return processed_ >= app_.queries_.size() ? sim::StepStatus::Done
                                            : sim::StepStatus::Progress;
}

} // namespace fluxtrace::apps
