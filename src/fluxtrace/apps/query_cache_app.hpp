// The paper's proof-of-concept sample application (§IV-B, Figs. 7 & 8):
// a query-answering app in the self-switching architecture. Thread 0
// receives queries and passes them one by one over a software queue to
// Thread 1, which applies linear transformations to N = n×1000 points. An
// in-memory results cache makes performance fluctuate: points transformed
// for an earlier query need not be recomputed, so two queries with the
// same n can differ wildly (the 1st and 5th queries of Fig. 8).
//
// Thread 1's while loop calls three functions (f1, f2, f3); only the top
// and bottom of the loop are instrumented with log(id, timestamp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/rt/sim_channel.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

struct Query {
  ItemId id = kNoItem;
  std::uint32_t n = 0; ///< work scale: N = n × points_per_n points
};

struct QueryCacheAppConfig {
  std::uint64_t points_per_n = 1000;
  // Per-function work. f1 parses the query (fixed), f2 probes the results
  // cache (per point), f3 recomputes uncached points (per uncached point,
  // dominant when cold).
  std::uint64_t f1_uops = 18000;
  std::uint64_t f2_uops_per_point = 6;
  std::uint64_t f3_uops_per_point = 150;
  std::uint64_t rx_uops_per_query = 1500;
  double inter_query_gap_ns = 5000.0;
  std::uint64_t poll_uops = 150; ///< one empty poll of the input ring
  std::uint64_t point_bytes = 64;
  std::uint64_t points_base = 0x10000000ull; ///< heap address of the pool
  /// The cache-index structure f2 probes (compact: 8 bytes per point).
  std::uint64_t index_base = 0x18000000ull;
  std::uint32_t index_stride = 8;
  /// Results-cache capacity in chunks of points_per_n points. 0 = the
  /// paper's unbounded cache (only first touches are cold); a finite
  /// capacity gives LRU evictions, so cold paths recur indefinitely —
  /// closer to a production cache.
  std::uint32_t cache_capacity_chunks = 0;
};

/// Builds the app's symbols and tasks. Attach rx_task() and worker_task()
/// to two cores of a Machine, submit queries, run.
class QueryCacheApp {
 public:
  QueryCacheApp(SymbolTable& symtab, QueryCacheAppConfig cfg = {});

  void submit(std::vector<Query> queries);
  void attach(sim::Machine& m, std::uint32_t rx_core,
              std::uint32_t worker_core);

  [[nodiscard]] SymbolId f1() const { return f1_; }
  [[nodiscard]] SymbolId f2() const { return f2_; }
  [[nodiscard]] SymbolId f3() const { return f3_; }
  [[nodiscard]] SymbolId rx_loop() const { return rx_loop_; }
  [[nodiscard]] SymbolId worker_loop() const { return worker_loop_; }

  [[nodiscard]] std::uint64_t queries_processed() const {
    return worker_.processed();
  }
  /// Highest point index transformed so far (the results cache), in the
  /// unbounded configuration.
  [[nodiscard]] std::uint64_t cache_high_water() const {
    return worker_.high_water();
  }
  [[nodiscard]] std::uint64_t cache_evictions() const {
    return worker_.evictions();
  }
  /// The Fig. 8 query sequence: n = 3,3,4,3,5,4,5,3,5,4 — queries 1 and 5
  /// (1-based) hit a cold cache.
  [[nodiscard]] static std::vector<Query> paper_queries();

 private:
  class RxTask final : public sim::Task {
   public:
    explicit RxTask(QueryCacheApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override { return "thread0-rx"; }

   private:
    QueryCacheApp& app_;
    std::size_t next_ = 0;
    Tsc next_send_ = 0;
  };

  class WorkerTask final : public sim::Task {
   public:
    explicit WorkerTask(QueryCacheApp& app) : app_(app) {}
    sim::StepStatus step(sim::Cpu& cpu) override;
    [[nodiscard]] std::string_view name() const override {
      return "thread1-worker";
    }
    [[nodiscard]] std::uint64_t processed() const { return processed_; }
    [[nodiscard]] std::uint64_t high_water() const { return high_water_; }
    [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

   private:
    /// Number of n-chunks NOT currently cached for a query of `n`
    /// chunks, updating the cache (LRU when bounded).
    std::uint64_t count_uncached(std::uint32_t n_chunks);

    QueryCacheApp& app_;
    std::uint64_t processed_ = 0;
    std::uint64_t high_water_ = 0; ///< points [0, high_water_) are cached
    std::uint64_t evictions_ = 0;
    std::vector<std::uint32_t> lru_chunks_; ///< back = most recent (bounded mode)
  };

  QueryCacheAppConfig cfg_;
  SymbolId f1_, f2_, f3_, rx_loop_, worker_loop_;
  std::vector<Query> queries_;
  rt::SimChannel<Query> ring_;
  RxTask rx_;
  WorkerTask worker_;
};

} // namespace fluxtrace::apps
