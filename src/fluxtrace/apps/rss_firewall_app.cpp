#include "fluxtrace/apps/rss_firewall_app.hpp"

#include <cassert>

namespace fluxtrace::apps {

RssFirewallApp::RssFirewallApp(SymbolTable& symtab, const acl::RuleSet& rules,
                               RssFirewallConfig cfg)
    : cfg_(cfg),
      classifier_(rules, cfg.trie),
      rx_loop_(symtab.add("rss_fw::rx_dispatch", 0x300)),
      tx_loop_(symtab.add("rss_fw::tx_merge", 0x300)),
      acl_main_loop_(symtab.add("rss_fw::worker_loop", 0x400)),
      rte_acl_classify_(symtab.add("rss_fw::rte_acl_classify", 0x1000)),
      nic0_(cfg.ring_depth),
      nic1_(cfg.ring_depth),
      rx_task_(*this),
      tx_task_(*this) {
  assert(cfg_.num_workers >= 1);
  const std::size_t worker_depth =
      cfg_.worker_ring_depth != 0 ? cfg_.worker_ring_depth : cfg_.ring_depth;
  for (std::uint32_t w = 0; w < cfg_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(*this, worker_depth));
  }
}

void RssFirewallApp::attach(sim::Machine& m, std::uint32_t rx_core,
                            std::uint32_t first_acl_core,
                            std::uint32_t tx_core) {
  m.attach(rx_core, rx_task_);
  for (std::uint32_t w = 0; w < cfg_.num_workers; ++w) {
    m.attach(first_acl_core + w, workers_[w]->task);
    // Wait-edge probes (ISSUE 8): resources 10+w are the RX→worker
    // rings, 20+w the worker→TX rings, so `critical_path` can name the
    // exact ring and holder core behind a head-of-line stall.
    workers_[w]->in.set_wait_probe(rt::ChannelWaitProbe{
        &m.wait_log(), kInRingBase + w, rx_core, first_acl_core + w});
    workers_[w]->out.set_wait_probe(rt::ChannelWaitProbe{
        &m.wait_log(), kOutRingBase + w, first_acl_core + w, tx_core});
  }
  m.attach(tx_core, tx_task_);
}

std::uint32_t RssFirewallApp::dispatch_worker(const net::Packet& p) {
  if (cfg_.dispatch == RssDispatch::FlowHash) {
    // FNV-1a over the 12-byte key — what a NIC's RSS hash does in spirit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : p.key.key_bytes()) {
      h = (h ^ b) * 0x100000001b3ull;
    }
    return static_cast<std::uint32_t>(h % cfg_.num_workers);
  }
  return 0; // RoundRobin handled by the caller (needs mutable state)
}

std::uint64_t RssFirewallApp::total_classified() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->classified;
  return n;
}

sim::StepStatus RssFirewallApp::RxTask::step(sim::Cpu& cpu) {
  // A packet refused by a full worker ring blocks the dispatch loop
  // until that worker drains — exactly the head-of-line coupling the
  // wait edges exist to expose. The channel probe accrues the stall.
  if (pending_.has_value()) {
    cpu.exec(app_.rx_loop_, app_.cfg_.poll_uops);
    if (!app_.workers_[pending_target_]->in.push(*pending_, cpu.now(),
                                                 pending_->id)) {
      return sim::StepStatus::Idle;
    }
    pending_.reset();
    ++forwarded_;
    return sim::StepStatus::Progress;
  }
  if (app_.expected_ > 0 && forwarded_ >= app_.expected_) {
    return sim::StepStatus::Done;
  }
  auto p = app_.nic0_.rx_poll(cpu.now());
  if (!p.has_value()) {
    cpu.exec(app_.rx_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }
  cpu.exec(app_.rx_loop_, app_.cfg_.rx_uops);
  std::uint32_t target;
  if (app_.cfg_.dispatch == RssDispatch::RoundRobin) {
    target = next_rr_;
    next_rr_ = (next_rr_ + 1) % app_.cfg_.num_workers;
  } else {
    target = app_.dispatch_worker(*p);
  }
  if (app_.worker_of_.size() <= p->id) {
    app_.worker_of_.resize(p->id + 1, ~0u);
  }
  app_.worker_of_[p->id] = target;
  if (!app_.workers_[target]->in.push(*p, cpu.now(), p->id)) {
    pending_ = std::move(*p);
    pending_target_ = target;
    return sim::StepStatus::Idle;
  }
  ++forwarded_;
  return sim::StepStatus::Progress;
}

sim::StepStatus RssFirewallApp::WorkerTask::step(sim::Cpu& cpu) {
  if (pending_out_.has_value()) {
    cpu.exec(app_.acl_main_loop_, app_.cfg_.poll_uops);
    if (!w_.out.push(*pending_out_, cpu.now(), pending_out_->id)) {
      return sim::StepStatus::Idle;
    }
    pending_out_.reset();
    return sim::StepStatus::Progress;
  }
  if (app_.expected_ > 0 && app_.total_classified() >= app_.expected_) {
    return sim::StepStatus::Done;
  }
  auto p = w_.in.pop(cpu.now());
  if (!p.has_value()) {
    cpu.exec(app_.acl_main_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }
  cpu.exec(app_.acl_main_loop_, app_.cfg_.pop_uops);
  cpu.mark_enter(p->id);
  const acl::ClassifyResult res = app_.classifier_.classify(p->key);
  const std::uint64_t total_uops = app_.cfg_.cost.uops(res);
  const auto work_uops = static_cast<std::uint64_t>(
      static_cast<double>(total_uops) *
      (1.0 - app_.cfg_.classify_stall_fraction));
  const Tsc stall = cpu.spec().uop_cycles(total_uops - work_uops);
  cpu.run(sim::ExecBlock{app_.rte_acl_classify_, work_uops, 0, {}, stall});
  p->verdict = (res.matched && res.action == acl::Action::Drop)
                   ? net::Verdict::Drop
                   : net::Verdict::Permit;
  ++w_.classified;
  cpu.mark_leave(p->id);
  cpu.exec(app_.acl_main_loop_, app_.cfg_.push_uops);
  if (!w_.out.push(*p, cpu.now(), p->id)) {
    pending_out_ = std::move(*p);
  }
  return sim::StepStatus::Progress;
}

sim::StepStatus RssFirewallApp::TxTask::step(sim::Cpu& cpu) {
  if (app_.expected_ > 0 && app_.transmitted_ >= app_.expected_) {
    return sim::StepStatus::Done;
  }
  // Merge: poll the workers' output rings round-robin.
  for (std::uint32_t i = 0; i < app_.cfg_.num_workers; ++i) {
    const std::uint32_t w = (next_rr_ + i) % app_.cfg_.num_workers;
    auto p = app_.workers_[w]->out.pop(cpu.now());
    if (!p.has_value()) continue;
    next_rr_ = (w + 1) % app_.cfg_.num_workers;
    cpu.exec(app_.tx_loop_, app_.cfg_.tx_uops);
    app_.nic1_.tx_push(std::move(*p), cpu.now());
    ++app_.transmitted_;
    return sim::StepStatus::Progress;
  }
  cpu.exec(app_.tx_loop_, app_.cfg_.poll_uops);
  return sim::StepStatus::Idle;
}

} // namespace fluxtrace::apps
