#include "fluxtrace/apps/acl_firewall_app.hpp"

#include <algorithm>
#include <vector>

namespace fluxtrace::apps {

AclFirewallApp::AclFirewallApp(SymbolTable& symtab, const acl::RuleSet& rules,
                               AclFirewallConfig cfg)
    : cfg_(cfg),
      classifier_(rules, cfg.trie),
      rx_loop_(symtab.add("l2fwd_acl::rx_loop", 0x300)),
      tx_loop_(symtab.add("l2fwd_acl::tx_loop", 0x300)),
      acl_main_loop_(symtab.add("l2fwd_acl::acl_main_loop", 0x400)),
      rte_acl_classify_(symtab.add("rte_acl_classify", 0x1000)),
      nic0_(cfg.ring_depth),
      nic1_(cfg.ring_depth),
      rx_to_acl_(cfg.ring_depth),
      acl_to_tx_(cfg.ring_depth),
      rx_task_(*this),
      acl_task_(*this),
      tx_task_(*this) {}

void AclFirewallApp::attach(sim::Machine& m, std::uint32_t rx_core,
                            std::uint32_t acl_core, std::uint32_t tx_core) {
  m.attach(rx_core, rx_task_);
  m.attach(acl_core, acl_task_);
  m.attach(tx_core, tx_task_);
}

sim::StepStatus AclFirewallApp::RxTask::step(sim::Cpu& cpu) {
  if (app_.expected_ > 0 && forwarded_ >= app_.expected_) {
    return sim::StepStatus::Done;
  }
  auto p = app_.nic0_.rx_poll(cpu.now());
  if (!p.has_value()) {
    cpu.exec(app_.rx_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }
  if (app_.cfg_.instrument_rx_tx) cpu.mark_enter(p->id);
  cpu.exec(app_.rx_loop_, app_.cfg_.rx_uops);
  if (app_.cfg_.instrument_rx_tx) cpu.mark_leave(p->id);
  app_.rx_to_acl_.push(std::move(*p), cpu.now());
  ++forwarded_;
  return sim::StepStatus::Progress;
}

sim::StepStatus AclFirewallApp::AclTask::step(sim::Cpu& cpu) {
  if (app_.expected_ > 0 && app_.classified_ >= app_.expected_) {
    return sim::StepStatus::Done;
  }

  // Retrieve one packet — or, in batch mode, the burst that has queued up
  // (up to batch_size).
  std::vector<net::Packet> burst;
  const std::uint32_t max_burst = std::max<std::uint32_t>(1, app_.cfg_.batch_size);
  while (burst.size() < max_burst) {
    auto p = app_.rx_to_acl_.pop(cpu.now());
    if (!p.has_value()) break;
    burst.push_back(std::move(*p));
  }
  if (burst.empty()) {
    cpu.exec(app_.acl_main_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }
  cpu.exec(app_.acl_main_loop_,
           app_.cfg_.pop_uops * static_cast<std::uint64_t>(burst.size()));

  // Log the timestamp right after retrieving (§IV-C2): per packet in
  // one-by-one mode, once per burst in batch mode.
  ItemId batch_id = kNoItem;
  if (app_.cfg_.instrument) {
    if (max_burst > 1) {
      std::vector<ItemId> members;
      members.reserve(burst.size());
      for (const net::Packet& p : burst) members.push_back(p.id);
      batch_id = app_.batches_.new_batch(std::move(members));
      cpu.mark_enter(batch_id);
    } else {
      cpu.mark_enter(burst.front().id);
    }
  }

  // Classify: the fluctuating function. The classifier computes the real
  // trie walk; its node/trie counts become the simulated work, part
  // retired uops and part memory-bound stall.
  for (net::Packet& p : burst) {
    const acl::ClassifyResult res = app_.classifier_.classify(p.key);
    const std::uint64_t total_uops = app_.cfg_.cost.uops(res);
    const double stall_frac = app_.cfg_.classify_stall_fraction;
    const auto work_uops = static_cast<std::uint64_t>(
        static_cast<double>(total_uops) * (1.0 - stall_frac));
    const Tsc stall = cpu.spec().uop_cycles(total_uops - work_uops);
    cpu.run(sim::ExecBlock{app_.rte_acl_classify_, work_uops, 0, {}, stall});
    p.verdict = (res.matched && res.action == acl::Action::Drop)
                    ? net::Verdict::Drop
                    : net::Verdict::Permit;
    ++app_.classified_;
  }

  // Log again right before pushing toward TX.
  if (app_.cfg_.instrument) {
    if (max_burst > 1) {
      cpu.mark_leave(batch_id);
    } else {
      cpu.mark_leave(burst.front().id);
    }
  }

  for (net::Packet& p : burst) {
    if (p.verdict == net::Verdict::Permit || app_.cfg_.forward_dropped) {
      cpu.exec(app_.acl_main_loop_, app_.cfg_.push_uops);
      app_.acl_to_tx_.push(std::move(p), cpu.now());
    } else {
      ++app_.dropped_;
    }
  }
  return sim::StepStatus::Progress;
}

sim::StepStatus AclFirewallApp::TxTask::step(sim::Cpu& cpu) {
  // TX is done when every expected packet has been classified and the
  // hand-off ring is empty (dropped packets never reach TX).
  if (app_.expected_ > 0 && app_.classified_ >= app_.expected_ &&
      app_.acl_to_tx_.empty()) {
    return sim::StepStatus::Done;
  }
  auto p = app_.acl_to_tx_.pop(cpu.now());
  if (!p.has_value()) {
    cpu.exec(app_.tx_loop_, app_.cfg_.poll_uops);
    return sim::StepStatus::Idle;
  }
  if (app_.cfg_.instrument_rx_tx) cpu.mark_enter(p->id);
  cpu.exec(app_.tx_loop_, app_.cfg_.tx_uops);
  if (app_.cfg_.instrument_rx_tx) cpu.mark_leave(p->id);
  app_.nic1_.tx_push(std::move(*p), cpu.now());
  ++app_.transmitted_;
  return sim::StepStatus::Progress;
}

} // namespace fluxtrace::apps
