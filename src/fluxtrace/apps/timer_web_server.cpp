#include "fluxtrace/apps/timer_web_server.hpp"

namespace fluxtrace::apps {

namespace {
rt::UlSchedulerConfig sched_config(const TimerWebServerConfig& cfg,
                                   SymbolId switch_sym) {
  rt::UlSchedulerConfig sc;
  sc.timeslice = cfg.timeslice;
  sc.scheduler_symbol = switch_sym;
  return sc;
}
} // namespace

TimerWebServer::TimerWebServer(SymbolTable& symtab, TimerWebServerConfig cfg)
    : cfg_(cfg),
      parse_(symtab.add("ngx_http_parse_request", 0x600)),
      handler_(symtab.add("ngx_http_run_handler", 0x900)),
      sendfile_(symtab.add("ngx_sendfile_stream", 0x900)),
      log_(symtab.add("ngx_http_log_request", 0x300)),
      switch_(symtab.add("ngx_event_switch", 0x100)),
      sched_(sched_config(cfg, switch_)) {
  // Every request: parse → handler (light or heavy sendfile) → log.
  // Per-request jitter keeps identical-looking requests non-identical.
  for (ItemId id = 1; id <= cfg_.requests; ++id) {
    rt::UlWork w;
    w.item = id;
    const std::uint64_t jitter = (id * 2654435761u) % 3000;
    w.blocks.push_back(sim::ExecBlock{parse_, 6000 + jitter, 20, {}});
    if (is_heavy(id)) {
      w.blocks.push_back(
          sim::ExecBlock{sendfile_, cfg_.heavy_body_uops + jitter * 10, 0, {}});
    } else {
      w.blocks.push_back(
          sim::ExecBlock{handler_, cfg_.light_body_uops + jitter * 3, 30, {}});
    }
    w.blocks.push_back(sim::ExecBlock{log_, 3000, 5, {}});
    sched_.submit(std::move(w));
  }
}

void TimerWebServer::attach(sim::Machine& m, std::uint32_t core) {
  m.attach(core, sched_);
}

} // namespace fluxtrace::apps
