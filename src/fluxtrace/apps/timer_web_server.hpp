// A timer-switching web server — the architecture the paper assigns to
// NGINX (§III-C type 2): a user-level scheduler forcibly switches between
// in-flight requests when a timeslice expires, so a cheap request can
// finish while an expensive download is still streaming. Marker windows
// are useless here (they overlap); tracing uses the §V-A register-carried
// request ids instead.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/rt/ulthread.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::apps {

struct TimerWebServerConfig {
  Tsc timeslice = 9000;            ///< ~3 us at 3 GHz
  std::uint64_t requests = 60;
  std::uint32_t heavy_every = 8;   ///< every Nth request streams a big file
  std::uint64_t light_body_uops = 30000;  ///< ~4 us of handler work
  std::uint64_t heavy_body_uops = 600000; ///< ~80 us of sendfile streaming
};

class TimerWebServer {
 public:
  explicit TimerWebServer(SymbolTable& symtab, TimerWebServerConfig cfg = {});

  void attach(sim::Machine& m, std::uint32_t core);

  [[nodiscard]] SymbolId parse_request() const { return parse_; }
  [[nodiscard]] SymbolId run_handler() const { return handler_; }
  [[nodiscard]] SymbolId sendfile() const { return sendfile_; }
  [[nodiscard]] SymbolId write_log() const { return log_; }

  [[nodiscard]] const rt::UlScheduler& scheduler() const { return sched_; }
  [[nodiscard]] bool is_heavy(ItemId request) const {
    return request % cfg_.heavy_every == 0;
  }
  [[nodiscard]] const TimerWebServerConfig& config() const { return cfg_; }

 private:
  TimerWebServerConfig cfg_;
  SymbolId parse_, handler_, sendfile_, log_, switch_;
  rt::UlScheduler sched_;
};

} // namespace fluxtrace::apps
