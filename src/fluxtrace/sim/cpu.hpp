// The per-core execution engine. Simulated programs advance time by
// running *exec blocks*: "retire N uops inside function F, touching this
// memory". Events (uops, branch misses, cache misses) accrue inside the
// block at exact cycle offsets, so every sampler overflow maps to an exact
// timestamp and an instruction pointer interpolated inside the function's
// address range. Sampling overhead (PEBS microcode assists, buffer-drain
// stalls, software-sampler interrupts) is injected into the core's
// timeline, so the tracing overhead the paper measures in Figure 10
// emerges from the mechanics instead of being asserted.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/time.hpp"
#include "fluxtrace/sim/cache.hpp"
#include "fluxtrace/sim/pebs.hpp"
#include "fluxtrace/sim/swsampler.hpp"

namespace fluxtrace::sim {

/// A strided load pattern executed by an exec block.
struct MemPattern {
  std::uint64_t base = 0;
  std::uint32_t count = 0;   ///< number of loads
  std::uint32_t stride = 64; ///< bytes between consecutive loads
};

/// One unit of simulated execution, attributed to a single function.
struct ExecBlock {
  SymbolId fn = kInvalidSymbol;
  std::uint64_t uops = 0;
  std::uint64_t branch_misses = 0; ///< spread uniformly over the block
  MemPattern mem{};                ///< optional loads through the cache
  Tsc extra_stall = 0;             ///< abstract stall cycles (no events) for
                                   ///< memory-bound code not modelled via mem
};

/// Per-core accounting, split so benches can report busy time, tracing
/// overhead and idle time separately.
struct CoreStats {
  Tsc busy_cycles = 0;     ///< exec-block time excluding sampling overhead
  Tsc idle_cycles = 0;     ///< advance()d (halted / waiting) time
  Tsc pebs_assist = 0;     ///< 250 ns/record microcode assists
  Tsc drain_stall = 0;     ///< buffer-full interrupt handling
  Tsc sw_stall = 0;        ///< software-sampler interrupts
  Tsc marker_overhead = 0; ///< instrumentation (marking function) time
  std::uint64_t marker_count = 0;
  std::uint64_t blocks = 0;
  EventCounters events;
  std::vector<Tsc> fn_cycles; ///< busy cycles by SymbolId

  [[nodiscard]] Tsc fn_time(SymbolId id) const {
    return id < fn_cycles.size() ? fn_cycles[id] : 0;
  }
  [[nodiscard]] Tsc tracing_overhead() const {
    return pebs_assist + drain_stall + sw_stall + marker_overhead;
  }
};

/// Knobs for the instrumentation half of the hybrid approach.
struct CpuConfig {
  /// Cost of one marking-function call when no marker symbol is set.
  double marker_cost_ns = 150.0;
  /// When valid, the marking function runs as a real exec block on this
  /// symbol (so PEBS can sample inside it), retiring `marker_uops` uops.
  SymbolId marker_symbol = kInvalidSymbol;
  std::uint64_t marker_uops = 1200;
};

/// One simulated core: TSC, register file, PMU, PEBS unit, software
/// sampler, private L1/L2 (+shared L3) — plus the execution engine.
class Cpu {
 public:
  Cpu(std::uint32_t core, const CpuSpec& spec, const SymbolTable& symtab,
      MarkerLog& log, CacheHierarchy cache, PebsDriver* driver,
      CpuConfig cfg = {});

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;
  Cpu(Cpu&&) = default;

  /// Execute one block; advances the TSC by the block's duration plus any
  /// sampling overhead incurred inside it.
  void run(const ExecBlock& blk);

  /// Pure-compute convenience wrapper.
  void exec(SymbolId fn, std::uint64_t uops) { run({fn, uops, 0, {}}); }
  /// Compute + memory convenience wrapper.
  void exec_mem(SymbolId fn, std::uint64_t uops, const MemPattern& mem) {
    run({fn, uops, 0, mem});
  }

  /// The instrumented marking function: records (timestamp, item id) at a
  /// data-item switch, then pays the instrumentation cost.
  void mark(ItemId item, MarkerKind kind);
  void mark_enter(ItemId item) { mark(item, MarkerKind::Enter); }
  void mark_leave(ItemId item) { mark(item, MarkerKind::Leave); }

  /// Advance time with no retirement (halted wait / pacing). Use exec()
  /// with a loop symbol for busy-polling, which does retire uops.
  void advance(Tsc cycles);

  /// Dynamic frequency scaling: `factor` < 1 models a throttled core
  /// (turbo lost, thermal limit). The TSC is invariant — it ticks at the
  /// base rate regardless — so the same work simply spans more TSC time,
  /// which is exactly how DVFS fluctuations look to the hybrid tracer.
  void set_speed(double factor);
  [[nodiscard]] double speed() const { return speed_; }

  [[nodiscard]] Tsc now() const { return tsc_; }
  [[nodiscard]] std::uint32_t core_id() const { return core_; }
  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] const SymbolTable& symtab() const { return symtab_; }

  [[nodiscard]] RegisterFile& regs() { return regs_; }
  void set_reg(Reg r, std::uint64_t v) { regs_.set(r, v); }

  void enable_pebs(const PebsConfig& cfg) { pebs_.configure(cfg); }
  void disable_pebs() { pebs_.set_enabled(false); }
  void enable_sw_sampler(const SwSamplerConfig& cfg) {
    sw_.configure(cfg, spec_);
  }
  void disable_sw_sampler() { sw_.set_enabled(false); }

  [[nodiscard]] PebsUnit& pebs() { return pebs_; }
  [[nodiscard]] SwSampler& sw_sampler() { return sw_; }
  [[nodiscard]] CacheHierarchy& cache() { return cache_; }
  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const CpuConfig& config() const { return cfg_; }

 private:
  /// Count of `event` occurrences in the block, and a position function
  /// mapping the j-th occurrence (1-based) to its cycle offset.
  struct EventTimeline {
    std::uint64_t count = 0;
    Tsc duration = 0;
    const std::vector<Tsc>* discrete = nullptr; // for miss/load events
    [[nodiscard]] Tsc offset_of(std::uint64_t j) const;
  };

  template <typename Unit, typename OnSample>
  void drive_sampler(Unit& unit, const EventTimeline& tl, OnSample&& on);

  std::uint32_t core_;
  CpuSpec spec_;
  const SymbolTable& symtab_;
  MarkerLog& log_;
  CacheHierarchy cache_;
  PebsDriver* driver_;
  CpuConfig cfg_;

  Tsc tsc_ = 0;
  double speed_ = 1.0;
  RegisterFile regs_;
  PebsUnit pebs_;
  SwSampler sw_;
  CoreStats stats_;

  // Scratch reused across blocks to avoid per-block allocation.
  std::vector<Tsc> miss_offsets_;
  std::vector<Tsc> load_offsets_;
  Tsc block_shift_ = 0; // sampling overhead accumulated inside current block
};

} // namespace fluxtrace::sim
