#include "fluxtrace/sim/swsampler.hpp"

#include <cassert>

namespace fluxtrace::sim {

void SwSampler::configure(const SwSamplerConfig& cfg, const CpuSpec& spec) {
  assert(cfg.reset > 0);
  cfg_ = cfg;
  counter_ = -static_cast<std::int64_t>(cfg.reset);
  cost_cycles_ = spec.cycles(cfg.interrupt_cost_ns);
  samples_.clear();
  total_stall_ = 0;
  enabled_ = true;
}

Tsc SwSampler::take_sample(Tsc tsc, std::uint64_t ip, std::uint32_t core,
                           const RegisterFile& regs) {
  assert(enabled_);
  samples_.push_back(PebsSample{tsc, ip, core, regs});
  counter_ = -static_cast<std::int64_t>(cfg_.reset);
  total_stall_ += cost_cycles_;
  return cost_cycles_;
}

void SwSampler::clear() {
  samples_.clear();
  total_stall_ = 0;
  counter_ = -static_cast<std::int64_t>(cfg_.reset);
}

} // namespace fluxtrace::sim
