#include "fluxtrace/sim/pebs.hpp"

#include <algorithm>
#include <cassert>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::sim {

namespace {

// Self-telemetry (ISSUE 3): capture-side pressure — drains, samples
// delivered, and samples known lost (injected faults included).
struct PebsMetrics {
  obs::Counter& drains = obs::metrics().counter("sim.pebs.drains");
  obs::Counter& samples = obs::metrics().counter("sim.pebs.samples");
  obs::Counter& lost = obs::metrics().counter("sim.pebs.lost");

  static PebsMetrics& get() {
    static PebsMetrics m;
    return m;
  }
};

} // namespace

void PebsUnit::configure(const PebsConfig& cfg) {
  assert(cfg.reset > 0 && "reset value must be positive");
  assert(cfg.buffer_capacity > 0);
  cfg_ = cfg;
  counter_ = -static_cast<std::int64_t>(cfg.reset);
  buffer_.clear();
  buffer_.reserve(cfg.buffer_capacity);
  total_samples_ = 0;
  enabled_ = true;
}

bool PebsUnit::take_sample(Tsc tsc, std::uint64_t ip, const RegisterFile& regs) {
  assert(enabled_);
  assert(!buffer_full() && "events must be dropped while awaiting drain");
  buffer_.push_back(PebsSample{tsc, ip, /*core=*/0, regs});
  ++total_samples_;
  counter_ = -static_cast<std::int64_t>(cfg_.reset);
  return buffer_full();
}

SampleVec PebsUnit::drain() {
  SampleVec out;
  out.swap(buffer_);
  buffer_.reserve(cfg_.buffer_capacity);
  counter_ = -static_cast<std::int64_t>(cfg_.reset);
  return out;
}

Tsc PebsDriver::on_buffer_full(PebsUnit& unit, std::uint32_t core, Tsc now) {
  SampleVec drained = unit.drain();

  // The traced core pays the interrupt dispatch (plus the buffer swap
  // when double buffering). The copy and the SSD write happen in the
  // helper program; until it reports the data safe, PEBS is disarmed.
  const Tsc stall = cfg_.double_buffering
                        ? spec_.cycles(cfg_.irq_entry_ns + cfg_.swap_ns)
                        : spec_.cycles(cfg_.irq_entry_ns);
  Tsc helper_cycles = 0;
  if (!cfg_.double_buffering) {
    const double copy =
        cfg_.copy_ns_per_sample * static_cast<double>(drained.size());
    const double bytes = static_cast<double>(drained.size()) *
                         static_cast<double>(kPebsRecordBytes);
    const double ssd_ns = bytes / cfg_.ssd_bandwidth_gbps; // GB/s == bytes/ns
    helper_cycles = spec_.cycles(copy + ssd_ns);
  }
  // An injected drain delay (slow helper) stretches the disarm window —
  // losing real overflows on top of whatever the fault hook drops.
  if (delay_) helper_cycles += spec_.cycles(delay_(drained.size()));
  unit.disarm_until(now + stall + helper_cycles);

  // The drain's span lives on the simulated clock: stamped in virtual
  // TSC cycles on the core's own track, never mixed with steady time.
  if (obs::enabled()) {
    obs::SpanLog::global().record_virtual("sim.pebs.drain", now,
                                          now + stall + helper_cycles, core);
  }
  PebsMetrics::get().drains.inc();

  deliver(std::move(drained), core);
  ++drains_;
  total_stall_ += stall;
  return stall;
}

void PebsDriver::flush(PebsUnit& unit, std::uint32_t core) {
  deliver(unit.drain(), core);
}

void PebsDriver::deliver(SampleVec&& drained, std::uint32_t core) {
  for (PebsSample& s : drained) s.core = core;
  for (const PebsSample& s : drained) {
    if (fault_ && fault_(s)) {
      ++injected_losses_;
      note_lost(core, s.tsc);
      continue;
    }
    if (sink_) sink_(s);
    collected_.push_back(s);
    PebsMetrics::get().samples.inc();
  }
}

void PebsDriver::note_lost(std::uint32_t core, Tsc tsc) {
  PebsMetrics::get().lost.inc();
  losses_.push_back(SampleLoss{core, tsc});
  if (loss_sink_) loss_sink_(losses_.back());
}

SampleVec PebsDriver::samples_sorted_by_time() const {
  SampleVec out = collected_;
  std::stable_sort(out.begin(), out.end(),
                   [](const PebsSample& a, const PebsSample& b) {
                     return a.tsc < b.tsc;
                   });
  return out;
}

void PebsDriver::clear() {
  collected_.clear();
  losses_.clear();
  injected_losses_ = 0;
  drains_ = 0;
  total_stall_ = 0;
}

} // namespace fluxtrace::sim
