// Deterministic fault injection for the capture → persistence pipeline.
// Production capture is lossy (§III-E: overflows during the drain's
// disarm window are dropped; marker writes can be skipped under overload;
// SSD dumps get truncated by crashes). A FaultPlan makes those losses
// *reproducible*: every decision comes from a seeded PRNG or an explicit
// schedule, so a test or bench can replay the exact same degraded stream
// and assert how the consumers cope.
//
// Injection points:
//   * sample loss    — drained PEBS records dropped before they reach
//                      software (rate and/or scheduled per-core bursts);
//   * marker loss    — marking-function calls that never land in the log;
//   * drain delay    — the helper program is slow, stretching the disarm
//                      window (which loses real overflows on top);
//   * dump faults    — truncation/corruption applied to serialized trace
//                      bytes (what a crash mid-dump leaves on the SSD);
//   * sink faults    — write(2)-level failures on the live spool path:
//                      one-shot transient errors, a stuck sink wedged for
//                      a scheduled window of writes, and ENOSPC once a
//                      byte budget is spent (ISSUE 4);
//   * read faults    — pread(2)-level failures on the live *follow* path
//                      (io::TraceFollower): transient EIO, short-read
//                      windows, and stale file metadata that reports the
//                      file truncated at a byte (ISSUE 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::sim {

class Machine;

struct FaultPlanConfig {
  std::uint64_t seed = 1; ///< drives every probabilistic decision

  /// Independent per-record loss probabilities in [0, 1].
  double sample_loss_rate = 0.0;
  double marker_loss_rate = 0.0;

  /// A scheduled loss window: every record on `core` with
  /// begin <= tsc < end is lost (core == kAllCores matches any core).
  struct LossBurst {
    std::uint32_t core = kAllCores;
    Tsc begin = 0;
    Tsc end = 0;
  };
  static constexpr std::uint32_t kAllCores = ~0u;
  std::vector<LossBurst> sample_bursts;
  std::vector<LossBurst> marker_bursts;

  /// Extra helper-program latency added to every drain's disarm window.
  double extra_drain_ns = 0.0;
  /// Probability that a drain is a slow one (stalled SSD queue), paying
  /// `slow_drain_ns` on top of `extra_drain_ns`.
  double slow_drain_rate = 0.0;
  double slow_drain_ns = 0.0;

  /// Dump faults, applied by apply_dump_faults() to serialized bytes.
  /// kNoTruncation = off; otherwise the byte offset the "crash" cut at.
  static constexpr std::uint64_t kNoTruncation = ~0ull;
  std::uint64_t dump_truncate_at = kNoTruncation;
  /// Per-byte bit-flip probability (torn/bit-rotted sectors).
  double dump_corrupt_rate = 0.0;

  /// --- sink faults (live spool write path, ISSUE 4) -------------------
  /// Probability that one write attempt fails with a retryable error.
  double sink_transient_rate = 0.0;
  /// Scheduled wedge: write attempts [from_write, from_write + writes)
  /// (counted across *attempts*, so retries advance the schedule and a
  /// stuck sink eventually unsticks) all fail as retryable.
  struct StuckWindow {
    std::uint64_t from_write = 0;
    std::uint64_t writes = 0;
  };
  std::vector<StuckWindow> sink_stuck;
  /// Device-full model: once this many payload bytes have been accepted,
  /// every further write fails fatally. kNoLimit = unlimited space.
  static constexpr std::uint64_t kNoLimit = ~0ull;
  std::uint64_t sink_enospc_after_bytes = kNoLimit;

  /// --- reader faults (live follow path, ISSUE 6) ----------------------
  /// Probability that one read attempt fails with a retryable EIO.
  double read_transient_rate = 0.0;
  /// Scheduled short-read window: read attempts [from_read, from_read +
  /// reads) (counted across *attempts*, so retries advance the schedule)
  /// return at most half the requested bytes.
  struct ShortReadWindow {
    std::uint64_t from_read = 0;
    std::uint64_t reads = 0;
  };
  std::vector<ShortReadWindow> read_short;
  /// Stale-metadata model: the first `read_stale_queries` size queries
  /// report the file truncated at `read_truncate_at` bytes (clamped to
  /// the real size) — what a follower sees when fstat lags the writer.
  std::uint64_t read_stale_queries = 0;
  std::uint64_t read_truncate_at = 0;
};

/// Verdict for one injected sink write attempt (mirrored by
/// io::SinkFault; sim cannot depend on io, so adapt with a lambda).
enum class SinkFaultKind : std::uint8_t {
  None,      ///< the write proceeds
  Transient, ///< one-shot retryable failure
  Stuck,     ///< inside a scheduled wedge window (retryable)
  NoSpace,   ///< byte budget spent: fatal from here on
};

/// Verdict for one injected reader fault (mirrored by io::ReadFault; io
/// cannot depend on sim, so adapt with a lambda as for sink faults).
enum class ReadFaultKind : std::uint8_t {
  None,      ///< the read proceeds
  Transient, ///< one-shot retryable EIO
  Short,     ///< inside a scheduled short-read window: half the bytes
};

/// Stateful injector. Decisions are deterministic in (seed, call order):
/// markers, samples and drains draw from three independent PRNG streams,
/// so e.g. raising the sample rate never changes which markers drop.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig cfg);

  /// True = this drained record is lost before reaching software.
  [[nodiscard]] bool lose_sample(const PebsSample& s);
  /// True = this marking-function call never reaches the log.
  [[nodiscard]] bool lose_marker(const Marker& m);
  /// Extra disarm-window nanoseconds for one drain of `drained` records.
  [[nodiscard]] double drain_delay_ns(std::size_t drained);

  /// Truncate and/or bit-flip serialized trace bytes in place (the
  /// mid-dump crash model). Returns the number of bytes corrupted.
  std::size_t apply_dump_faults(std::string& bytes);

  /// Verdict for the next spool write attempt of `bytes` payload bytes.
  /// Every call advances the write-attempt index (so stuck windows are
  /// schedules over attempts) and, on None, charges `bytes` against the
  /// ENOSPC budget. Draws from its own PRNG stream.
  [[nodiscard]] SinkFaultKind sink_fault(std::size_t bytes);

  /// Verdict for the next follower read attempt. Every call advances the
  /// read-attempt index (retries advance short-read windows past their
  /// end, so a wedged source eventually heals). Draws from its own PRNG
  /// stream, independent of every sink decision.
  [[nodiscard]] ReadFaultKind read_fault();

  /// True when the next file-size query must report stale metadata (the
  /// file truncated at cfg.read_truncate_at). Advances the size-query
  /// index; the first cfg.read_stale_queries queries are stale.
  [[nodiscard]] bool size_query_stale();

  /// Install the sample/marker/drain hooks on a machine's MarkerLog and
  /// PebsDriver. The plan must outlive the machine's run.
  void attach(Machine& m);

  [[nodiscard]] const FaultPlanConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t samples_dropped() const {
    return samples_dropped_;
  }
  [[nodiscard]] std::uint64_t markers_dropped() const {
    return markers_dropped_;
  }
  [[nodiscard]] std::uint64_t drains_delayed() const {
    return drains_delayed_;
  }
  [[nodiscard]] std::uint64_t sink_transients() const {
    return sink_transients_;
  }
  [[nodiscard]] std::uint64_t sink_stuck_hits() const {
    return sink_stuck_hits_;
  }
  [[nodiscard]] std::uint64_t sink_enospc_hits() const {
    return sink_enospc_hits_;
  }
  [[nodiscard]] std::uint64_t read_transients() const {
    return read_transients_;
  }
  [[nodiscard]] std::uint64_t read_short_hits() const {
    return read_short_hits_;
  }
  [[nodiscard]] std::uint64_t stale_size_queries() const {
    return stale_size_queries_;
  }

 private:
  static bool in_burst(const std::vector<FaultPlanConfig::LossBurst>& bursts,
                       std::uint32_t core, Tsc tsc);
  /// splitmix64 step; returns a double in [0, 1).
  static double next_unit(std::uint64_t& state);

  FaultPlanConfig cfg_;
  std::uint64_t sample_rng_;
  std::uint64_t marker_rng_;
  std::uint64_t drain_rng_;
  std::uint64_t dump_rng_;
  std::uint64_t sink_rng_;
  std::uint64_t read_rng_;
  std::uint64_t samples_dropped_ = 0;
  std::uint64_t markers_dropped_ = 0;
  std::uint64_t drains_delayed_ = 0;
  std::uint64_t sink_writes_ = 0;        ///< write-attempt index
  std::uint64_t sink_bytes_accepted_ = 0;
  std::uint64_t sink_transients_ = 0;
  std::uint64_t sink_stuck_hits_ = 0;
  std::uint64_t sink_enospc_hits_ = 0;
  std::uint64_t read_attempts_ = 0;      ///< read-attempt index
  std::uint64_t size_queries_ = 0;       ///< size-query index
  std::uint64_t read_transients_ = 0;
  std::uint64_t read_short_hits_ = 0;
  std::uint64_t stale_size_queries_ = 0;
};

} // namespace fluxtrace::sim
