// Deterministic fault injection for the capture → persistence pipeline.
// Production capture is lossy (§III-E: overflows during the drain's
// disarm window are dropped; marker writes can be skipped under overload;
// SSD dumps get truncated by crashes). A FaultPlan makes those losses
// *reproducible*: every decision comes from a seeded PRNG or an explicit
// schedule, so a test or bench can replay the exact same degraded stream
// and assert how the consumers cope.
//
// Injection points:
//   * sample loss    — drained PEBS records dropped before they reach
//                      software (rate and/or scheduled per-core bursts);
//   * marker loss    — marking-function calls that never land in the log;
//   * drain delay    — the helper program is slow, stretching the disarm
//                      window (which loses real overflows on top);
//   * dump faults    — truncation/corruption applied to serialized trace
//                      bytes (what a crash mid-dump leaves on the SSD).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::sim {

class Machine;

struct FaultPlanConfig {
  std::uint64_t seed = 1; ///< drives every probabilistic decision

  /// Independent per-record loss probabilities in [0, 1].
  double sample_loss_rate = 0.0;
  double marker_loss_rate = 0.0;

  /// A scheduled loss window: every record on `core` with
  /// begin <= tsc < end is lost (core == kAllCores matches any core).
  struct LossBurst {
    std::uint32_t core = kAllCores;
    Tsc begin = 0;
    Tsc end = 0;
  };
  static constexpr std::uint32_t kAllCores = ~0u;
  std::vector<LossBurst> sample_bursts;
  std::vector<LossBurst> marker_bursts;

  /// Extra helper-program latency added to every drain's disarm window.
  double extra_drain_ns = 0.0;
  /// Probability that a drain is a slow one (stalled SSD queue), paying
  /// `slow_drain_ns` on top of `extra_drain_ns`.
  double slow_drain_rate = 0.0;
  double slow_drain_ns = 0.0;

  /// Dump faults, applied by apply_dump_faults() to serialized bytes.
  /// kNoTruncation = off; otherwise the byte offset the "crash" cut at.
  static constexpr std::uint64_t kNoTruncation = ~0ull;
  std::uint64_t dump_truncate_at = kNoTruncation;
  /// Per-byte bit-flip probability (torn/bit-rotted sectors).
  double dump_corrupt_rate = 0.0;
};

/// Stateful injector. Decisions are deterministic in (seed, call order):
/// markers, samples and drains draw from three independent PRNG streams,
/// so e.g. raising the sample rate never changes which markers drop.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig cfg);

  /// True = this drained record is lost before reaching software.
  [[nodiscard]] bool lose_sample(const PebsSample& s);
  /// True = this marking-function call never reaches the log.
  [[nodiscard]] bool lose_marker(const Marker& m);
  /// Extra disarm-window nanoseconds for one drain of `drained` records.
  [[nodiscard]] double drain_delay_ns(std::size_t drained);

  /// Truncate and/or bit-flip serialized trace bytes in place (the
  /// mid-dump crash model). Returns the number of bytes corrupted.
  std::size_t apply_dump_faults(std::string& bytes);

  /// Install the sample/marker/drain hooks on a machine's MarkerLog and
  /// PebsDriver. The plan must outlive the machine's run.
  void attach(Machine& m);

  [[nodiscard]] const FaultPlanConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t samples_dropped() const {
    return samples_dropped_;
  }
  [[nodiscard]] std::uint64_t markers_dropped() const {
    return markers_dropped_;
  }
  [[nodiscard]] std::uint64_t drains_delayed() const {
    return drains_delayed_;
  }

 private:
  static bool in_burst(const std::vector<FaultPlanConfig::LossBurst>& bursts,
                       std::uint32_t core, Tsc tsc);
  /// splitmix64 step; returns a double in [0, 1).
  static double next_unit(std::uint64_t& state);

  FaultPlanConfig cfg_;
  std::uint64_t sample_rng_;
  std::uint64_t marker_rng_;
  std::uint64_t drain_rng_;
  std::uint64_t dump_rng_;
  std::uint64_t samples_dropped_ = 0;
  std::uint64_t markers_dropped_ = 0;
  std::uint64_t drains_delayed_ = 0;
};

} // namespace fluxtrace::sim
