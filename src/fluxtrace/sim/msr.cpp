#include "fluxtrace/sim/msr.hpp"

namespace fluxtrace::sim {

std::uint64_t PerfEvtSel::encode() const {
  std::uint64_t v = 0;
  v |= static_cast<std::uint64_t>(event_select);
  v |= static_cast<std::uint64_t>(umask) << 8;
  if (usr) v |= 1ull << 16;
  if (os) v |= 1ull << 17;
  if (enable) v |= 1ull << 22;
  return v;
}

PerfEvtSel PerfEvtSel::decode(std::uint64_t raw) {
  PerfEvtSel s;
  s.event_select = static_cast<std::uint8_t>(raw & 0xff);
  s.umask = static_cast<std::uint8_t>((raw >> 8) & 0xff);
  s.usr = (raw >> 16) & 1;
  s.os = (raw >> 17) & 1;
  s.enable = (raw >> 22) & 1;
  return s;
}

EventEncoding encoding_of(HwEvent e) {
  // SDM event codes for Skylake.
  switch (e) {
    case HwEvent::UopsRetired:  return {0xc2, 0x01}; // UOPS_RETIRED.ALL
    case HwEvent::CacheMisses:  return {0xd1, 0x20}; // MEM_LOAD_RETIRED.L3_MISS
    case HwEvent::BranchMisses: return {0xc5, 0x00}; // BR_MISP_RETIRED.ALL
    case HwEvent::LoadsRetired: return {0xd0, 0x81}; // MEM_INST_RETIRED.ALL_LOADS
  }
  return {0, 0};
}

std::optional<HwEvent> event_from(std::uint8_t event_select,
                                  std::uint8_t umask) {
  for (const HwEvent e : {HwEvent::UopsRetired, HwEvent::CacheMisses,
                          HwEvent::BranchMisses, HwEvent::LoadsRetired}) {
    const EventEncoding enc = encoding_of(e);
    if (enc.event_select == event_select && enc.umask == umask) return e;
  }
  return std::nullopt;
}

void SimplePebsModule::setup(HwEvent event, std::uint64_t reset,
                             std::uint64_t ds_area,
                             std::uint32_t buffer_capacity) {
  buffer_capacity_ = buffer_capacity;
  // The module's wrmsr sequence (simple-pebs order): DS area, counter,
  // event selection, PEBS enable, global enable.
  msrs_.write(kIa32DsArea, ds_area);
  msrs_.write(kIa32Pmc0, (~reset + 1) & kCounterMask); // −R, 48-bit
  const EventEncoding enc = encoding_of(event);
  PerfEvtSel sel;
  sel.event_select = enc.event_select;
  sel.umask = enc.umask;
  sel.usr = true;
  sel.enable = true;
  msrs_.write(kIa32PerfEvtSel0, sel.encode());
  msrs_.write(kIa32PebsEnable, 1); // PEBS on PMC0
  msrs_.write(kIa32PerfGlobalCtrl, 1); // PMC0 globally enabled
  apply();
}

void SimplePebsModule::teardown() {
  msrs_.write(kIa32PerfGlobalCtrl, 0);
  msrs_.write(kIa32PebsEnable, 0);
  apply();
}

bool SimplePebsModule::armed() const {
  if ((msrs_.read(kIa32PebsEnable) & 1) == 0) return false;
  if ((msrs_.read(kIa32PerfGlobalCtrl) & 1) == 0) return false;
  const PerfEvtSel sel = PerfEvtSel::decode(msrs_.read(kIa32PerfEvtSel0));
  if (!sel.enable) return false;
  return configured_event().has_value();
}

std::optional<HwEvent> SimplePebsModule::configured_event() const {
  const PerfEvtSel sel = PerfEvtSel::decode(msrs_.read(kIa32PerfEvtSel0));
  return event_from(sel.event_select, sel.umask);
}

std::uint64_t SimplePebsModule::configured_reset() const {
  const std::uint64_t pmc = msrs_.read(kIa32Pmc0) & kCounterMask;
  return (~pmc + 1) & kCounterMask; // counter holds −R
}

void SimplePebsModule::apply() {
  if (!armed()) {
    unit_.set_enabled(false);
    return;
  }
  PebsConfig cfg;
  cfg.event = *configured_event();
  cfg.reset = configured_reset();
  cfg.buffer_capacity = buffer_capacity_;
  unit_.configure(cfg);
}

} // namespace fluxtrace::sim
