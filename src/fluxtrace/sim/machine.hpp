// The multi-core machine: a discrete-event scheduler over pinned tasks.
// Mirrors the software architecture the paper targets (§III-C, Fig. 5):
// one thread per core, threads connected by software queues, each thread
// processing one data-item at a time. The scheduler always steps the
// runnable task whose core has the smallest TSC, which makes inter-core
// interaction through queues deterministic — tests can assert exact
// timestamps.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/time.hpp"
#include "fluxtrace/base/wait.hpp"
#include "fluxtrace/sim/cpu.hpp"

namespace fluxtrace::sim {

/// What one scheduling step of a task produced.
enum class StepStatus : std::uint8_t {
  Progress, ///< did simulated work (TSC advanced)
  Idle,     ///< nothing to do right now (e.g. input queue empty)
  Done,     ///< finished; do not schedule again
};

/// A simulated thread pinned to one core. step() performs a bounded chunk
/// of work against the core's execution engine and returns.
class Task {
 public:
  virtual ~Task() = default;
  virtual StepStatus step(Cpu& cpu) = 0;
  [[nodiscard]] virtual std::string_view name() const { return "task"; }
};

struct MachineConfig {
  CpuSpec spec{};
  CacheHierarchyConfig cache{};
  PebsDriverConfig driver{};
  CpuConfig cpu{};
  /// TSC step applied to a core whose task reported Idle, so time always
  /// makes progress (think of it as the granularity of an empty poll).
  Tsc idle_grain = 200;
};

struct RunResult {
  Tsc end_tsc = 0;      ///< max core TSC at stop
  bool all_done = false;///< every attached task returned Done
  std::uint64_t steps = 0;
};

/// Owns the cores (with their PEBS units and caches, L3 shared), the
/// marker log, and the PEBS driver; schedules attached tasks.
class Machine {
 public:
  Machine(const SymbolTable& symtab, MachineConfig cfg = {});

  [[nodiscard]] Cpu& cpu(std::uint32_t core) { return *cpus_[core]; }
  [[nodiscard]] std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(cpus_.size());
  }
  [[nodiscard]] MarkerLog& marker_log() { return marker_log_; }
  /// Machine-wide wait-edge collector (ISSUE 8). Apps point their ring /
  /// channel probes here; the constructor installs obs::count_wait_edge
  /// as its hook so stall counters track the log for free.
  [[nodiscard]] WaitLog& wait_log() { return wait_log_; }
  [[nodiscard]] PebsDriver& pebs_driver() { return driver_; }
  [[nodiscard]] const CpuSpec& spec() const { return cfg_.spec; }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }

  /// Pin `task` to `core`. One task per core (the architecture of Fig. 5).
  void attach(std::uint32_t core, Task& task);

  /// Step tasks in TSC order until all are Done or simulated time passes
  /// `until`.
  RunResult run(Tsc until = std::numeric_limits<Tsc>::max());

  /// Drain every core's partial PEBS buffer into the driver (end of run).
  void flush_samples();

 private:
  struct Slot {
    Task* task = nullptr;
    bool done = false;
  };

  const SymbolTable& symtab_;
  MachineConfig cfg_;
  MarkerLog marker_log_;
  WaitLog wait_log_;
  PebsDriver driver_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::vector<Slot> slots_;
};

} // namespace fluxtrace::sim
