// The MSR-level programming interface of the PEBS hardware, mirroring how
// the paper's kernel module ("simple-pebs", §III-E) actually configures
// it: write the DS-area pointer, program PERFEVTSEL0 with the event
// code/umask, arm PMC0 with the two's complement of the reset value, set
// the PEBS-enable and global-enable bits. Register addresses and bit
// layouts follow the Intel SDM, so the driver logic here is the same code
// one would write against real hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "fluxtrace/base/events.hpp"
#include "fluxtrace/sim/pebs.hpp"

namespace fluxtrace::sim {

// --- architectural MSR addresses (Intel SDM vol. 4) ------------------
inline constexpr std::uint32_t kIa32Pmc0 = 0x0c1;
inline constexpr std::uint32_t kIa32PerfEvtSel0 = 0x186;
inline constexpr std::uint32_t kIa32PerfGlobalCtrl = 0x38f;
inline constexpr std::uint32_t kIa32PebsEnable = 0x3f1;
inline constexpr std::uint32_t kIa32DsArea = 0x600;

/// IA32_PERFEVTSELx bit layout (the fields the module uses).
struct PerfEvtSel {
  std::uint8_t event_select = 0; ///< bits 7:0
  std::uint8_t umask = 0;        ///< bits 15:8
  bool usr = true;               ///< bit 16: count user code
  bool os = false;               ///< bit 17: count kernel code
  bool enable = false;           ///< bit 22: counter enable

  [[nodiscard]] std::uint64_t encode() const;
  [[nodiscard]] static PerfEvtSel decode(std::uint64_t raw);
  friend bool operator==(const PerfEvtSel&, const PerfEvtSel&) = default;
};

/// Event-code/umask pairs for the events the simulated PMU supports, as
/// listed in the SDM for Skylake.
struct EventEncoding {
  std::uint8_t event_select;
  std::uint8_t umask;
};
[[nodiscard]] EventEncoding encoding_of(HwEvent e);
[[nodiscard]] std::optional<HwEvent> event_from(std::uint8_t event_select,
                                                std::uint8_t umask);

/// One core's MSR space: plain storage with rdmsr/wrmsr semantics.
class MsrFile {
 public:
  [[nodiscard]] std::uint64_t read(std::uint32_t addr) const {
    auto it = regs_.find(addr);
    return it == regs_.end() ? 0 : it->second;
  }
  void write(std::uint32_t addr, std::uint64_t value) {
    regs_[addr] = value;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> regs_;
};

/// The simple-pebs kernel module's per-core setup path, acting on a
/// simulated MSR file and realizing the resulting configuration on the
/// PEBS unit. `apply()` derives the unit state purely from MSR contents,
/// so tests can verify the register semantics independent of the setup
/// helper.
class SimplePebsModule {
 public:
  SimplePebsModule(MsrFile& msrs, PebsUnit& unit)
      : msrs_(msrs), unit_(unit) {}

  /// The module's init: program everything and enable. `ds_area` is the
  /// (simulated) kernel virtual address of the DS save area.
  void setup(HwEvent event, std::uint64_t reset, std::uint64_t ds_area,
             std::uint32_t buffer_capacity = 512);

  /// The module's exit path: clear enables.
  void teardown();

  /// Realize the MSR contents on the PEBS unit: enabled iff PEBS_ENABLE
  /// bit 0, GLOBAL_CTRL bit 0 and PERFEVTSEL0.enable are all set and the
  /// event encoding is known; reset value = −(PMC0) interpreted as a
  /// 48-bit counter.
  void apply();

  /// True when the MSR state decodes to an armed configuration.
  [[nodiscard]] bool armed() const;
  [[nodiscard]] std::optional<HwEvent> configured_event() const;
  [[nodiscard]] std::uint64_t configured_reset() const;

 private:
  static constexpr std::uint64_t kCounterMask = (1ull << 48) - 1;

  MsrFile& msrs_;
  PebsUnit& unit_;
  std::uint32_t buffer_capacity_ = 512;
};

} // namespace fluxtrace::sim
