// Precise Event Based Sampling, modelled after the Skylake implementation
// the paper uses (§III-B, §III-E):
//
//  * A per-core counter register is armed with -R (the "reset value").
//    Every occurrence of the configured hardware event increments it; on
//    overflow the CPU microcode writes one record — GP registers,
//    instruction pointer, TSC — into the PEBS buffer and re-arms to -R.
//    Each record costs ~250 ns of the traced core's time [Akiyama &
//    Hirofuchi, ROSS'17].
//  * When (and only when) the buffer fills, the CPU raises an interrupt.
//    The kernel module ("simple-pebs") dispatches it on the traced core
//    (a short stall) and asks the helper program to copy the buffer to
//    userspace and dump it to SSD; PEBS stays disarmed until the helper
//    reports the data safe, so overflows in that window are lost.
//    Double buffering (paper future work, §III-E) shrinks the disarmed
//    window to a buffer swap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fluxtrace/base/events.hpp"
#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::sim {

/// Configuration of one core's PEBS unit.
struct PebsConfig {
  HwEvent event = HwEvent::UopsRetired; ///< sampled hardware event
  std::uint64_t reset = 8000;           ///< R: events between samples
  std::uint32_t buffer_capacity = 512;  ///< records before buffer-full IRQ
  double sample_cost_ns = 250.0;        ///< microcode assist per record
};

/// One core's PEBS hardware: counter + buffer. The execution engine feeds
/// it event counts; it reports the exact event offsets at which samples
/// fire so the engine can place them on the timeline.
class PebsUnit {
 public:
  void configure(const PebsConfig& cfg);
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const PebsConfig& config() const { return cfg_; }

  /// Events remaining until the counter overflows.
  [[nodiscard]] std::uint64_t until_overflow() const {
    return static_cast<std::uint64_t>(-counter_);
  }

  /// Count `n` events with no overflow (n < until_overflow()).
  void count(std::uint64_t n) { counter_ += static_cast<std::int64_t>(n); }

  /// Live reprogram of the reset value (what an adaptive controller
  /// writes into PMC0): takes effect at the next re-arm; buffered records
  /// and the in-flight count are preserved.
  void set_reset(std::uint64_t reset) {
    if (reset > 0) cfg_.reset = reset;
  }

  /// Record one sample at an overflow point and re-arm the counter.
  /// Returns true when the buffer is now full and the unit raises the
  /// buffer-full interrupt (sampling pauses until drained).
  bool take_sample(Tsc tsc, std::uint64_t ip, const RegisterFile& regs);

  /// True when the buffer is full and awaiting a drain; the unit drops
  /// events while in this state (hardware behaviour: PEBS is disarmed
  /// until the OS re-enables it).
  [[nodiscard]] bool buffer_full() const {
    return buffer_.size() >= cfg_.buffer_capacity;
  }

  /// Move the buffered records out (the kernel module's drain) and
  /// re-arm the counter.
  [[nodiscard]] SampleVec drain();

  /// The helper program has not yet saved the previous buffer: PEBS stays
  /// disarmed until `t` and overflows before then are lost (§III-E — the
  /// module re-enables PEBS only after the helper reports the data safe).
  void disarm_until(Tsc t) { disarmed_until_ = t; }
  [[nodiscard]] bool disarmed_at(Tsc t) const { return t < disarmed_until_; }

  /// Record that an overflow fired while disarmed; the counter re-arms
  /// but no sample is written.
  void note_lost() {
    ++lost_;
    counter_ = -static_cast<std::int64_t>(cfg_.reset);
  }

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }
  [[nodiscard]] std::uint64_t samples_lost() const { return lost_; }

 private:
  PebsConfig cfg_;
  bool enabled_ = false;
  std::int64_t counter_ = 0; ///< armed to -R; overflow at 0
  Tsc disarmed_until_ = 0;
  std::uint64_t lost_ = 0;
  SampleVec buffer_;
  std::uint64_t total_samples_ = 0;
};

/// Cost model and collection point for buffer drains — the simulated
/// equivalent of the simple-pebs kernel module plus its helper program.
struct PebsDriverConfig {
  double irq_entry_ns = 2000.0;      ///< IRQ dispatch + helper wakeup
  double copy_ns_per_sample = 10.0;  ///< PEBS buffer → userspace copy
  double ssd_bandwidth_gbps = 0.5;   ///< synchronous dump (prototype mode)
  bool double_buffering = false;     ///< §III-E future-work optimization
  double swap_ns = 500.0;            ///< buffer-swap cost when double buffering
};

class PebsDriver {
 public:
  explicit PebsDriver(const CpuSpec& spec, PebsDriverConfig cfg = {})
      : spec_(spec), cfg_(cfg) {}

  /// Handle a buffer-full interrupt from `unit` on `core` at time `now`.
  /// Returns the stall (cycles) the traced core pays — the interrupt
  /// dispatch only. The copy + SSD dump run in the helper program while
  /// the traced program continues, but PEBS stays disarmed until the
  /// helper is done (disarm window set on the unit), so overflows in that
  /// window are lost. Double buffering shrinks the disarm window to the
  /// buffer swap.
  Tsc on_buffer_full(PebsUnit& unit, std::uint32_t core, Tsc now);

  /// Collect whatever is still buffered at end of run (no stall modelled;
  /// the program has already finished).
  void flush(PebsUnit& unit, std::uint32_t core);

  /// All samples collected so far, in drain order. Within one core this is
  /// time order; merge_sorted() gives a global time order.
  [[nodiscard]] const SampleVec& samples() const { return collected_; }
  [[nodiscard]] SampleVec samples_sorted_by_time() const;

  [[nodiscard]] std::uint64_t bytes_collected() const {
    return collected_.size() * kPebsRecordBytes;
  }
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  [[nodiscard]] Tsc total_stall() const { return total_stall_; }
  [[nodiscard]] const PebsDriverConfig& config() const { return cfg_; }

  void clear();

  /// Optional live consumer invoked for each sample as it is drained —
  /// this is where online processing hooks in (the samples reach software
  /// only at drain time, in per-core time order).
  using Sink = std::function<void(const PebsSample&)>;
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // --- fault injection & loss accounting --------------------------------

  /// Loss filter consulted per drained record; true = the record is lost
  /// before reaching software (sim::FaultPlan installs its decision
  /// here). Lost records are logged as SampleLoss events, not collected.
  using FaultHook = std::function<bool(const PebsSample&)>;
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }

  /// Extra helper-program nanoseconds added to a drain's disarm window
  /// (a slow SSD queue); receives the drained record count.
  using DelayHook = std::function<double(std::size_t drained)>;
  void set_delay_hook(DelayHook hook) { delay_ = std::move(hook); }

  /// Optional live consumer of loss events (what core::OnlineTracer uses
  /// for streaming loss accounting).
  using LossSink = std::function<void(const SampleLoss&)>;
  void set_loss_sink(LossSink sink) { loss_sink_ = std::move(sink); }

  /// Record a loss at a known time: disarm-window overflows (reported by
  /// the Cpu alongside PebsUnit::note_lost) and fault-hook drops.
  void note_lost(std::uint32_t core, Tsc tsc);

  /// Every loss with a known timestamp, in occurrence order.
  [[nodiscard]] const std::vector<SampleLoss>& losses() const {
    return losses_;
  }
  /// Losses injected by the fault hook (subset of losses()).
  [[nodiscard]] std::uint64_t injected_losses() const {
    return injected_losses_;
  }

 private:
  CpuSpec spec_;
  PebsDriverConfig cfg_;
  SampleVec collected_;
  Sink sink_;
  FaultHook fault_;
  DelayHook delay_;
  LossSink loss_sink_;
  std::vector<SampleLoss> losses_;
  std::uint64_t injected_losses_ = 0;
  std::uint64_t drains_ = 0;
  Tsc total_stall_ = 0;

  /// Run drained records through the fault hook, tag cores, deliver to
  /// sink + collection.
  void deliver(SampleVec&& drained, std::uint32_t core);
};

} // namespace fluxtrace::sim
