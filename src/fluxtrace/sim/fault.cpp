#include "fluxtrace/sim/fault.hpp"

#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::sim {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // Distinct streams per decision kind so one knob never perturbs the
  // others' draw sequence.
  return seed ^ (0x9e3779b97f4a7c15ull * (stream + 1));
}

} // namespace

FaultPlan::FaultPlan(FaultPlanConfig cfg)
    : cfg_(std::move(cfg)),
      sample_rng_(mix_seed(cfg_.seed, 0)),
      marker_rng_(mix_seed(cfg_.seed, 1)),
      drain_rng_(mix_seed(cfg_.seed, 2)),
      dump_rng_(mix_seed(cfg_.seed, 3)),
      sink_rng_(mix_seed(cfg_.seed, 4)),
      read_rng_(mix_seed(cfg_.seed, 5)) {}

double FaultPlan::next_unit(std::uint64_t& state) {
  // splitmix64 (public domain, Vigna): a full-period 64-bit stream from
  // any seed, good enough for loss decisions and fully deterministic.
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool FaultPlan::in_burst(
    const std::vector<FaultPlanConfig::LossBurst>& bursts, std::uint32_t core,
    Tsc tsc) {
  for (const auto& b : bursts) {
    if ((b.core == FaultPlanConfig::kAllCores || b.core == core) &&
        tsc >= b.begin && tsc < b.end) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::lose_sample(const PebsSample& s) {
  // Always draw so the stream position depends only on record count.
  const double u = next_unit(sample_rng_);
  const bool lose =
      in_burst(cfg_.sample_bursts, s.core, s.tsc) || u < cfg_.sample_loss_rate;
  if (lose) ++samples_dropped_;
  return lose;
}

bool FaultPlan::lose_marker(const Marker& m) {
  const double u = next_unit(marker_rng_);
  const bool lose =
      in_burst(cfg_.marker_bursts, m.core, m.tsc) || u < cfg_.marker_loss_rate;
  if (lose) ++markers_dropped_;
  return lose;
}

double FaultPlan::drain_delay_ns(std::size_t /*drained*/) {
  double extra = cfg_.extra_drain_ns;
  const double u = next_unit(drain_rng_);
  if (u < cfg_.slow_drain_rate) extra += cfg_.slow_drain_ns;
  if (extra > 0.0) ++drains_delayed_;
  return extra;
}

std::size_t FaultPlan::apply_dump_faults(std::string& bytes) {
  if (cfg_.dump_truncate_at != FaultPlanConfig::kNoTruncation &&
      bytes.size() > cfg_.dump_truncate_at) {
    bytes.resize(cfg_.dump_truncate_at);
  }
  std::size_t corrupted = 0;
  if (cfg_.dump_corrupt_rate > 0.0) {
    for (char& c : bytes) {
      if (next_unit(dump_rng_) < cfg_.dump_corrupt_rate) {
        const auto bit = static_cast<int>(next_unit(dump_rng_) * 8.0) & 7;
        c = static_cast<char>(static_cast<unsigned char>(c) ^ (1u << bit));
        ++corrupted;
      }
    }
  }
  return corrupted;
}

SinkFaultKind FaultPlan::sink_fault(std::size_t bytes) {
  const std::uint64_t attempt = sink_writes_++;
  // Always draw so the stream position depends only on attempt count.
  const double u = next_unit(sink_rng_);
  if (cfg_.sink_enospc_after_bytes != FaultPlanConfig::kNoLimit &&
      sink_bytes_accepted_ >= cfg_.sink_enospc_after_bytes) {
    ++sink_enospc_hits_;
    return SinkFaultKind::NoSpace;
  }
  for (const auto& w : cfg_.sink_stuck) {
    if (attempt >= w.from_write && attempt < w.from_write + w.writes) {
      ++sink_stuck_hits_;
      return SinkFaultKind::Stuck;
    }
  }
  if (u < cfg_.sink_transient_rate) {
    ++sink_transients_;
    return SinkFaultKind::Transient;
  }
  sink_bytes_accepted_ += bytes;
  return SinkFaultKind::None;
}

ReadFaultKind FaultPlan::read_fault() {
  const std::uint64_t attempt = read_attempts_++;
  // Always draw so the stream position depends only on attempt count.
  const double u = next_unit(read_rng_);
  for (const auto& w : cfg_.read_short) {
    if (attempt >= w.from_read && attempt < w.from_read + w.reads) {
      ++read_short_hits_;
      return ReadFaultKind::Short;
    }
  }
  if (u < cfg_.read_transient_rate) {
    ++read_transients_;
    return ReadFaultKind::Transient;
  }
  return ReadFaultKind::None;
}

bool FaultPlan::size_query_stale() {
  const std::uint64_t query = size_queries_++;
  const bool stale = query < cfg_.read_stale_queries;
  if (stale) ++stale_size_queries_;
  return stale;
}

void FaultPlan::attach(Machine& m) {
  m.marker_log().set_drop_filter(
      [this](const Marker& mk) { return lose_marker(mk); });
  m.pebs_driver().set_fault_hook(
      [this](const PebsSample& s) { return lose_sample(s); });
  m.pebs_driver().set_delay_hook(
      [this](std::size_t drained) { return drain_delay_ns(drained); });
}

} // namespace fluxtrace::sim
