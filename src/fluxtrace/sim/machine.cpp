#include "fluxtrace/sim/machine.hpp"

#include <cassert>

#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::sim {

Machine::Machine(const SymbolTable& symtab, MachineConfig cfg)
    : symtab_(symtab), cfg_(cfg), driver_(cfg.spec, cfg.driver) {
  wait_log_.set_hook(&obs::count_wait_edge);
  auto shared_l3 = std::make_shared<CacheLevel>(cfg_.cache.l3);
  cpus_.reserve(cfg_.spec.num_cores);
  for (std::uint32_t c = 0; c < cfg_.spec.num_cores; ++c) {
    cpus_.push_back(std::make_unique<Cpu>(
        c, cfg_.spec, symtab_, marker_log_,
        CacheHierarchy(cfg_.cache, shared_l3), &driver_, cfg_.cpu));
  }
  slots_.resize(cfg_.spec.num_cores);
}

void Machine::attach(std::uint32_t core, Task& task) {
  assert(core < slots_.size());
  assert(slots_[core].task == nullptr && "one task per core (Fig. 5)");
  slots_[core] = Slot{&task, false};
}

RunResult Machine::run(Tsc until) {
  RunResult result;
  for (;;) {
    // Pick the runnable task on the core with the smallest TSC.
    Cpu* next_cpu = nullptr;
    Slot* next_slot = nullptr;
    for (std::uint32_t c = 0; c < slots_.size(); ++c) {
      Slot& s = slots_[c];
      if (s.task == nullptr || s.done) continue;
      if (next_cpu == nullptr || cpus_[c]->now() < next_cpu->now()) {
        next_cpu = cpus_[c].get();
        next_slot = &s;
      }
    }
    if (next_cpu == nullptr) {
      result.all_done = true;
      break;
    }
    if (next_cpu->now() > until) break;

    const StepStatus st = next_slot->task->step(*next_cpu);
    ++result.steps;
    if (st == StepStatus::Done) {
      next_slot->done = true;
    } else if (st == StepStatus::Idle) {
      next_cpu->advance(cfg_.idle_grain);
    }
  }

  for (const auto& c : cpus_) {
    if (c->now() > result.end_tsc) result.end_tsc = c->now();
  }
  return result;
}

void Machine::flush_samples() {
  for (auto& c : cpus_) {
    driver_.flush(c->pebs(), c->core_id());
  }
}

} // namespace fluxtrace::sim
