// Software-based sampling, modelled after `perf record` on the traditional
// (non-PEBS) performance counters: the counter overflow raises an
// interrupt, the OS suspends the target program, saves its state, and
// records the sample in software. The suspension costs on the order of
// 10 µs per sample, which is why Figure 4 of the paper shows the achieved
// sample interval flooring at ~10 µs no matter how high the configured
// sampling rate is. The throttling mechanism is assumed disabled (as the
// paper disables it).
#pragma once

#include <cstdint>

#include "fluxtrace/base/events.hpp"
#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::sim {

struct SwSamplerConfig {
  HwEvent event = HwEvent::UopsRetired;
  std::uint64_t reset = 8000;       ///< events between interrupts
  double interrupt_cost_ns = 9500;  ///< program suspension per sample
};

/// One core's software sampler. Mirrors PebsUnit's counting interface so
/// the execution engine drives both identically, but every overflow costs
/// a full OS interrupt instead of a microcode assist, and samples land in
/// an OS-side buffer with no hardware buffer-full mechanics.
class SwSampler {
 public:
  void configure(const SwSamplerConfig& cfg, const CpuSpec& spec);
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const SwSamplerConfig& config() const { return cfg_; }

  [[nodiscard]] std::uint64_t until_overflow() const {
    return static_cast<std::uint64_t>(-counter_);
  }
  void count(std::uint64_t n) { counter_ += static_cast<std::int64_t>(n); }

  /// Take one sample at an overflow; returns the stall (cycles) the target
  /// program pays for the interrupt + state save.
  Tsc take_sample(Tsc tsc, std::uint64_t ip, std::uint32_t core,
                  const RegisterFile& regs);

  [[nodiscard]] const SampleVec& samples() const { return samples_; }
  [[nodiscard]] Tsc total_stall() const { return total_stall_; }
  void clear();

 private:
  SwSamplerConfig cfg_;
  bool enabled_ = false;
  std::int64_t counter_ = 0;
  Tsc cost_cycles_ = 0;
  SampleVec samples_;
  Tsc total_stall_ = 0;
};

} // namespace fluxtrace::sim
