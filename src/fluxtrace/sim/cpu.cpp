#include "fluxtrace/sim/cpu.hpp"

#include <cassert>

namespace fluxtrace::sim {

Cpu::Cpu(std::uint32_t core, const CpuSpec& spec, const SymbolTable& symtab,
         MarkerLog& log, CacheHierarchy cache, PebsDriver* driver,
         CpuConfig cfg)
    : core_(core),
      spec_(spec),
      symtab_(symtab),
      log_(log),
      cache_(std::move(cache)),
      driver_(driver),
      cfg_(cfg) {}

Tsc Cpu::EventTimeline::offset_of(std::uint64_t j) const {
  assert(j >= 1 && j <= count);
  if (discrete != nullptr) return (*discrete)[j - 1];
  // Uniform events: the j-th of `count` events lands at fraction j/count
  // through the block.
  return static_cast<Tsc>(static_cast<double>(duration) *
                          (static_cast<double>(j) / static_cast<double>(count)));
}

template <typename Unit, typename OnSample>
void Cpu::drive_sampler(Unit& unit, const EventTimeline& tl, OnSample&& on) {
  std::uint64_t remaining = tl.count;
  std::uint64_t consumed = 0;
  while (remaining > 0) {
    const std::uint64_t u = unit.until_overflow();
    if (u > remaining) {
      unit.count(remaining);
      return;
    }
    consumed += u;
    remaining -= u;
    on(tl.offset_of(consumed)); // fires take_sample and re-arms the counter
  }
}

void Cpu::run(const ExecBlock& blk) {
  assert(blk.fn != kInvalidSymbol && "exec blocks must name a function");
  const Tsc t0 = tsc_;
  const Tsc compute = spec_.uop_cycles(blk.uops);

  // ---- Phase A: memory walk. Each load lands at a definite cycle offset;
  // misses add stall beyond the (hidden) L1 hit latency.
  miss_offsets_.clear();
  load_offsets_.clear();
  Tsc mem_stall = 0;
  std::uint64_t llc_misses = 0;
  if (blk.mem.count > 0) {
    const Tsc l1_lat = cache_.l1().config().hit_latency;
    for (std::uint32_t i = 0; i < blk.mem.count; ++i) {
      // Loads are spread through the compute work; stalls accumulate.
      const Tsc issue =
          static_cast<Tsc>(static_cast<double>(compute) *
                           (static_cast<double>(i) + 0.5) /
                           static_cast<double>(blk.mem.count)) +
          mem_stall;
      const AccessResult r = cache_.access(
          blk.mem.base + static_cast<std::uint64_t>(i) * blk.mem.stride);
      if (r.latency > l1_lat) mem_stall += r.latency - l1_lat;
      load_offsets_.push_back(issue);
      if (r.llc_miss) {
        miss_offsets_.push_back(issue + r.latency);
        ++llc_misses;
      }
    }
  }
  const Tsc br_stall = blk.branch_misses * spec_.branch_miss_penalty;
  Tsc duration = compute + mem_stall + br_stall + blk.extra_stall;
  if (speed_ != 1.0) {
    // Invariant TSC: a throttled core retires the same work over more
    // base-rate ticks.
    duration = static_cast<Tsc>(static_cast<double>(duration) / speed_);
  }

  // ---- Free-running PMU counters (profile-style accounting).
  stats_.events.add(HwEvent::UopsRetired, blk.uops);
  stats_.events.add(HwEvent::BranchMisses, blk.branch_misses);
  stats_.events.add(HwEvent::CacheMisses, llc_misses);
  stats_.events.add(HwEvent::LoadsRetired, blk.mem.count);

  // ---- Phase B: sampling. Build the event timeline each active sampler
  // watches and let its counter fire at exact offsets. Overheads shift
  // the core's wall time (block_shift_); samples taken later in the block
  // observe earlier shifts, as on real hardware.
  block_shift_ = 0;
  auto timeline_for = [&](HwEvent e) -> EventTimeline {
    switch (e) {
      case HwEvent::UopsRetired:
        return {blk.uops, duration, nullptr};
      case HwEvent::BranchMisses:
        return {blk.branch_misses, duration, nullptr};
      case HwEvent::CacheMisses:
        return {llc_misses, duration, &miss_offsets_};
      case HwEvent::LoadsRetired:
        return {blk.mem.count, duration, &load_offsets_};
    }
    return {};
  };

  if (pebs_.enabled()) {
    const EventTimeline tl = timeline_for(pebs_.config().event);
    if (tl.count > 0) {
      const Tsc assist = spec_.cycles(pebs_.config().sample_cost_ns);
      drive_sampler(pebs_, tl, [&](Tsc offset) {
        const Tsc ts = t0 + offset + block_shift_;
        if (pebs_.disarmed_at(ts)) {
          // The helper program is still saving the previous buffer: the
          // overflow fires but no record is written (§III-E). The driver
          // logs the loss with its timestamp so consumers can attribute
          // it to a data-item instead of silently under-counting.
          pebs_.note_lost();
          if (driver_ != nullptr) driver_->note_lost(core_, ts);
          return;
        }
        const double frac =
            duration == 0 ? 0.0
                          : static_cast<double>(offset) /
                                static_cast<double>(duration);
        const bool full =
            pebs_.take_sample(ts, symtab_.ip_at(blk.fn, frac), regs_);
        block_shift_ += assist;
        stats_.pebs_assist += assist;
        if (full && driver_ != nullptr) {
          const Tsc stall = driver_->on_buffer_full(pebs_, core_, ts);
          block_shift_ += stall;
          stats_.drain_stall += stall;
        }
      });
    }
  }

  if (sw_.enabled()) {
    const EventTimeline tl = timeline_for(sw_.config().event);
    if (tl.count > 0) {
      drive_sampler(sw_, tl, [&](Tsc offset) {
        const double frac =
            duration == 0 ? 0.0
                          : static_cast<double>(offset) /
                                static_cast<double>(duration);
        const Tsc stall =
            sw_.take_sample(t0 + offset + block_shift_,
                            symtab_.ip_at(blk.fn, frac), core_, regs_);
        block_shift_ += stall;
        stats_.sw_stall += stall;
      });
    }
  }

  // ---- Commit.
  tsc_ = t0 + duration + block_shift_;
  stats_.busy_cycles += duration;
  ++stats_.blocks;
  if (stats_.fn_cycles.size() <= blk.fn) stats_.fn_cycles.resize(blk.fn + 1, 0);
  stats_.fn_cycles[blk.fn] += duration;
}

void Cpu::mark(ItemId item, MarkerKind kind) {
  log_.record(core_, tsc_, item, kind);
  ++stats_.marker_count;
  const Tsc before = tsc_;
  if (cfg_.marker_symbol != kInvalidSymbol) {
    // The marking function is real code: it retires uops and can itself be
    // sampled (its time shows up under its own symbol).
    run({cfg_.marker_symbol, cfg_.marker_uops, 0, {}});
  } else {
    tsc_ += spec_.cycles(cfg_.marker_cost_ns);
  }
  stats_.marker_overhead += tsc_ - before;
}

void Cpu::set_speed(double factor) {
  assert(factor > 0.0 && factor <= 2.0 && "plausible DVFS range");
  speed_ = factor;
}

void Cpu::advance(Tsc cycles) {
  tsc_ += cycles;
  stats_.idle_cycles += cycles;
}

} // namespace fluxtrace::sim
