// Set-associative cache hierarchy for the simulated machine. Memory
// accesses issued by exec blocks walk L1 → L2 → shared L3 → DRAM; misses
// add stall cycles to the issuing core and raise CacheMisses PMU events,
// which PEBS can sample on (paper §V-D).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fluxtrace/base/time.hpp"

namespace fluxtrace::sim {

/// Geometry and hit latency of one cache level.
struct CacheLevelConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 64;
  Tsc hit_latency = 4; ///< cycles, load-to-use
};

/// One set-associative, LRU-replacement cache level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& cfg);

  /// Probe (and on miss, fill) the line containing `addr`.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Probe without filling; used by tests.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void invalidate_all();

  [[nodiscard]] const CacheLevelConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Set {
    // Tags in LRU order: back = most recently used.
    std::vector<std::uint64_t> tags;
  };

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const {
    return addr / cfg_.line_bytes;
  }

  CacheLevelConfig cfg_;
  std::uint32_t num_sets_;
  std::vector<Set> sets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Result of one load through the hierarchy.
struct AccessResult {
  Tsc latency = 0;      ///< cycles of load-to-use latency
  bool llc_miss = false;///< true when the access went to DRAM
};

/// Skylake-like defaults: 32 KiB L1D, 1 MiB L2, 8 MiB shared L3.
struct CacheHierarchyConfig {
  CacheLevelConfig l1{32 * 1024, 8, 64, 4};
  CacheLevelConfig l2{1024 * 1024, 16, 64, 14};
  CacheLevelConfig l3{8 * 1024 * 1024, 16, 64, 44};
  Tsc dram_latency = 190; ///< cycles
  /// Next-line prefetcher (L2): a demand miss also fills line+1 into
  /// L2/L3 at no charged latency — sequential sweeps then miss roughly
  /// half as often, pointer chases gain nothing.
  bool next_line_prefetch = false;
};

/// Per-core L1/L2 in front of a shared L3. The simulated machine creates
/// one hierarchy per core, all pointing at the same L3 instance.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheHierarchyConfig& cfg,
                 std::shared_ptr<CacheLevel> shared_l3);

  /// Convenience: builds a private L3 too (single-core experiments).
  explicit CacheHierarchy(const CacheHierarchyConfig& cfg = {});

  AccessResult access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t prefetches() const { return prefetches_; }

  [[nodiscard]] CacheLevel& l1() { return l1_; }
  [[nodiscard]] CacheLevel& l2() { return l2_; }
  [[nodiscard]] CacheLevel& l3() { return *l3_; }
  [[nodiscard]] std::shared_ptr<CacheLevel> l3_ptr() { return l3_; }

  void invalidate_all();

 private:
  CacheHierarchyConfig cfg_;
  CacheLevel l1_;
  CacheLevel l2_;
  std::shared_ptr<CacheLevel> l3_;
  std::uint64_t prefetches_ = 0;
};

} // namespace fluxtrace::sim
