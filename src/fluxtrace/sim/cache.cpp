#include "fluxtrace/sim/cache.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace::sim {

CacheLevel::CacheLevel(const CacheLevelConfig& cfg) : cfg_(cfg) {
  assert(cfg.line_bytes > 0 && cfg.ways > 0);
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  num_sets_ = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, lines / cfg.ways));
  sets_.resize(num_sets_);
  for (Set& s : sets_) s.tags.reserve(cfg.ways);
}

bool CacheLevel::access(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  Set& set = sets_[line % num_sets_];
  auto it = std::find(set.tags.begin(), set.tags.end(), line);
  if (it != set.tags.end()) {
    // Move to MRU position.
    set.tags.erase(it);
    set.tags.push_back(line);
    ++hits_;
    return true;
  }
  ++misses_;
  if (set.tags.size() >= cfg_.ways) {
    set.tags.erase(set.tags.begin()); // evict LRU
  }
  set.tags.push_back(line);
  return false;
}

bool CacheLevel::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const Set& set = sets_[line % num_sets_];
  return std::find(set.tags.begin(), set.tags.end(), line) != set.tags.end();
}

void CacheLevel::invalidate_all() {
  for (Set& s : sets_) s.tags.clear();
  hits_ = 0;
  misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig& cfg,
                               std::shared_ptr<CacheLevel> shared_l3)
    : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2), l3_(std::move(shared_l3)) {
  assert(l3_ != nullptr);
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig& cfg)
    : CacheHierarchy(cfg, std::make_shared<CacheLevel>(cfg.l3)) {}

AccessResult CacheHierarchy::access(std::uint64_t addr) {
  if (l1_.access(addr)) {
    return {cfg_.l1.hit_latency, false};
  }
  // A demand miss beyond L1 may trigger the next-line prefetch into
  // L2 (and L3), modelling the L2 streamer.
  const auto prefetch_next = [&] {
    if (!cfg_.next_line_prefetch) return;
    const std::uint64_t next = addr + cfg_.l1.line_bytes;
    if (!l2_.contains(next)) {
      (void)l2_.access(next);
      (void)l3_->access(next);
      ++prefetches_;
    }
  };
  if (l2_.access(addr)) {
    prefetch_next();
    return {cfg_.l2.hit_latency, false};
  }
  if (l3_->access(addr)) {
    prefetch_next();
    return {cfg_.l3.hit_latency, false};
  }
  prefetch_next();
  return {cfg_.dram_latency, true};
}

void CacheHierarchy::invalidate_all() {
  l1_.invalidate_all();
  l2_.invalidate_all();
  l3_->invalidate_all();
}

} // namespace fluxtrace::sim
