// Crash-safe trace persistence: the FLXT **v2 chunked** layout.
//
// The v1 container is a single monolithic stream — one torn write (a
// crash mid-dump, a bit-rotted sector) poisons the whole file, and a
// reader cannot even tell. v2 splits each stream into fixed-count record
// chunks, each carrying its own CRC32-protected header and payload:
//
//   file   := u32 magic "FLXT" | u32 version=2 | chunk* | eof-chunk
//   chunk  := u32 "CHNK" | u8 type (0=markers, 1=samples, 2=eof,
//           |                       3=wait edges)
//           | u32 n_records | u32 payload_bytes
//           | u32 header_crc (over the 13 bytes above)
//           | u32 payload_crc | payload
//
// The trailing eof chunk (type 2, no payload) is the torn-write
// detector: without it, a crash that cut the file at an exact chunk
// boundary would be indistinguishable from a complete shorter file.
//
// Records use the v1 field encoding (little-endian, fixed width), so an
// intact chunk decodes byte-identically to what was written.
//
// Two readers:
//   * read_trace() (trace_file.hpp) dispatches on the version field and
//     parses v2 strictly — any damage throws TraceIoError;
//   * salvage_trace() recovers every intact chunk from a truncated or
//     corrupted file: damaged payloads are skipped and counted, damaged
//     headers are resynchronized by scanning for the next chunk magic,
//     and an incomplete tail (the torn write) is discarded — never
//     returned as data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::rt {
class ThreadPool;
}

namespace fluxtrace::io {

inline constexpr std::uint32_t kTraceVersion2 = 2;
inline constexpr std::uint32_t kChunkMagic = 0x4b4e4843; // "CHNK"
inline constexpr std::size_t kDefaultChunkRecords = 1024;

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `len` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);

/// Serialize in the v2 chunked layout, `records_per_chunk` records per
/// chunk (smaller chunks = finer-grained crash recovery, more header
/// overhead: 21 bytes per chunk). Throws TraceIoError on stream failure.
void write_trace_v2(std::ostream& os, const TraceData& data,
                    std::size_t records_per_chunk = kDefaultChunkRecords);

// --- streaming chunk encoders -----------------------------------------
// The byte-exact building blocks of the v2 layout, exposed so a spooler
// (io::ResilientWriter) can emit and fsync the file chunk-at-a-time: a
// crash between chunks leaves a salvageable prefix, never a torn record.

/// The 8-byte file prefix: magic + version.
[[nodiscard]] std::string encode_v2_file_header();
/// One complete marker chunk (header, CRCs, payload) for `n` records.
[[nodiscard]] std::string encode_marker_chunk(const Marker* ms, std::size_t n);
/// One complete sample chunk for `n` records.
[[nodiscard]] std::string encode_sample_chunk(const PebsSample* ss,
                                              std::size_t n);
/// One complete wait-edge chunk (type 3, ISSUE 8) for `n` records.
[[nodiscard]] std::string encode_wait_chunk(const WaitEdge* es, std::size_t n);
/// The trailing eof sentinel chunk (the torn-write detector).
[[nodiscard]] std::string encode_eof_chunk();

/// File-path convenience; errors carry the path and errno context.
void save_trace_v2(const std::string& path, const TraceData& data,
                   std::size_t records_per_chunk = kDefaultChunkRecords);

/// What salvage_trace() recovered and what it had to give up.
struct SalvageReport {
  TraceData data;                  ///< records from every intact chunk
  std::size_t chunks_ok = 0;       ///< chunks recovered in full
  std::size_t chunks_corrupt = 0;  ///< payload/type damage: skipped
  std::size_t chunks_resynced = 0; ///< damaged headers scanned past
  std::uint64_t bytes_skipped = 0; ///< damaged bytes passed over mid-file
  std::uint64_t bytes_truncated = 0; ///< incomplete tail discarded
  bool header_ok = false;          ///< file magic + version were intact
  bool eof_ok = false;             ///< the trailing eof chunk was intact

  /// True when the file was read back in full with no damage.
  [[nodiscard]] bool clean() const {
    return header_ok && eof_ok && chunks_corrupt == 0 &&
           chunks_resynced == 0 && bytes_skipped == 0 &&
           bytes_truncated == 0;
  }
};

/// Best-effort reader: recovers every chunk whose header and payload
/// check out, skipping damage instead of throwing. Only unreadable input
/// (a stream that cannot be consumed at all) throws TraceIoError; a
/// completely destroyed file simply reports zero recovered chunks.
[[nodiscard]] SalvageReport salvage_trace(std::istream& is);
[[nodiscard]] SalvageReport salvage_trace_file(const std::string& path);

/// Buffer-based salvage over a whole file image (the stream overload
/// reads the stream to the end and delegates here). TraceReader uses
/// this directly on its in-memory file bytes.
[[nodiscard]] SalvageReport salvage_trace(std::string_view buf);

/// Strict v2 body parser used by read_trace() after the version field;
/// throws TraceIoError on any damage. Exposed for the io layer, not a
/// public entry point.
[[nodiscard]] TraceData read_trace_v2_body(std::istream& is);

/// Buffer-based strict v2 body parse (`body` = the bytes after the
/// 8-byte magic + version header). io-internal, used by TraceReader.
[[nodiscard]] TraceData read_trace_v2_body(std::string_view body);

// --- selective chunk access -------------------------------------------
// The query engine (query/engine.cpp) decodes *subsets* of a v2 file:
// its FLXI zone maps tell it which sample chunks a query can possibly
// match, and it skips the rest. These two calls expose the strict
// reader's chunk walk without forcing a full decode.

inline constexpr std::uint8_t kChunkTypeMarkers = 0;
inline constexpr std::uint8_t kChunkTypeSamples = 1;
inline constexpr std::uint8_t kChunkTypeEof = 2;
/// Wait edges (ISSUE 8): enter u64 | leave u64 | item u64 | waiter u32
/// | holder u32 | resource u32 | cause u8, 37 bytes per record. Spooled
/// alongside sample chunks; every reader (strict, parallel, salvage,
/// follower) decodes them into TraceData::wait_edges.
inline constexpr std::uint8_t kChunkTypeWaitEdges = 3;

/// One chunk's location in a v2 *file image* (header + chunks).
struct V2ChunkRef {
  std::uint64_t offset = 0; ///< of the chunk header, within the file image
  std::uint8_t type = 0;    ///< kChunkTypeMarkers / kChunkTypeSamples
  std::uint32_t n_records = 0;
  std::uint32_t payload_bytes = 0;
};

/// Strict header walk over a whole v2 file image: validates the file
/// header, every chunk header CRC, and the trailing eof sentinel, and
/// returns the data chunks in file order (the eof chunk is consumed, not
/// returned). Payload CRCs are *not* checked here — that is per-chunk
/// work decode_trace_v2_chunk() does on the chunks actually read. Throws
/// TraceIoError on any structural damage.
[[nodiscard]] std::vector<V2ChunkRef> index_trace_v2(std::string_view file);

/// Decode one indexed chunk's records into `out` (markers or samples,
/// appended in order). Validates the payload CRC; throws TraceIoError on
/// damage or a ref that does not match `file`.
void decode_trace_v2_chunk(std::string_view file, const V2ChunkRef& ref,
                           TraceData& out);

/// Column sink for decode_trace_v2_samples_columnar(): sample fields are
/// appended straight into int64 columns, skipping the 148-byte
/// PebsSample materialization entirely (the columnar store only ever
/// reads ts/ip/core and, in register-id mode, one GPR — decoding the
/// other 15 registers per record is pure waste on the query hot path).
struct SampleColumnSink {
  std::vector<std::int64_t>* tsc = nullptr;  ///< required
  std::vector<std::int64_t>* ip = nullptr;   ///< required
  std::vector<std::int64_t>* core = nullptr; ///< required
  std::vector<std::int64_t>* reg = nullptr;  ///< optional: one GPR column
  unsigned reg_index = 0;                    ///< which GPR fills `reg`
};

/// Decode one indexed *sample* chunk directly into columns. Identical
/// validation to decode_trace_v2_chunk (payload CRC, size checks);
/// throws TraceIoError on damage, a non-sample ref, or a ref that does
/// not match `file`.
void decode_trace_v2_samples_columnar(std::string_view file,
                                      const V2ChunkRef& ref,
                                      const SampleColumnSink& sink);

/// Raw-pointer variant of the column sink for chunk-parallel decode: each
/// worker writes its chunk's rows into a pre-sized disjoint slice of the
/// shared columns, so no append coordination is needed.
struct SampleColumnSlice {
  std::int64_t* tsc = nullptr;  ///< required
  std::int64_t* ip = nullptr;   ///< required
  std::int64_t* core = nullptr; ///< required
  std::int64_t* reg = nullptr;  ///< optional: one GPR column
  unsigned reg_index = 0;       ///< which GPR fills `reg`
};

/// Decode one indexed raw *sample* chunk into a slice: writes exactly
/// ref.n_records values at each non-null pointer. Same validation and
/// errors as decode_trace_v2_samples_columnar. (The compressed-chunk
/// counterpart is io::decode_v3_samples_into, v3.hpp.)
void decode_trace_v2_samples_slice(std::string_view file,
                                   const V2ChunkRef& ref,
                                   const SampleColumnSlice& out);

/// Chunk-parallel strict v2 body parse: one sequential index pass over
/// the chunk headers, then payload CRC checks and record decodes run
/// concurrently on `pool`, concatenated in chunk order — the result (and
/// any damage error) is identical to the sequential parse. io-internal,
/// used by TraceReader::read_parallel.
[[nodiscard]] TraceData read_trace_v2_body_parallel(std::string_view body,
                                                    rt::ThreadPool& pool);

} // namespace fluxtrace::io
