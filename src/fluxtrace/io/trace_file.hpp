// Trace persistence. The paper's prototype dumps raw PEBS samples and the
// marker log to SSD for later offline integration (§III-E); this module
// gives that dump a real format:
//
//   * a compact little-endian binary container ("FLXT") holding the
//     marker and sample streams, with a versioned header and per-section
//     counts, safe to read back on any host;
//   * CSV export of both streams for ad-hoc analysis.
//
// Readers validate magic/version/section sizes and report malformed input
// via TraceIoError rather than crashing on truncated files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/wait.hpp"

namespace fluxtrace::rt {
class ThreadPool;
}

namespace fluxtrace::io {

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

/// Everything one tracing session produces. Wait edges (ISSUE 8) exist
/// only in the v2 chunked container; the v1 format has no slot for them
/// and drops them on write.
struct TraceData {
  std::vector<Marker> markers;
  SampleVec samples;
  std::vector<WaitEdge> wait_edges;

  friend bool operator==(const TraceData&, const TraceData&) = default;
};

inline constexpr std::uint32_t kTraceMagic = 0x54584c46; // "FLXT"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serialize to the binary container. Throws TraceIoError on stream
/// failure.
void write_trace(std::ostream& os, const TraceData& data);

/// File-path convenience.
void save_trace(const std::string& path, const TraceData& data);

// The legacy single-format readers (read_trace, load_trace) moved to the
// io-internal io/legacy.hpp; open traces via io::open_trace()
// (io/trace_reader.hpp), which autodetects every container.

/// Buffer-based strict v1 body parse (`body` = the bytes after the 8-byte
/// magic + version header: both record counts, then the two record
/// streams). Trailing bytes beyond the counted records are ignored, like
/// the stream reader. io-internal, used by TraceReader.
[[nodiscard]] TraceData read_trace_v1_body(std::string_view body);

/// Parallel v1 body parse: the counted header makes every record's offset
/// known up front, so fixed-size record blocks decode concurrently into
/// disjoint ranges of the output vectors. Result and error behaviour are
/// identical to read_trace_v1_body(). io-internal, used by
/// TraceReader::read_parallel.
[[nodiscard]] TraceData read_trace_v1_body_parallel(std::string_view body,
                                                    rt::ThreadPool& pool);

/// CSV export: one stream per call, RFC-4180 cells, header row included.
void write_markers_csv(std::ostream& os, const std::vector<Marker>& markers);
void write_samples_csv(std::ostream& os, const SampleVec& samples);

} // namespace fluxtrace::io
