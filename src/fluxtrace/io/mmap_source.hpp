// Zero-copy trace input: a read-only mmap of the whole file, exposed
// both as a ByteSource (so the follower machinery can poll it) and as a
// raw view() the TraceReader hands straight to the chunk decoders — a
// cold open touches each page once, on first decode, instead of paying
// an up-front slurp copy of the entire image.
//
// Mapped files can shrink underneath the mapping (a rotation, a
// truncate-and-rewrite): pages wholly past the new end-of-file fault
// SIGBUS on touch. current_size()/shrunk() let the reader detect this
// before touching anything — the strict read path refuses a shrunk
// mapping, the salvage path clamps itself to the still-backed prefix
// (every byte below the current size lives in a page the file still
// covers).
//
// map() returns null whenever the platform cannot produce a useful
// mapping — empty file (mmap of length 0 is EINVAL), exotic filesystem,
// no mmap support — and the caller falls back to a pread slurp. Fault
// injection (sim fault plans) also takes the pread path: a real mapping
// has no hook to fail a load from.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "fluxtrace/io/follower.hpp"

namespace fluxtrace::io {

class MmapByteSource final : public ByteSource {
 public:
  /// Map `path` read-only in full. Returns null when the file cannot be
  /// mapped (missing, empty, or mmap failure) — never throws.
  [[nodiscard]] static std::shared_ptr<MmapByteSource> map(
      const std::string& path);

  ~MmapByteSource() override;
  MmapByteSource(const MmapByteSource&) = delete;
  MmapByteSource& operator=(const MmapByteSource&) = delete;

  /// The mapped image as of map() time. Stable for the source's lifetime;
  /// bytes past current_size() must not be touched (see shrunk()).
  [[nodiscard]] std::string_view view() const {
    return {static_cast<const char*>(addr_), len_};
  }

  /// The file's size right now (fstat on the kept descriptor); 0 when the
  /// file vanished. Growth past the mapping is invisible to view().
  [[nodiscard]] std::size_t current_size() const;

  /// True when the file is now smaller than the mapping — view() bytes at
  /// and past current_size() are no longer backed.
  [[nodiscard]] bool shrunk() const { return current_size() < len_; }

  // ByteSource (follower-style polling over the mapping). read_at serves
  // from the mapping while the file still covers it and falls back to
  // pread past the mapped length (the file may have grown since map()).
  SizeResult size() override;
  ReadResult read_at(std::uint64_t offset, char* dst,
                     std::size_t len) override;
  [[nodiscard]] std::string describe() const override;

 private:
  MmapByteSource(const void* addr, std::size_t len, int fd, std::string path);

  const void* addr_ = nullptr;
  std::size_t len_ = 0;
  int fd_ = -1; // kept open for current_size()
  std::string path_;
};

} // namespace fluxtrace::io
