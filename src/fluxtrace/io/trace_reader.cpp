#include "fluxtrace/io/trace_reader.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "fluxtrace/io/compact.hpp"
#include "fluxtrace/io/legacy.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::io {

namespace {

std::uint32_t peek_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(b[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

// LEB128 probe for the FLXZ header, which (unlike FLXT's raw u32s) writes
// its magic and version as varints. Advances `pos` past the value.
std::optional<std::uint64_t> probe_varint(std::string_view b,
                                          std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < b.size() && shift < 64) {
    const auto c = static_cast<std::uint8_t>(b[pos++]);
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

TraceFormat detect(std::string_view bytes) {
  if (bytes.size() >= 8 && peek_u32(bytes, 0) == kTraceMagic) {
    const std::uint32_t version = peek_u32(bytes, 4);
    if (version == kTraceVersion) return TraceFormat::FlxtV1;
    if (version == kTraceVersion2) return TraceFormat::FlxtV2;
    return TraceFormat::Unknown;
  }
  std::size_t pos = 0;
  const auto magic = probe_varint(bytes, pos);
  const auto version = probe_varint(bytes, pos);
  if (magic == kCompactMagic && version == kCompactVersion) {
    return TraceFormat::Flxz;
  }
  return TraceFormat::Unknown;
}

// Self-telemetry (ISSUE 3): decode throughput and format mix.
struct IoMetrics {
  obs::Counter& reads = obs::metrics().counter("io.reads");
  obs::Counter& bytes = obs::metrics().counter("io.bytes_decoded");

  static IoMetrics& get() {
    static IoMetrics m;
    return m;
  }
};

} // namespace

TraceReader::TraceReader(std::string bytes, std::string path)
    : bytes_(std::move(bytes)), path_(std::move(path)),
      format_(detect(bytes_)) {}

TraceData TraceReader::read() const {
  OBS_SPAN("io.read");
  IoMetrics::get().reads.inc();
  IoMetrics::get().bytes.inc(bytes_.size());
  try {
    const std::string_view body = std::string_view(bytes_).substr(
        std::min<std::size_t>(8, bytes_.size()));
    switch (format_) {
      case TraceFormat::FlxtV1: return read_trace_v1_body(body);
      case TraceFormat::FlxtV2: return read_trace_v2_body(body);
      case TraceFormat::Flxz: {
        std::istringstream is(bytes_);
        return read_compact(is);
      }
      case TraceFormat::Unknown: break;
    }
    // Unknown format: reproduce the legacy read_trace() diagnostics.
    if (bytes_.size() >= 8 && peek_u32(bytes_, 0) == kTraceMagic) {
      throw TraceIoError("unsupported trace version " +
                         std::to_string(peek_u32(bytes_, 4)));
    }
    throw TraceIoError("not a fluxtrace file (bad magic)");
  } catch (const TraceIoError& e) {
    if (path_.empty()) throw;
    throw TraceIoError(std::string(e.what()) + ": " + path_);
  }
}

TraceData TraceReader::read_parallel(unsigned n_threads) const {
  unsigned n = n_threads != 0
                   ? n_threads
                   : std::max(1u, std::thread::hardware_concurrency());
  // FLXZ carries decoder state (deltas, per-core runs) through the whole
  // stream, so it cannot be split; Unknown throws the same error either
  // way. Both take the sequential path, as does a one-thread request.
  if (n <= 1 || format_ == TraceFormat::Flxz ||
      format_ == TraceFormat::Unknown) {
    return read();
  }
  OBS_SPAN("io.read_parallel");
  IoMetrics::get().reads.inc();
  IoMetrics::get().bytes.inc(bytes_.size());
  try {
    const std::string_view body = std::string_view(bytes_).substr(8);
    rt::ThreadPool pool(n);
    return format_ == TraceFormat::FlxtV1
               ? read_trace_v1_body_parallel(body, pool)
               : read_trace_v2_body_parallel(body, pool);
  } catch (const TraceIoError& e) {
    if (path_.empty()) throw;
    throw TraceIoError(std::string(e.what()) + ": " + path_);
  }
}

SalvageReport TraceReader::salvage() const {
  OBS_SPAN("io.salvage");
  // v2 recovers chunk by chunk. Unknown bytes get the same scan: they may
  // be a v2 file whose 8-byte header was destroyed, and the chunk-magic
  // resync finds the surviving chunks regardless.
  if (format_ == TraceFormat::FlxtV2 || format_ == TraceFormat::Unknown) {
    return salvage_trace(std::string_view(bytes_));
  }
  // v1 and FLXZ are monolithic streams with no internal checksums: any
  // damage is unlocatable, so recovery is all-or-nothing.
  SalvageReport rep;
  rep.header_ok = true; // the format was recognized
  try {
    rep.data = read();
    rep.eof_ok = true;
    rep.chunks_ok = 1; // the single monolithic section, read in full
  } catch (const TraceIoError&) {
    rep.chunks_corrupt = 1;
    rep.bytes_truncated = bytes_.size();
  }
  return rep;
}

TraceTriage classify_trace(const TraceReader& reader) {
  TraceTriage t;
  t.report = reader.salvage();
  if (t.report.clean()) {
    t.health = TraceHealth::Clean;
    return t;
  }
  const bool any_data = t.report.chunks_ok > 0 ||
                        !t.report.data.markers.empty() ||
                        !t.report.data.samples.empty() ||
                        !t.report.data.wait_edges.empty();
  t.health = any_data ? TraceHealth::Salvaged : TraceHealth::Unrecoverable;
  return t;
}

TraceReader::ReadResult TraceReader::read_or_salvage(
    unsigned n_threads) const {
  ReadResult out;
  try {
    out.data = read_parallel(n_threads);
  } catch (const TraceIoError&) {
    out.data = std::move(salvage().data);
    out.salvaged = true;
  }
  return out;
}

TraceReader open_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return {std::move(buf).str(), path};
}

TraceReader open_trace_bytes(std::string bytes) {
  return {std::move(bytes), std::string{}};
}

} // namespace fluxtrace::io
