#include "fluxtrace/io/trace_reader.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>

#include "fluxtrace/io/compact.hpp"
#include "fluxtrace/io/legacy.hpp"
#include "fluxtrace/io/mmap_source.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::io {

namespace {

std::uint32_t peek_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(b[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

// LEB128 probe for the FLXZ header, which (unlike FLXT's raw u32s) writes
// its magic and version as varints. Advances `pos` past the value.
std::optional<std::uint64_t> probe_varint(std::string_view b,
                                          std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < b.size() && shift < 64) {
    const auto c = static_cast<std::uint8_t>(b[pos++]);
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

TraceFormat detect(std::string_view bytes) {
  if (bytes.size() >= 8 && peek_u32(bytes, 0) == kTraceMagic) {
    const std::uint32_t version = peek_u32(bytes, 4);
    if (version == kTraceVersion) return TraceFormat::FlxtV1;
    if (version == kTraceVersion2) return TraceFormat::FlxtV2;
    if (version == kTraceVersion3) return TraceFormat::FlxtV3;
    return TraceFormat::Unknown;
  }
  std::size_t pos = 0;
  const auto magic = probe_varint(bytes, pos);
  const auto version = probe_varint(bytes, pos);
  if (magic == kCompactMagic && version == kCompactVersion) {
    return TraceFormat::Flxz;
  }
  return TraceFormat::Unknown;
}

// Self-telemetry (ISSUE 3): decode throughput and format mix.
struct IoMetrics {
  obs::Counter& reads = obs::metrics().counter("io.reads");
  obs::Counter& bytes = obs::metrics().counter("io.bytes_decoded");
  obs::Counter& mmap_opens = obs::metrics().counter("io.mmap_opens");
  obs::Counter& pread_opens = obs::metrics().counter("io.pread_opens");

  static IoMetrics& get() {
    static IoMetrics m;
    return m;
  }
};

/// Slurp `path` through pread(2) with transient-fault retries. The
/// injected fault (OpenOptions::read_fault) is consulted before every
/// attempt: Transient costs one attempt, Short halves the request (both
/// exactly as FaultableByteSource treats the follow path).
std::string pread_slurp(const std::string& path, const OpenOptions& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int e = errno;
    ::close(fd);
    throw TraceIoError("cannot stat: " + path + ": " + std::strerror(e));
  }
  std::string buf;
  buf.resize(st.st_size > 0 ? static_cast<std::size_t>(st.st_size) : 0);
  std::size_t at = 0;
  std::uint32_t attempts = 0;
  const std::uint32_t max_attempts = std::max(1u, opts.max_read_attempts);
  while (at < buf.size()) {
    std::size_t want = buf.size() - at;
    if (opts.read_fault) {
      switch (opts.read_fault()) {
        case ReadFault::None: break;
        case ReadFault::Transient:
          if (++attempts >= max_attempts) {
            ::close(fd);
            throw TraceIoError("persistent read fault at offset " +
                               std::to_string(at) + ": " + path);
          }
          continue;
        case ReadFault::Short:
          want = std::max<std::size_t>(1, want / 2);
          break;
      }
    }
    const ssize_t n = ::pread(fd, buf.data() + at, want,
                              static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EIO) {
        if (++attempts >= max_attempts) {
          const int e = errno;
          ::close(fd);
          throw TraceIoError("read failed at offset " + std::to_string(at) +
                             ": " + path + ": " + std::strerror(e));
        }
        continue;
      }
      const int e = errno;
      ::close(fd);
      throw TraceIoError("read failed: " + path + ": " + std::strerror(e));
    }
    if (n == 0) {
      // The file shrank between fstat and here: the image is what we got.
      buf.resize(at);
      break;
    }
    at += static_cast<std::size_t>(n);
    attempts = 0;
  }
  ::close(fd);
  return buf;
}

} // namespace

TraceReader::TraceReader(std::string bytes, std::string path)
    : owned_(std::make_shared<const std::string>(std::move(bytes))),
      view_(*owned_), path_(std::move(path)), format_(detect(view_)) {}

TraceReader::TraceReader(std::shared_ptr<MmapByteSource> mmap,
                         std::string path)
    : mmap_(std::move(mmap)), view_(mmap_->view()), path_(std::move(path)),
      format_(detect(view_)) {}

std::string_view TraceReader::safe_view(bool* did_shrink) const {
  if (did_shrink != nullptr) *did_shrink = false;
  if (mmap_ == nullptr) return view_;
  const std::size_t cur = mmap_->current_size();
  if (cur >= view_.size()) return view_;
  if (did_shrink != nullptr) *did_shrink = true;
  return view_.substr(0, cur);
}

TraceData TraceReader::read() const {
  OBS_SPAN("io.read");
  IoMetrics::get().reads.inc();
  IoMetrics::get().bytes.inc(view_.size());
  try {
    bool shrank = false;
    const std::string_view whole = safe_view(&shrank);
    if (shrank) {
      // A strict read refuses a mapping the file no longer backs: the
      // missing tail is indistinguishable from truncation damage.
      throw TraceIoError("file truncated while mapped (" +
                         std::to_string(whole.size()) + " of " +
                         std::to_string(view_.size()) + " bytes remain)");
    }
    const std::string_view body =
        whole.substr(std::min<std::size_t>(8, whole.size()));
    switch (format_) {
      case TraceFormat::FlxtV1: return read_trace_v1_body(body);
      case TraceFormat::FlxtV2:
      case TraceFormat::FlxtV3: return read_trace_v2_body(body);
      case TraceFormat::Flxz: {
        std::istringstream is{std::string(whole)};
        return read_compact(is);
      }
      case TraceFormat::Unknown: break;
    }
    // Unknown format: reproduce the legacy read_trace() diagnostics.
    if (whole.size() >= 8 && peek_u32(whole, 0) == kTraceMagic) {
      throw TraceIoError("unsupported trace version " +
                         std::to_string(peek_u32(whole, 4)));
    }
    throw TraceIoError("not a fluxtrace file (bad magic)");
  } catch (const TraceIoError& e) {
    if (path_.empty()) throw;
    throw TraceIoError(std::string(e.what()) + ": " + path_);
  }
}

TraceData TraceReader::read_parallel(unsigned n_threads) const {
  unsigned n = n_threads != 0
                   ? n_threads
                   : std::max(1u, std::thread::hardware_concurrency());
  // FLXZ carries decoder state (deltas, per-core runs) through the whole
  // stream, so it cannot be split; Unknown throws the same error either
  // way. Both take the sequential path, as does a one-thread request.
  if (n <= 1 || format_ == TraceFormat::Flxz ||
      format_ == TraceFormat::Unknown) {
    return read();
  }
  OBS_SPAN("io.read_parallel");
  IoMetrics::get().reads.inc();
  IoMetrics::get().bytes.inc(view_.size());
  try {
    bool shrank = false;
    const std::string_view whole = safe_view(&shrank);
    if (shrank) {
      throw TraceIoError("file truncated while mapped (" +
                         std::to_string(whole.size()) + " of " +
                         std::to_string(view_.size()) + " bytes remain)");
    }
    const std::string_view body = whole.substr(8);
    rt::ThreadPool pool(n);
    return format_ == TraceFormat::FlxtV1
               ? read_trace_v1_body_parallel(body, pool)
               : read_trace_v2_body_parallel(body, pool);
  } catch (const TraceIoError& e) {
    if (path_.empty()) throw;
    throw TraceIoError(std::string(e.what()) + ": " + path_);
  }
}

SalvageReport TraceReader::salvage() const {
  OBS_SPAN("io.salvage");
  // Chunked formats recover chunk by chunk. Unknown bytes get the same
  // scan: they may be a chunked file whose 8-byte header was destroyed,
  // and the chunk-magic resync finds the surviving chunks regardless.
  // A mapping the file shrank under is clamped to its still-backed
  // prefix — salvage reports the clamped-off tail as truncated bytes.
  if (is_chunked_format(format_) || format_ == TraceFormat::Unknown) {
    bool shrank = false;
    const std::string_view whole = safe_view(&shrank);
    SalvageReport rep = salvage_trace(whole);
    if (shrank) rep.bytes_truncated += view_.size() - whole.size();
    return rep;
  }
  // v1 and FLXZ are monolithic streams with no internal checksums: any
  // damage is unlocatable, so recovery is all-or-nothing.
  SalvageReport rep;
  rep.header_ok = true; // the format was recognized
  try {
    rep.data = read();
    rep.eof_ok = true;
    rep.chunks_ok = 1; // the single monolithic section, read in full
  } catch (const TraceIoError&) {
    rep.chunks_corrupt = 1;
    rep.bytes_truncated = view_.size();
  }
  return rep;
}

TraceTriage classify_trace(const TraceReader& reader) {
  TraceTriage t;
  t.report = reader.salvage();
  if (t.report.clean()) {
    t.health = TraceHealth::Clean;
    return t;
  }
  const bool any_data = t.report.chunks_ok > 0 ||
                        !t.report.data.markers.empty() ||
                        !t.report.data.samples.empty() ||
                        !t.report.data.wait_edges.empty();
  t.health = any_data ? TraceHealth::Salvaged : TraceHealth::Unrecoverable;
  return t;
}

TraceReader::ReadResult TraceReader::read_or_salvage(
    unsigned n_threads) const {
  ReadResult out;
  try {
    out.data = read_parallel(n_threads);
  } catch (const TraceIoError&) {
    out.data = std::move(salvage().data);
    out.salvaged = true;
  }
  return out;
}

TraceReader open_trace(const std::string& path) {
  return open_trace(path, OpenOptions{});
}

TraceReader open_trace(const std::string& path, const OpenOptions& opts) {
  // A fault hook implies the pread path: a live mapping has no per-read
  // hook to inject through.
  if (!opts.force_pread && !opts.read_fault) {
    if (auto m = MmapByteSource::map(path)) {
      IoMetrics::get().mmap_opens.inc();
      return {std::move(m), path};
    }
    // Unmappable (missing, empty, or mmap-hostile): if the file simply
    // does not exist, pread_slurp produces the errno-carrying throw.
  }
  IoMetrics::get().pread_opens.inc();
  return {pread_slurp(path, opts), path};
}

TraceReader open_trace_bytes(std::string bytes) {
  return {std::move(bytes), std::string{}};
}

} // namespace fluxtrace::io
