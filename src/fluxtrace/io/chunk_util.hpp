// io-internal helpers shared by the two CHNK-framed containers: the v2
// raw chunk layer (chunked.cpp) and the v3 compressed columnar layer
// (v3.cpp). Not installed API — nothing outside src/fluxtrace/io may
// include this.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace fluxtrace::io::detail {

/// CHNK frame header: magic + type + count + size + header/payload CRCs.
inline constexpr std::size_t kChunkHeaderBytes = 21;

/// Hard per-chunk record cap, enforced on every decode of a *compressed*
/// chunk (a raw chunk's count is already pinned by payload_bytes /
/// record size; a compressed chunk's is not — without this cap a forged
/// count with a valid CRC could demand an arbitrarily large allocation).
/// Writers chunk far below this.
inline constexpr std::uint32_t kMaxRecordsPerChunk = 1u << 20;

// --- little-endian append/peek over an in-memory buffer ---------------

inline void app_u8(std::string& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}

inline void app_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) app_u8(b, static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void app_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) app_u8(b, static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint8_t peek_u8(std::string_view b, std::size_t at) {
  return static_cast<std::uint8_t>(b[at]);
}

inline std::uint32_t peek_u32(std::string_view b, std::size_t at) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, b.data() + at, sizeof v);
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               peek_u8(b, at + static_cast<std::size_t>(i)))
           << (8 * i);
    }
    return v;
  }
}

inline std::uint64_t peek_u64(std::string_view b, std::size_t at) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, b.data() + at, sizeof v);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               peek_u8(b, at + static_cast<std::size_t>(i)))
           << (8 * i);
    }
    return v;
  }
}

/// One complete CHNK frame: header (with both CRCs) + payload.
/// Implemented in chunked.cpp.
[[nodiscard]] std::string make_chunk(std::uint8_t type,
                                     std::uint32_t n_records,
                                     const std::string& payload);

} // namespace fluxtrace::io::detail
