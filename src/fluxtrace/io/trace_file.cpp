#include "fluxtrace/io/trace_file.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/legacy.hpp"
#include "fluxtrace/report/csv.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::io {

namespace {

// Explicit little-endian encoding so files are host-independent.
void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(os, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(os, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c == std::char_traits<char>::eof()) {
    throw TraceIoError("unexpected end of trace file");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8(is)) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8(is)) << (8 * i);
  return v;
}

// Buffer-based little-endian peeks for the in-memory body parsers.
std::uint8_t peek_u8(std::string_view b, std::size_t at) {
  return static_cast<std::uint8_t>(b[at]);
}

std::uint32_t peek_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(peek_u8(b, at + static_cast<std::size_t>(i)))
         << (8 * i);
  }
  return v;
}

std::uint64_t peek_u64(std::string_view b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(peek_u8(b, at + static_cast<std::size_t>(i)))
         << (8 * i);
  }
  return v;
}

constexpr std::size_t kV1MarkerBytes = 8 + 8 + 4 + 1;
constexpr std::size_t kV1SampleBytes = 8 + 8 + 4 + sizeof(RegisterFile{}.v);

// Decodes one v1 marker record at `at`; false on an invalid kind byte.
bool peek_marker(std::string_view b, std::size_t at, Marker& m) {
  m.tsc = peek_u64(b, at);
  m.item = peek_u64(b, at + 8);
  m.core = peek_u32(b, at + 16);
  const std::uint8_t kind = peek_u8(b, at + 20);
  if (kind > static_cast<std::uint8_t>(MarkerKind::Leave)) return false;
  m.kind = static_cast<MarkerKind>(kind);
  return true;
}

void peek_sample(std::string_view b, std::size_t at, PebsSample& s) {
  s.tsc = peek_u64(b, at);
  s.ip = peek_u64(b, at + 8);
  s.core = peek_u32(b, at + 16);
  std::size_t r_at = at + 20;
  for (std::uint64_t& r : s.regs.v) {
    r = peek_u64(b, r_at);
    r_at += 8;
  }
}

// Shared header validation for the v1 body parsers: returns the two
// record counts after bounding them and checking the body actually holds
// that many records (same diagnostics as the stream reader).
struct V1Layout {
  std::uint64_t n_markers;
  std::uint64_t n_samples;
  std::size_t markers_at;
  std::size_t samples_at;
};

V1Layout v1_layout(std::string_view body) {
  if (body.size() < 16) throw TraceIoError("unexpected end of trace file");
  V1Layout l{};
  l.n_markers = peek_u64(body, 0);
  l.n_samples = peek_u64(body, 8);
  constexpr std::uint64_t kMaxRecords = 1ull << 32;
  if (l.n_markers > kMaxRecords || l.n_samples > kMaxRecords) {
    throw TraceIoError("corrupt trace header (record count too large)");
  }
  l.markers_at = 16;
  l.samples_at = 16 + static_cast<std::size_t>(l.n_markers) * kV1MarkerBytes;
  const std::uint64_t needed = 16 + l.n_markers * kV1MarkerBytes +
                               l.n_samples * kV1SampleBytes;
  // Trailing bytes past the counted records are ignored, like the stream
  // reader (which simply never consumes them).
  if (body.size() < needed) throw TraceIoError("unexpected end of trace file");
  return l;
}

// A failed stream write would otherwise leave a silently truncated file;
// report *which* section failed, with the errno text when the OS has one
// (matching the reader's "cannot open: path: reason" convention — the
// save_* wrappers append the path).
void check_write(std::ostream& os, const char* section) {
  if (os.good()) return;
  std::string msg = std::string("write failed (") + section + ")";
  if (errno != 0) msg += std::string(": ") + std::strerror(errno);
  throw TraceIoError(msg);
}

} // namespace

void write_trace(std::ostream& os, const TraceData& data) {
  errno = 0;
  put_u32(os, kTraceMagic);
  put_u32(os, kTraceVersion);
  put_u64(os, data.markers.size());
  put_u64(os, data.samples.size());
  check_write(os, "header");

  for (const Marker& m : data.markers) {
    put_u64(os, m.tsc);
    put_u64(os, m.item);
    put_u32(os, m.core);
    put_u8(os, static_cast<std::uint8_t>(m.kind));
  }
  check_write(os, "markers");
  for (const PebsSample& s : data.samples) {
    put_u64(os, s.tsc);
    put_u64(os, s.ip);
    put_u32(os, s.core);
    for (const std::uint64_t r : s.regs.v) put_u64(os, r);
  }
  check_write(os, "samples");
  os.flush();
  check_write(os, "flush");
}

TraceData read_trace(std::istream& is) {
  if (get_u32(is) != kTraceMagic) {
    throw TraceIoError("not a fluxtrace file (bad magic)");
  }
  const std::uint32_t version = get_u32(is);
  if (version == kTraceVersion2) return read_trace_v2_body(is);
  if (version != kTraceVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  const std::uint64_t n_markers = get_u64(is);
  const std::uint64_t n_samples = get_u64(is);

  // Sanity bound: reject sizes that cannot fit in the stream (protects
  // against allocating petabytes on a corrupt header).
  constexpr std::uint64_t kMaxRecords = 1ull << 32;
  if (n_markers > kMaxRecords || n_samples > kMaxRecords) {
    throw TraceIoError("corrupt trace header (record count too large)");
  }

  // Grow past this incrementally: a header count is untrusted input, so a
  // single reserve() of the full claimed size would let a 20-byte corrupt
  // file allocate gigabytes before the parse loop hits EOF.
  constexpr std::uint64_t kMaxReserve = 1ull << 16;
  TraceData data;
  data.markers.reserve(std::min(n_markers, kMaxReserve));
  for (std::uint64_t i = 0; i < n_markers; ++i) {
    Marker m;
    m.tsc = get_u64(is);
    m.item = get_u64(is);
    m.core = get_u32(is);
    const std::uint8_t kind = get_u8(is);
    if (kind > static_cast<std::uint8_t>(MarkerKind::Leave)) {
      throw TraceIoError("corrupt marker record (bad kind)");
    }
    m.kind = static_cast<MarkerKind>(kind);
    data.markers.push_back(m);
  }
  data.samples.reserve(std::min(n_samples, kMaxReserve));
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = get_u64(is);
    s.ip = get_u64(is);
    s.core = get_u32(is);
    for (std::uint64_t& r : s.regs.v) r = get_u64(is);
    data.samples.push_back(s);
  }
  return data;
}

TraceData read_trace_v1_body(std::string_view body) {
  const V1Layout l = v1_layout(body);
  TraceData data;
  // Unlike the stream reader, the layout check above already proved the
  // buffer holds every counted record, so full-size allocation is safe —
  // a corrupt header cannot trigger an allocation bomb here.
  data.markers.reserve(static_cast<std::size_t>(l.n_markers));
  data.samples.reserve(static_cast<std::size_t>(l.n_samples));
  for (std::uint64_t i = 0; i < l.n_markers; ++i) {
    Marker m;
    if (!peek_marker(body,
                     l.markers_at + static_cast<std::size_t>(i) * kV1MarkerBytes,
                     m)) {
      throw TraceIoError("corrupt marker record (bad kind)");
    }
    data.markers.push_back(m);
  }
  for (std::uint64_t i = 0; i < l.n_samples; ++i) {
    PebsSample s;
    peek_sample(body,
                l.samples_at + static_cast<std::size_t>(i) * kV1SampleBytes, s);
    data.samples.push_back(s);
  }
  return data;
}

TraceData read_trace_v1_body_parallel(std::string_view body,
                                      rt::ThreadPool& pool) {
  const V1Layout l = v1_layout(body);
  TraceData data;
  data.markers.resize(static_cast<std::size_t>(l.n_markers));
  data.samples.resize(static_cast<std::size_t>(l.n_samples));

  // Fixed-count record blocks; each task fills a disjoint slice of the
  // pre-sized output vectors, so no synchronization is needed beyond the
  // shared bad-record flag.
  constexpr std::size_t kBlockRecords = 1u << 16;
  const std::size_t m_blocks =
      (data.markers.size() + kBlockRecords - 1) / kBlockRecords;
  const std::size_t s_blocks =
      (data.samples.size() + kBlockRecords - 1) / kBlockRecords;
  std::atomic<bool> bad_kind{false};
  pool.parallel_for(m_blocks + s_blocks, [&](std::size_t b) {
    if (b < m_blocks) {
      const std::size_t begin = b * kBlockRecords;
      const std::size_t end =
          std::min(begin + kBlockRecords, data.markers.size());
      for (std::size_t i = begin; i < end; ++i) {
        if (!peek_marker(body, l.markers_at + i * kV1MarkerBytes,
                         data.markers[i])) {
          bad_kind.store(true, std::memory_order_relaxed);
          return;
        }
      }
    } else {
      const std::size_t begin = (b - m_blocks) * kBlockRecords;
      const std::size_t end =
          std::min(begin + kBlockRecords, data.samples.size());
      for (std::size_t i = begin; i < end; ++i) {
        peek_sample(body, l.samples_at + i * kV1SampleBytes, data.samples[i]);
      }
    }
  });
  if (bad_kind.load()) throw TraceIoError("corrupt marker record (bad kind)");
  return data;
}

void save_trace(const std::string& path, const TraceData& data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw TraceIoError("cannot open for writing: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    write_trace(os, data);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
  os.close();
  if (!os) {
    throw TraceIoError("write failed (close): " + path + ": " +
                       std::strerror(errno));
  }
}

TraceData load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    return read_trace(is);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
}

void write_markers_csv(std::ostream& os, const std::vector<Marker>& markers) {
  report::CsvWriter w(os);
  w.header({"tsc", "item", "core", "kind"});
  for (const Marker& m : markers) {
    w.row({std::to_string(m.tsc), std::to_string(m.item),
           std::to_string(m.core),
           m.kind == MarkerKind::Enter ? "enter" : "leave"});
  }
}

void write_samples_csv(std::ostream& os, const SampleVec& samples) {
  report::CsvWriter w(os);
  w.header({"tsc", "ip", "core", "r13"});
  for (const PebsSample& s : samples) {
    w.row({std::to_string(s.tsc), std::to_string(s.ip),
           std::to_string(s.core), std::to_string(s.regs.get(Reg::R13))});
  }
}

} // namespace fluxtrace::io
