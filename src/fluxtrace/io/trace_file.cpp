#include "fluxtrace/io/trace_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/report/csv.hpp"

namespace fluxtrace::io {

namespace {

// Explicit little-endian encoding so files are host-independent.
void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void put_u32(std::ostream& os, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(os, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(os, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c == std::char_traits<char>::eof()) {
    throw TraceIoError("unexpected end of trace file");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8(is)) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8(is)) << (8 * i);
  return v;
}

} // namespace

void write_trace(std::ostream& os, const TraceData& data) {
  put_u32(os, kTraceMagic);
  put_u32(os, kTraceVersion);
  put_u64(os, data.markers.size());
  put_u64(os, data.samples.size());

  for (const Marker& m : data.markers) {
    put_u64(os, m.tsc);
    put_u64(os, m.item);
    put_u32(os, m.core);
    put_u8(os, static_cast<std::uint8_t>(m.kind));
  }
  for (const PebsSample& s : data.samples) {
    put_u64(os, s.tsc);
    put_u64(os, s.ip);
    put_u32(os, s.core);
    for (const std::uint64_t r : s.regs.v) put_u64(os, r);
  }
  if (!os.good()) throw TraceIoError("stream failure while writing trace");
}

TraceData read_trace(std::istream& is) {
  if (get_u32(is) != kTraceMagic) {
    throw TraceIoError("not a fluxtrace file (bad magic)");
  }
  const std::uint32_t version = get_u32(is);
  if (version == kTraceVersion2) return read_trace_v2_body(is);
  if (version != kTraceVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  const std::uint64_t n_markers = get_u64(is);
  const std::uint64_t n_samples = get_u64(is);

  // Sanity bound: reject sizes that cannot fit in the stream (protects
  // against allocating petabytes on a corrupt header).
  constexpr std::uint64_t kMaxRecords = 1ull << 32;
  if (n_markers > kMaxRecords || n_samples > kMaxRecords) {
    throw TraceIoError("corrupt trace header (record count too large)");
  }

  // Grow past this incrementally: a header count is untrusted input, so a
  // single reserve() of the full claimed size would let a 20-byte corrupt
  // file allocate gigabytes before the parse loop hits EOF.
  constexpr std::uint64_t kMaxReserve = 1ull << 16;
  TraceData data;
  data.markers.reserve(std::min(n_markers, kMaxReserve));
  for (std::uint64_t i = 0; i < n_markers; ++i) {
    Marker m;
    m.tsc = get_u64(is);
    m.item = get_u64(is);
    m.core = get_u32(is);
    const std::uint8_t kind = get_u8(is);
    if (kind > static_cast<std::uint8_t>(MarkerKind::Leave)) {
      throw TraceIoError("corrupt marker record (bad kind)");
    }
    m.kind = static_cast<MarkerKind>(kind);
    data.markers.push_back(m);
  }
  data.samples.reserve(std::min(n_samples, kMaxReserve));
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    PebsSample s;
    s.tsc = get_u64(is);
    s.ip = get_u64(is);
    s.core = get_u32(is);
    for (std::uint64_t& r : s.regs.v) r = get_u64(is);
    data.samples.push_back(s);
  }
  return data;
}

void save_trace(const std::string& path, const TraceData& data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw TraceIoError("cannot open for writing: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    write_trace(os, data);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
  os.close();
  if (!os) {
    throw TraceIoError("write failed (close): " + path + ": " +
                       std::strerror(errno));
  }
}

TraceData load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    return read_trace(is);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
}

void write_markers_csv(std::ostream& os, const std::vector<Marker>& markers) {
  report::CsvWriter w(os);
  w.header({"tsc", "item", "core", "kind"});
  for (const Marker& m : markers) {
    w.row({std::to_string(m.tsc), std::to_string(m.item),
           std::to_string(m.core),
           m.kind == MarkerKind::Enter ? "enter" : "leave"});
  }
}

void write_samples_csv(std::ostream& os, const SampleVec& samples) {
  report::CsvWriter w(os);
  w.header({"tsc", "ip", "core", "r13"});
  for (const PebsSample& s : samples) {
    w.row({std::to_string(s.tsc), std::to_string(s.ip),
           std::to_string(s.core), std::to_string(s.regs.get(Reg::R13))});
  }
}

} // namespace fluxtrace::io
