// io-internal: the legacy single-format readers.
//
// These predate io::TraceReader (io/trace_reader.hpp), which autodetects
// v1 / chunked v2 / compact FLXZ and adds parallel decode and salvage.
// They used to sit [[deprecated]] in the public headers; nothing outside
// io/ (and the io tests, which exercise each container format directly)
// calls them anymore, so they now live here instead of being advertised.
// New code should open traces via io::open_trace().
#pragma once

#include <iosfwd>
#include <string>

#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {

/// Parse the monolithic v1 container (dispatches to the v2 body parser
/// when the version field says so). Throws TraceIoError on bad magic,
/// version mismatch, truncation, or stream failure.
[[nodiscard]] TraceData read_trace(std::istream& is);
[[nodiscard]] TraceData load_trace(const std::string& path);

/// Parse the compact FLXZ container; throws TraceIoError on malformed
/// input.
[[nodiscard]] TraceData read_compact(std::istream& is);
[[nodiscard]] TraceData load_compact(const std::string& path);

} // namespace fluxtrace::io
