#include "fluxtrace/io/chunked.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/io/chunk_util.hpp"
#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::io {

namespace {

using detail::app_u8;
using detail::app_u32;
using detail::app_u64;
using detail::kChunkHeaderBytes;
using detail::make_chunk;
using detail::peek_u8;
using detail::peek_u32;
using detail::peek_u64;

// Self-telemetry (ISSUE 3): parallel decode effectiveness — chunks that
// actually went wide vs. times we had to drop back to the strict
// sequential parser.
struct V2Metrics {
  obs::Counter& chunks = obs::metrics().counter("io.v2.chunks_decoded");
  obs::Counter& fallbacks = obs::metrics().counter("io.v2.parallel_fallbacks");

  static V2Metrics& get() {
    static V2Metrics m;
    return m;
  }
};

constexpr std::uint8_t kChunkMarkers = 0;
constexpr std::uint8_t kChunkSamples = 1;
constexpr std::uint8_t kChunkEof = 2;
constexpr std::uint8_t kChunkWaitEdges = 3;

constexpr std::size_t kMarkerBytes = 8 + 8 + 4 + 1;
constexpr std::size_t kSampleBytes =
    8 + 8 + 4 + sizeof(RegisterFile{}.v); // tsc + ip + core + GPRs
constexpr std::size_t kWaitEdgeBytes =
    8 + 8 + 8 + 4 + 4 + 4 + 1; // enter+leave+item+waiter+holder+resource+cause

// --- record encode/decode (v1 field layout) ---------------------------

void encode_marker(std::string& b, const Marker& m) {
  app_u64(b, m.tsc);
  app_u64(b, m.item);
  app_u32(b, m.core);
  app_u8(b, static_cast<std::uint8_t>(m.kind));
}

void encode_sample(std::string& b, const PebsSample& s) {
  app_u64(b, s.tsc);
  app_u64(b, s.ip);
  app_u32(b, s.core);
  for (const std::uint64_t r : s.regs.v) app_u64(b, r);
}

void encode_wait_edge(std::string& b, const WaitEdge& e) {
  app_u64(b, e.enter);
  app_u64(b, e.leave);
  app_u64(b, e.item);
  app_u32(b, e.waiter_core);
  app_u32(b, e.holder_core);
  app_u32(b, e.resource);
  app_u8(b, static_cast<std::uint8_t>(e.cause));
}

bool decode_markers(std::string_view payload, std::uint32_t n,
                    std::vector<Marker>& out) {
  if (payload.size() != static_cast<std::size_t>(n) * kMarkerBytes) return false;
  out.reserve(out.size() + n);
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Marker m;
    m.tsc = peek_u64(payload, at);
    m.item = peek_u64(payload, at + 8);
    m.core = peek_u32(payload, at + 16);
    const std::uint8_t kind = peek_u8(payload, at + 20);
    if (kind > static_cast<std::uint8_t>(MarkerKind::Leave)) return false;
    m.kind = static_cast<MarkerKind>(kind);
    out.push_back(m);
    at += kMarkerBytes;
  }
  return true;
}

bool decode_samples(std::string_view payload, std::uint32_t n,
                    SampleVec& out) {
  if (payload.size() != static_cast<std::size_t>(n) * kSampleBytes) return false;
  out.reserve(out.size() + n);
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    PebsSample s;
    s.tsc = peek_u64(payload, at);
    s.ip = peek_u64(payload, at + 8);
    s.core = peek_u32(payload, at + 16);
    std::size_t r_at = at + 20;
    for (std::uint64_t& r : s.regs.v) {
      r = peek_u64(payload, r_at);
      r_at += 8;
    }
    out.push_back(s);
    at += kSampleBytes;
  }
  return true;
}

bool decode_wait_edges(std::string_view payload, std::uint32_t n,
                       std::vector<WaitEdge>& out) {
  if (payload.size() != static_cast<std::size_t>(n) * kWaitEdgeBytes) {
    return false;
  }
  out.reserve(out.size() + n);
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    WaitEdge e;
    e.enter = peek_u64(payload, at);
    e.leave = peek_u64(payload, at + 8);
    e.item = peek_u64(payload, at + 16);
    e.waiter_core = peek_u32(payload, at + 24);
    e.holder_core = peek_u32(payload, at + 28);
    e.resource = peek_u32(payload, at + 32);
    const std::uint8_t cause = peek_u8(payload, at + 36);
    if (cause >= kNumWaitCauses) return false;
    e.cause = static_cast<WaitCause>(cause);
    out.push_back(e);
    at += kWaitEdgeBytes;
  }
  return true;
}

void write_chunk(std::ostream& os, std::uint8_t type, std::uint32_t n_records,
                 const std::string& payload) {
  const std::string chunk = make_chunk(type, n_records, payload);
  os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
}

std::string read_rest(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

} // namespace

std::string detail::make_chunk(std::uint8_t type, std::uint32_t n_records,
                               const std::string& payload) {
  std::string out;
  out.reserve(kChunkHeaderBytes + payload.size());
  app_u32(out, kChunkMagic);
  app_u8(out, type);
  app_u32(out, n_records);
  app_u32(out, static_cast<std::uint32_t>(payload.size()));
  app_u32(out, crc32(out.data(), out.size()));
  app_u32(out, crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  // IEEE 802.3 reflected polynomial, slice-by-16: sixteen table lookups
  // per 16-byte step instead of one per byte. Same values as the classic
  // byte-at-a-time loop (table[0] *is* that table), roughly 2x the
  // slice-by-8 throughput on wide cores because the two 8-byte halves
  // have no data dependency between their lookups — this runs over every
  // payload byte of every chunk, so it dominates cold-open time on
  // multi-hundred-MB traces.
  static const std::array<std::array<std::uint32_t, 256>, 16> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 16> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 16; ++s) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 16) {
    std::uint64_t w1, w2;
    std::memcpy(&w1, p, 8);
    std::memcpy(&w2, p + 8, 8);
    if constexpr (std::endian::native == std::endian::big) {
      w1 = __builtin_bswap64(w1);
      w2 = __builtin_bswap64(w2);
    }
    w1 ^= crc;
    crc = tables[15][w1 & 0xffu] ^ tables[14][(w1 >> 8) & 0xffu] ^
          tables[13][(w1 >> 16) & 0xffu] ^ tables[12][(w1 >> 24) & 0xffu] ^
          tables[11][(w1 >> 32) & 0xffu] ^ tables[10][(w1 >> 40) & 0xffu] ^
          tables[9][(w1 >> 48) & 0xffu] ^ tables[8][(w1 >> 56) & 0xffu] ^
          tables[7][w2 & 0xffu] ^ tables[6][(w2 >> 8) & 0xffu] ^
          tables[5][(w2 >> 16) & 0xffu] ^ tables[4][(w2 >> 24) & 0xffu] ^
          tables[3][(w2 >> 32) & 0xffu] ^ tables[2][(w2 >> 40) & 0xffu] ^
          tables[1][(w2 >> 48) & 0xffu] ^ tables[0][(w2 >> 56) & 0xffu];
    p += 16;
    len -= 16;
  }
  while (len-- > 0) {
    crc = tables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string encode_v2_file_header() {
  std::string header;
  app_u32(header, kTraceMagic);
  app_u32(header, kTraceVersion2);
  return header;
}

std::string encode_marker_chunk(const Marker* ms, std::size_t n) {
  std::string payload;
  payload.reserve(n * kMarkerBytes);
  for (std::size_t i = 0; i < n; ++i) encode_marker(payload, ms[i]);
  return make_chunk(kChunkMarkers, static_cast<std::uint32_t>(n), payload);
}

std::string encode_sample_chunk(const PebsSample* ss, std::size_t n) {
  std::string payload;
  payload.reserve(n * kSampleBytes);
  for (std::size_t i = 0; i < n; ++i) encode_sample(payload, ss[i]);
  return make_chunk(kChunkSamples, static_cast<std::uint32_t>(n), payload);
}

std::string encode_wait_chunk(const WaitEdge* es, std::size_t n) {
  std::string payload;
  payload.reserve(n * kWaitEdgeBytes);
  for (std::size_t i = 0; i < n; ++i) encode_wait_edge(payload, es[i]);
  return make_chunk(kChunkWaitEdges, static_cast<std::uint32_t>(n), payload);
}

std::string encode_eof_chunk() {
  return make_chunk(kChunkEof, 0, std::string{});
}

void write_trace_v2(std::ostream& os, const TraceData& data,
                    std::size_t records_per_chunk) {
  if (records_per_chunk == 0) records_per_chunk = 1;
  // As in write_trace: surface the failing section with the errno text
  // instead of leaving a silently truncated file (save_trace_v2 appends
  // the path).
  const auto check = [&os](const char* section) {
    if (os.good()) return;
    std::string msg = std::string("write failed (") + section + ")";
    if (errno != 0) msg += std::string(": ") + std::strerror(errno);
    throw TraceIoError(msg);
  };
  errno = 0;
  std::string header;
  app_u32(header, kTraceMagic);
  app_u32(header, kTraceVersion2);
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  check("header");

  std::string payload;
  for (std::size_t at = 0; at < data.markers.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.markers.size() - at);
    payload.clear();
    for (std::size_t i = 0; i < n; ++i) {
      encode_marker(payload, data.markers[at + i]);
    }
    write_chunk(os, kChunkMarkers, static_cast<std::uint32_t>(n), payload);
  }
  check("marker chunks");
  for (std::size_t at = 0; at < data.samples.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.samples.size() - at);
    payload.clear();
    for (std::size_t i = 0; i < n; ++i) {
      encode_sample(payload, data.samples[at + i]);
    }
    write_chunk(os, kChunkSamples, static_cast<std::uint32_t>(n), payload);
  }
  check("sample chunks");
  for (std::size_t at = 0; at < data.wait_edges.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.wait_edges.size() - at);
    payload.clear();
    for (std::size_t i = 0; i < n; ++i) {
      encode_wait_edge(payload, data.wait_edges[at + i]);
    }
    write_chunk(os, kChunkWaitEdges, static_cast<std::uint32_t>(n), payload);
  }
  check("wait-edge chunks");
  // Torn-write detector: a crash cutting the file at an exact chunk
  // boundary would otherwise look like a complete shorter file.
  write_chunk(os, kChunkEof, 0, std::string{});
  os.flush();
  check("eof chunk");
}

SalvageReport salvage_trace(std::istream& is) {
  return salvage_trace(std::string_view(read_rest(is)));
}

SalvageReport salvage_trace(std::string_view buf) {
  SalvageReport rep;

  // File header: 8 bytes of magic + version. Versions 2 and 3 are one
  // chunk family (v3.hpp), so salvage accepts either. A damaged header
  // does not stop salvage — chunks are self-delimiting — but it is
  // reported.
  std::size_t pos = 0;
  if (buf.size() >= 8 && peek_u32(buf, 0) == kTraceMagic &&
      (peek_u32(buf, 4) == kTraceVersion2 ||
       peek_u32(buf, 4) == kTraceVersion3)) {
    rep.header_ok = true;
    pos = 8;
  }

  while (pos < buf.size()) {
    const std::size_t remaining = buf.size() - pos;
    if (remaining < kChunkHeaderBytes) {
      rep.bytes_truncated += remaining; // torn mid-header
      break;
    }
    const bool magic_ok = peek_u32(buf, pos) == kChunkMagic;
    const std::uint32_t header_crc = peek_u32(buf, pos + 13);
    const bool header_ok =
        magic_ok && header_crc == crc32(buf.data() + pos, 13);
    if (!header_ok) {
      // Damaged header: resynchronize at the next chunk magic. A false
      // positive inside payload bytes fails its own header CRC and the
      // scan simply continues.
      const char magic_bytes[4] = {'C', 'H', 'N', 'K'};
      const std::size_t next = buf.find(magic_bytes, pos + 1, 4);
      ++rep.chunks_resynced;
      if (next == std::string_view::npos) {
        rep.bytes_truncated += remaining;
        break;
      }
      rep.bytes_skipped += next - pos;
      pos = next;
      continue;
    }

    const std::uint8_t type = peek_u8(buf, pos + 4);
    const std::uint32_t n_records = peek_u32(buf, pos + 5);
    const std::uint32_t payload_bytes = peek_u32(buf, pos + 9);
    const std::uint32_t payload_crc = peek_u32(buf, pos + 17);
    if (remaining - kChunkHeaderBytes < payload_bytes) {
      rep.bytes_truncated += remaining; // torn mid-payload
      break;
    }
    const std::string_view payload =
        buf.substr(pos + kChunkHeaderBytes, payload_bytes);
    const std::size_t chunk_total = kChunkHeaderBytes + payload_bytes;
    bool ok = payload_crc == crc32(payload.data(), payload.size());
    if (ok && type == kChunkEof && n_records == 0 && payload_bytes == 0) {
      rep.eof_ok = true;
      pos += chunk_total;
      continue;
    }
    if (ok) {
      if (type == kChunkMarkers) {
        ok = decode_markers(payload, n_records, rep.data.markers);
      } else if (type == kChunkSamples) {
        ok = decode_samples(payload, n_records, rep.data.samples);
      } else if (type == kChunkWaitEdges) {
        ok = decode_wait_edges(payload, n_records, rep.data.wait_edges);
      } else if (is_compressed_chunk_type(type)) {
        ok = decode_compressed_chunk(type, payload, n_records, rep.data);
      } else {
        ok = false; // unknown chunk type from a future writer: skip
      }
    }
    if (ok) {
      ++rep.chunks_ok;
    } else {
      ++rep.chunks_corrupt;
      rep.bytes_skipped += chunk_total;
    }
    pos += chunk_total;
  }
  return rep;
}

SalvageReport salvage_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  return salvage_trace(is);
}

TraceData read_trace_v2_body(std::istream& is) {
  return read_trace_v2_body(std::string_view(read_rest(is)));
}

TraceData read_trace_v2_body(std::string_view body) {
  SalvageReport rep = salvage_trace(body);
  rep.header_ok = true; // read_trace() already consumed and checked it
  if (!rep.clean()) {
    std::string why = std::to_string(rep.chunks_corrupt) +
                      " corrupt chunks, " +
                      std::to_string(rep.bytes_truncated) + " truncated bytes";
    if (!rep.eof_ok) why += ", missing end-of-file sentinel (torn write)";
    throw TraceIoError(
        "damaged v2 trace (" + why +
        "); use salvage_trace()/flxt_recover to recover " +
        std::to_string(rep.chunks_ok) + " intact chunks");
  }
  return std::move(rep.data);
}

std::vector<V2ChunkRef> index_trace_v2(std::string_view file) {
  if (file.size() < 8 || peek_u32(file, 0) != kTraceMagic ||
      (peek_u32(file, 4) != kTraceVersion2 &&
       peek_u32(file, 4) != kTraceVersion3)) {
    throw TraceIoError("not a chunked trace (bad file header)");
  }
  std::vector<V2ChunkRef> out;
  std::size_t pos = 8;
  bool saw_eof = false;
  while (pos < file.size()) {
    if (saw_eof) throw TraceIoError("data past the v2 eof sentinel");
    if (file.size() - pos < kChunkHeaderBytes) {
      throw TraceIoError("truncated v2 chunk header");
    }
    if (peek_u32(file, pos) != kChunkMagic ||
        peek_u32(file, pos + 13) != crc32(file.data() + pos, 13)) {
      throw TraceIoError("damaged v2 chunk header");
    }
    const std::uint8_t type = peek_u8(file, pos + 4);
    const std::uint32_t n_records = peek_u32(file, pos + 5);
    const std::uint32_t payload_bytes = peek_u32(file, pos + 9);
    if (file.size() - pos - kChunkHeaderBytes < payload_bytes) {
      throw TraceIoError("truncated v2 chunk payload");
    }
    if (type == kChunkEof) {
      if (n_records != 0 || payload_bytes != 0) {
        throw TraceIoError("malformed v2 eof sentinel");
      }
      saw_eof = true;
    } else if (type == kChunkMarkers || type == kChunkSamples ||
               type == kChunkWaitEdges || is_compressed_chunk_type(type)) {
      out.push_back(V2ChunkRef{pos, type, n_records, payload_bytes});
    } else {
      throw TraceIoError("unknown v2 chunk type");
    }
    pos += kChunkHeaderBytes + payload_bytes;
  }
  if (!saw_eof) {
    throw TraceIoError("missing v2 end-of-file sentinel (torn write)");
  }
  return out;
}

void decode_trace_v2_chunk(std::string_view file, const V2ChunkRef& ref,
                           TraceData& out) {
  if (ref.offset + kChunkHeaderBytes > file.size() ||
      file.size() - ref.offset - kChunkHeaderBytes < ref.payload_bytes) {
    throw TraceIoError("chunk ref outside the file image");
  }
  const std::string_view payload =
      file.substr(ref.offset + kChunkHeaderBytes, ref.payload_bytes);
  if (peek_u32(file, ref.offset + 17) !=
      crc32(payload.data(), payload.size())) {
    throw TraceIoError("v2 chunk payload CRC mismatch");
  }
  bool ok = false;
  if (ref.type == kChunkMarkers) {
    ok = decode_markers(payload, ref.n_records, out.markers);
  } else if (ref.type == kChunkSamples) {
    ok = decode_samples(payload, ref.n_records, out.samples);
  } else if (ref.type == kChunkWaitEdges) {
    ok = decode_wait_edges(payload, ref.n_records, out.wait_edges);
  } else if (is_compressed_chunk_type(ref.type)) {
    ok = decode_compressed_chunk(ref.type, payload, ref.n_records, out);
  }
  if (!ok) throw TraceIoError("malformed v2 chunk records");
}

void decode_trace_v2_samples_columnar(std::string_view file,
                                      const V2ChunkRef& ref,
                                      const SampleColumnSink& sink) {
  if (ref.type != kChunkSamples) {
    throw TraceIoError("columnar decode on a non-sample chunk");
  }
  if (ref.offset + kChunkHeaderBytes > file.size() ||
      file.size() - ref.offset - kChunkHeaderBytes < ref.payload_bytes) {
    throw TraceIoError("chunk ref outside the file image");
  }
  const std::string_view payload =
      file.substr(ref.offset + kChunkHeaderBytes, ref.payload_bytes);
  if (peek_u32(file, ref.offset + 17) !=
      crc32(payload.data(), payload.size())) {
    throw TraceIoError("v2 chunk payload CRC mismatch");
  }
  const std::uint32_t n = ref.n_records;
  if (payload.size() != static_cast<std::size_t>(n) * kSampleBytes ||
      sink.reg_index >= kNumRegs) {
    throw TraceIoError("malformed v2 chunk records");
  }
  // Geometric growth, never an exact-fit reserve: reserve(size + n) per
  // chunk would reallocate (and copy the whole accumulated column) on
  // every chunk of a multi-chunk decode — O(chunks * rows) memcpy that
  // once dominated the cold-open profile. Callers that know the total
  // row count up front should pre-reserve it; this only backstops.
  const auto grow = [](std::vector<std::int64_t>& v, std::size_t add) {
    const std::size_t need = v.size() + add;
    if (v.capacity() < need) v.reserve(std::max(need, v.capacity() * 2));
    const std::size_t base = v.size();
    v.resize(need);
    return v.data() + base;
  };
  std::int64_t* tsc_out = grow(*sink.tsc, n);
  std::int64_t* ip_out = grow(*sink.ip, n);
  std::int64_t* core_out = grow(*sink.core, n);
  std::int64_t* reg_out = sink.reg != nullptr ? grow(*sink.reg, n) : nullptr;
  const std::size_t reg_off = 20 + std::size_t{sink.reg_index} * 8;
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    tsc_out[i] = static_cast<std::int64_t>(peek_u64(payload, at));
    ip_out[i] = static_cast<std::int64_t>(peek_u64(payload, at + 8));
    core_out[i] = static_cast<std::int64_t>(peek_u32(payload, at + 16));
    if (reg_out != nullptr) {
      reg_out[i] = static_cast<std::int64_t>(peek_u64(payload, at + reg_off));
    }
    at += kSampleBytes;
  }
}

void decode_trace_v2_samples_slice(std::string_view file,
                                   const V2ChunkRef& ref,
                                   const SampleColumnSlice& out) {
  if (ref.type != kChunkSamples) {
    throw TraceIoError("columnar decode on a non-sample chunk");
  }
  if (ref.offset + kChunkHeaderBytes > file.size() ||
      file.size() - ref.offset - kChunkHeaderBytes < ref.payload_bytes) {
    throw TraceIoError("chunk ref outside the file image");
  }
  const std::string_view payload =
      file.substr(ref.offset + kChunkHeaderBytes, ref.payload_bytes);
  if (peek_u32(file, ref.offset + 17) !=
      crc32(payload.data(), payload.size())) {
    throw TraceIoError("v2 chunk payload CRC mismatch");
  }
  const std::uint32_t n = ref.n_records;
  if (payload.size() != static_cast<std::size_t>(n) * kSampleBytes ||
      out.reg_index >= kNumRegs) {
    throw TraceIoError("malformed v2 chunk records");
  }
  const std::size_t reg_off = 20 + std::size_t{out.reg_index} * 8;
  std::size_t at = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.tsc[i] = static_cast<std::int64_t>(peek_u64(payload, at));
    out.ip[i] = static_cast<std::int64_t>(peek_u64(payload, at + 8));
    out.core[i] = static_cast<std::int64_t>(peek_u32(payload, at + 16));
    if (out.reg != nullptr) {
      out.reg[i] = static_cast<std::int64_t>(peek_u64(payload, at + reg_off));
    }
    at += kSampleBytes;
  }
}

TraceData read_trace_v2_body_parallel(std::string_view body,
                                      rt::ThreadPool& pool) {
  // Index pass: walk the chunk headers sequentially (header CRCs are 13
  // bytes each — negligible next to payload work) and record where every
  // payload lives. Any irregularity whatsoever — bad magic, bad header
  // CRC, truncation, unknown chunk type, missing eof sentinel — drops to
  // the sequential strict parser so damaged files produce byte-identical
  // diagnostics either way.
  struct ChunkRef {
    std::uint8_t type;
    std::uint32_t n_records;
    std::size_t payload_at;
    std::uint32_t payload_bytes;
    std::uint32_t payload_crc;
  };
  std::vector<ChunkRef> chunks;
  bool eof_seen = false;
  bool irregular = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t remaining = body.size() - pos;
    if (remaining < kChunkHeaderBytes) {
      irregular = true;
      break;
    }
    if (peek_u32(body, pos) != kChunkMagic ||
        peek_u32(body, pos + 13) != crc32(body.data() + pos, 13)) {
      irregular = true;
      break;
    }
    const std::uint8_t type = peek_u8(body, pos + 4);
    const std::uint32_t n_records = peek_u32(body, pos + 5);
    const std::uint32_t payload_bytes = peek_u32(body, pos + 9);
    const std::uint32_t payload_crc = peek_u32(body, pos + 17);
    if (remaining - kChunkHeaderBytes < payload_bytes) {
      irregular = true; // torn mid-payload
      break;
    }
    if (type == kChunkEof && n_records == 0 && payload_bytes == 0 &&
        payload_crc == crc32(body.data(), 0)) {
      eof_seen = true;
    } else if (type == kChunkMarkers || type == kChunkSamples ||
               type == kChunkWaitEdges || is_compressed_chunk_type(type)) {
      chunks.push_back({type, n_records, pos + kChunkHeaderBytes,
                        payload_bytes, payload_crc});
    } else {
      irregular = true; // unknown type (or malformed eof) is corrupt
      break;
    }
    pos += kChunkHeaderBytes + payload_bytes;
  }
  if (irregular || !eof_seen) {
    V2Metrics::get().fallbacks.inc();
    return read_trace_v2_body(body);
  }

  // Payload pass: CRC + decode of each chunk is independent; results land
  // in per-chunk slots and are concatenated in chunk order, which is
  // exactly the order the sequential parser appends them in.
  std::vector<TraceData> parts(chunks.size());
  std::atomic<bool> any_bad{false};
  pool.parallel_for(chunks.size(), [&](std::size_t i) {
    const ChunkRef& c = chunks[i];
    const std::string_view payload = body.substr(c.payload_at, c.payload_bytes);
    bool ok = c.payload_crc == crc32(payload.data(), payload.size());
    if (ok) {
      ok = c.type == kChunkMarkers
               ? decode_markers(payload, c.n_records, parts[i].markers)
           : c.type == kChunkSamples
               ? decode_samples(payload, c.n_records, parts[i].samples)
           : c.type == kChunkWaitEdges
               ? decode_wait_edges(payload, c.n_records, parts[i].wait_edges)
               : decode_compressed_chunk(c.type, payload, c.n_records,
                                         parts[i]);
    }
    if (!ok) any_bad.store(true, std::memory_order_relaxed);
  });
  if (any_bad.load()) {
    V2Metrics::get().fallbacks.inc();
    return read_trace_v2_body(body);
  }
  V2Metrics::get().chunks.inc(chunks.size());

  std::size_t n_markers = 0;
  std::size_t n_samples = 0;
  std::size_t n_waits = 0;
  for (const TraceData& p : parts) {
    n_markers += p.markers.size();
    n_samples += p.samples.size();
    n_waits += p.wait_edges.size();
  }
  TraceData out;
  out.markers.reserve(n_markers);
  out.samples.reserve(n_samples);
  out.wait_edges.reserve(n_waits);
  for (TraceData& p : parts) {
    out.markers.insert(out.markers.end(), p.markers.begin(), p.markers.end());
    out.samples.insert(out.samples.end(), p.samples.begin(), p.samples.end());
    out.wait_edges.insert(out.wait_edges.end(), p.wait_edges.begin(),
                          p.wait_edges.end());
  }
  return out;
}

void save_trace_v2(const std::string& path, const TraceData& data,
                   std::size_t records_per_chunk) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw TraceIoError("cannot open for writing: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    write_trace_v2(os, data, records_per_chunk);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
  os.close();
  if (!os) {
    throw TraceIoError("write failed (close): " + path + ": " +
                       std::strerror(errno));
  }
}

} // namespace fluxtrace::io
