// Folded-stack export, the interchange format of Brendan Gregg's
// flamegraph tools: one line per (data-item, function) bucket,
//
//     item_<id>;<function> <samples>
//
// so a recorded per-data-item trace can be rendered as a flame graph
// whose first level is the data-item — fluctuating items literally stick
// out of the picture.
#pragma once

#include <functional>
#include <iosfwd>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::io {

/// Bucket predicate for the exporters below: return false to drop one
/// (item, function) bucket. An empty function keeps everything.
/// flxt_report compiles its --filter expression into one of these, so io
/// stays independent of the query subsystem.
using BucketFilter = std::function<bool(ItemId, SymbolId)>;

/// Write the table's buckets in folded form. `min_samples` suppresses
/// single-sample buckets (which a trace cannot time anyway) when > 1.
void write_folded(std::ostream& os, const core::TraceTable& table,
                  const SymbolTable& symtab, std::uint64_t min_samples = 1,
                  const BucketFilter& keep = {});

/// Write the integrated per-item, per-function table as CSV
/// (item, function, samples, elapsed_us, window_us) — the plotting-ready
/// form of the paper's Fig. 8/9 data.
void write_table_csv(std::ostream& os, const core::TraceTable& table,
                     const SymbolTable& symtab, const CpuSpec& spec,
                     const BucketFilter& keep = {});

} // namespace fluxtrace::io
