// Symbol-table persistence, in an nm(1)-like text format:
//
//     <lo-hex> <size-hex> T <name>
//
// one line per function, sorted by address. Integration on an analysis
// host needs exactly this (paper §III-D step 2: "symbols are the names of
// functions and the addresses of their beginning and ending points that
// are obtained from the binary of the target program").
#pragma once

#include <iosfwd>
#include <string>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/io/trace_file.hpp" // TraceIoError

namespace fluxtrace::io {

void write_symbols(std::ostream& os, const SymbolTable& symtab);
[[nodiscard]] SymbolTable read_symbols(std::istream& is);

void save_symbols(const std::string& path, const SymbolTable& symtab);
[[nodiscard]] SymbolTable load_symbols(const std::string& path);

} // namespace fluxtrace::io
