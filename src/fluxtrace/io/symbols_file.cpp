#include "fluxtrace/io/symbols_file.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fluxtrace::io {

void write_symbols(std::ostream& os, const SymbolTable& symtab) {
  for (std::size_t i = 0; i < symtab.size(); ++i) {
    const Symbol& s = symtab[static_cast<SymbolId>(i)];
    os << std::hex << std::setw(16) << std::setfill('0') << s.lo << ' '
       << std::setw(16) << s.size() << " T " << s.name << '\n';
  }
  if (!os.good()) throw TraceIoError("stream failure while writing symbols");
}

SymbolTable read_symbols(std::istream& is) {
  SymbolTable out;
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t prev_hi = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t lo = 0, size = 0;
    char type = 0;
    std::string name;
    ls >> std::hex >> lo >> size >> type;
    std::getline(ls, name);
    // Trim the single separating space.
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    if (ls.fail() || type != 'T' || name.empty() || size == 0) {
      throw TraceIoError("malformed symbol line " + std::to_string(lineno) +
                         ": '" + line + "'");
    }
    if (lo < prev_hi) {
      throw TraceIoError("symbols out of order or overlapping at line " +
                         std::to_string(lineno));
    }
    out.add_range(name, lo, lo + size);
    prev_hi = lo + size;
  }
  return out;
}

void save_symbols(const std::string& path, const SymbolTable& symtab) {
  std::ofstream os(path);
  if (!os) throw TraceIoError("cannot open for writing: " + path);
  write_symbols(os, symtab);
}

SymbolTable load_symbols(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw TraceIoError("cannot open for reading: " + path);
  return read_symbols(is);
}

} // namespace fluxtrace::io
