// The one way in: a format-autodetecting facade over every trace
// container fluxtrace can persist (FLXT v1 monolithic, FLXT v2 chunked,
// FLXZ compact). Callers stopped caring which writer produced a file the
// moment three formats existed — open_trace() probes the leading bytes
// and hands back a TraceReader that can
//
//   * read()            — strict parse, TraceIoError on any damage;
//   * read_parallel(n)  — same result, decoded on n threads (v1 splits
//                         into fixed-size record blocks, v2 decodes
//                         chunks concurrently; FLXZ is a delta-coded
//                         varint stream with carried state, so it falls
//                         back to the sequential parse);
//   * salvage()         — best-effort recovery, never throws on damage
//                         (v2 recovers per chunk; v1/FLXZ are all-or-
//                         nothing monolithic streams).
//
// The legacy free functions (read_trace / load_trace / read_compact /
// load_compact) remain only as io-internal plumbing under this facade
// (io/legacy.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/follower.hpp"
#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {

class MmapByteSource;

/// What the leading bytes of the file claim it is.
enum class TraceFormat : std::uint8_t {
  Unknown, ///< no recognizable magic — read() throws, salvage() scans
  FlxtV1,  ///< monolithic v1 container (trace_file.hpp)
  FlxtV2,  ///< CRC-chunked v2 container (chunked.hpp)
  Flxz,    ///< compact varint container (compact.hpp); lossy GPRs
  FlxtV3,  ///< CRC-chunked, compressed columnar chunks (v3.hpp)
};

[[nodiscard]] constexpr std::string_view to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::Unknown: return "unknown";
    case TraceFormat::FlxtV1: return "flxt-v1";
    case TraceFormat::FlxtV2: return "flxt-v2";
    case TraceFormat::Flxz: return "flxz";
    case TraceFormat::FlxtV3: return "flxt-v3";
  }
  return "?";
}

/// v2 and v3 are one CHNK chunk family (v3.hpp): everything that walks
/// chunks — index, selective decode, salvage, FLXI, follower — treats
/// them identically.
[[nodiscard]] constexpr bool is_chunked_format(TraceFormat f) {
  return f == TraceFormat::FlxtV2 || f == TraceFormat::FlxtV3;
}

/// An opened trace: the file image plus its detected format. Construct
/// via open_trace() / open_trace_bytes(). The reader owns the bytes, so
/// it stays valid after the file changes on disk; all methods are const
/// and safe to call repeatedly.
class TraceReader {
 public:
  [[nodiscard]] TraceFormat format() const { return format_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size_bytes() const { return view_.size(); }
  /// The raw file image. Consumers that walk the container themselves
  /// (the query engine's selective chunk decode) read it through
  /// io::index_trace_v2 / decode_trace_v2_chunk. The view is either a
  /// heap copy the reader owns or a read-only mmap of the file
  /// (open_trace); either way it stays valid for the reader's lifetime
  /// and across copies of the reader.
  [[nodiscard]] std::string_view bytes() const { return view_; }
  /// True when bytes() is a zero-copy mmap of the file rather than a
  /// heap slurp.
  [[nodiscard]] bool mapped() const { return mmap_ != nullptr; }

  /// Strict parse of the whole trace. Throws TraceIoError on damage or an
  /// unrecognized format; errors carry the path when one is known.
  [[nodiscard]] TraceData read() const;

  /// read() decoded on `n_threads` workers (0 = hardware concurrency).
  /// Returns exactly what read() returns — the thread count is never
  /// observable in the result. n_threads <= 1 and FLXZ input run the
  /// sequential parse.
  [[nodiscard]] TraceData read_parallel(unsigned n_threads = 0) const;

  /// Best-effort recovery; never throws on damaged content. FLXT v2 (and
  /// Unknown input, which may be a v2 file with a destroyed header)
  /// recovers chunk by chunk; the monolithic v1/FLXZ formats parse
  /// strictly and report either the full trace or nothing.
  [[nodiscard]] SalvageReport salvage() const;

  /// read_parallel() with the standard degraded-mode policy every
  /// analysis consumer wants: a strict parse, and when that reports
  /// damage, the salvaged subset instead of an error. `salvaged` is true
  /// iff the strict parse failed and the rows are a best-effort subset.
  struct ReadResult {
    TraceData data;
    bool salvaged = false;
  };
  [[nodiscard]] ReadResult read_or_salvage(unsigned n_threads = 0) const;

  // Prefer the open_trace() free functions; this is their plumbing.
  TraceReader(std::string bytes, std::string path);
  TraceReader(std::shared_ptr<MmapByteSource> mmap, std::string path);

 private:
  /// The still-backed prefix of the view: the whole view normally, a
  /// clamp to the file's current size when a mapped file shrank under
  /// us (pages below the current size are always safe to touch). Strict
  /// reads refuse a shrunk mapping; salvage works on the prefix.
  [[nodiscard]] std::string_view safe_view(bool* did_shrink) const;

  std::shared_ptr<const std::string> owned_; // heap-slurp ownership
  std::shared_ptr<MmapByteSource> mmap_;     // mmap ownership
  std::string_view view_;
  std::string path_;   // empty when opened from memory
  TraceFormat format_ = TraceFormat::Unknown;
};

/// The three-way health verdict every catalog-style consumer needs
/// (hub ingest, federated query): is the trace usable as-is, usable in
/// degraded form, or only fit for quarantine?
enum class TraceHealth : std::uint8_t {
  Clean,         ///< strict read succeeds; every byte accounted for
  Salvaged,      ///< damaged, but a non-empty subset was recovered
  Unrecoverable, ///< damaged and *nothing* was recoverable
};

[[nodiscard]] constexpr std::string_view to_string(TraceHealth h) {
  switch (h) {
    case TraceHealth::Clean: return "clean";
    case TraceHealth::Salvaged: return "salvaged";
    case TraceHealth::Unrecoverable: return "unrecoverable";
  }
  return "?";
}

/// classify_trace(): one salvage pass, one verdict, and the full
/// SalvageReport for exact per-trace loss accounting (the quarantine
/// ledger records chunks lost / bytes skipped, not just "damaged").
struct TraceTriage {
  TraceHealth health = TraceHealth::Unrecoverable;
  SalvageReport report;
};

[[nodiscard]] TraceTriage classify_trace(const TraceReader& reader);

/// How open_trace acquires the bytes.
struct OpenOptions {
  /// Skip mmap and slurp via pread even when a mapping would work
  /// (benchmark baselines; filesystems where mmap reads are slow).
  bool force_pread = false;
  /// Fault injected before each pread attempt (adapt a sim::FaultPlan
  /// with a lambda — io cannot depend on sim). Only consulted on the
  /// pread path: a real mapping has no load hook to fail from, so
  /// providing a fault hook implies force_pread.
  std::function<ReadFault()> read_fault;
  /// Transient-read retries per offset before open gives up.
  std::uint32_t max_read_attempts = 8;
};

/// Open a trace file, detect its format. The file is mmap'd read-only
/// when possible (zero-copy: pages are touched on first decode, not
/// slurped up front) and pread into a heap buffer otherwise — empty
/// files, mmap-hostile filesystems, force_pread, or fault injection.
/// Throws TraceIoError only when the file cannot be read at all (message
/// carries path and errno); unrecognized content still opens, as
/// TraceFormat::Unknown.
[[nodiscard]] TraceReader open_trace(const std::string& path);
[[nodiscard]] TraceReader open_trace(const std::string& path,
                                     const OpenOptions& opts);

/// Same, over an in-memory file image (tests, network transports).
[[nodiscard]] TraceReader open_trace_bytes(std::string bytes);

} // namespace fluxtrace::io
