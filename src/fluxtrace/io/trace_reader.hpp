// The one way in: a format-autodetecting facade over every trace
// container fluxtrace can persist (FLXT v1 monolithic, FLXT v2 chunked,
// FLXZ compact). Callers stopped caring which writer produced a file the
// moment three formats existed — open_trace() probes the leading bytes
// and hands back a TraceReader that can
//
//   * read()            — strict parse, TraceIoError on any damage;
//   * read_parallel(n)  — same result, decoded on n threads (v1 splits
//                         into fixed-size record blocks, v2 decodes
//                         chunks concurrently; FLXZ is a delta-coded
//                         varint stream with carried state, so it falls
//                         back to the sequential parse);
//   * salvage()         — best-effort recovery, never throws on damage
//                         (v2 recovers per chunk; v1/FLXZ are all-or-
//                         nothing monolithic streams).
//
// The legacy free functions (read_trace / load_trace / read_compact /
// load_compact) remain only as io-internal plumbing under this facade
// (io/legacy.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {

/// What the leading bytes of the file claim it is.
enum class TraceFormat : std::uint8_t {
  Unknown, ///< no recognizable magic — read() throws, salvage() scans
  FlxtV1,  ///< monolithic v1 container (trace_file.hpp)
  FlxtV2,  ///< CRC-chunked v2 container (chunked.hpp)
  Flxz,    ///< compact varint container (compact.hpp); lossy GPRs
};

[[nodiscard]] constexpr std::string_view to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::Unknown: return "unknown";
    case TraceFormat::FlxtV1: return "flxt-v1";
    case TraceFormat::FlxtV2: return "flxt-v2";
    case TraceFormat::Flxz: return "flxz";
  }
  return "?";
}

/// An opened trace: the file image plus its detected format. Construct
/// via open_trace() / open_trace_bytes(). The reader owns the bytes, so
/// it stays valid after the file changes on disk; all methods are const
/// and safe to call repeatedly.
class TraceReader {
 public:
  [[nodiscard]] TraceFormat format() const { return format_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }
  /// The raw file image the reader owns. Consumers that walk the
  /// container themselves (the query engine's selective chunk decode)
  /// read it through io::index_trace_v2 / decode_trace_v2_chunk.
  [[nodiscard]] const std::string& bytes() const { return bytes_; }

  /// Strict parse of the whole trace. Throws TraceIoError on damage or an
  /// unrecognized format; errors carry the path when one is known.
  [[nodiscard]] TraceData read() const;

  /// read() decoded on `n_threads` workers (0 = hardware concurrency).
  /// Returns exactly what read() returns — the thread count is never
  /// observable in the result. n_threads <= 1 and FLXZ input run the
  /// sequential parse.
  [[nodiscard]] TraceData read_parallel(unsigned n_threads = 0) const;

  /// Best-effort recovery; never throws on damaged content. FLXT v2 (and
  /// Unknown input, which may be a v2 file with a destroyed header)
  /// recovers chunk by chunk; the monolithic v1/FLXZ formats parse
  /// strictly and report either the full trace or nothing.
  [[nodiscard]] SalvageReport salvage() const;

  /// read_parallel() with the standard degraded-mode policy every
  /// analysis consumer wants: a strict parse, and when that reports
  /// damage, the salvaged subset instead of an error. `salvaged` is true
  /// iff the strict parse failed and the rows are a best-effort subset.
  struct ReadResult {
    TraceData data;
    bool salvaged = false;
  };
  [[nodiscard]] ReadResult read_or_salvage(unsigned n_threads = 0) const;

  // Prefer the open_trace() free functions; this is their plumbing.
  TraceReader(std::string bytes, std::string path);

 private:
  std::string bytes_;
  std::string path_;   // empty when opened from memory
  TraceFormat format_ = TraceFormat::Unknown;
};

/// The three-way health verdict every catalog-style consumer needs
/// (hub ingest, federated query): is the trace usable as-is, usable in
/// degraded form, or only fit for quarantine?
enum class TraceHealth : std::uint8_t {
  Clean,         ///< strict read succeeds; every byte accounted for
  Salvaged,      ///< damaged, but a non-empty subset was recovered
  Unrecoverable, ///< damaged and *nothing* was recoverable
};

[[nodiscard]] constexpr std::string_view to_string(TraceHealth h) {
  switch (h) {
    case TraceHealth::Clean: return "clean";
    case TraceHealth::Salvaged: return "salvaged";
    case TraceHealth::Unrecoverable: return "unrecoverable";
  }
  return "?";
}

/// classify_trace(): one salvage pass, one verdict, and the full
/// SalvageReport for exact per-trace loss accounting (the quarantine
/// ledger records chunks lost / bytes skipped, not just "damaged").
struct TraceTriage {
  TraceHealth health = TraceHealth::Unrecoverable;
  SalvageReport report;
};

[[nodiscard]] TraceTriage classify_trace(const TraceReader& reader);

/// Open a trace file, detect its format. Throws TraceIoError only when
/// the file cannot be read at all (message carries path and errno);
/// unrecognized content still opens, as TraceFormat::Unknown.
[[nodiscard]] TraceReader open_trace(const std::string& path);

/// Same, over an in-memory file image (tests, network transports).
[[nodiscard]] TraceReader open_trace_bytes(std::string bytes);

} // namespace fluxtrace::io
