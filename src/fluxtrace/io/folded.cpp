#include "fluxtrace/io/folded.hpp"

#include <ostream>

#include "fluxtrace/report/csv.hpp"

namespace fluxtrace::io {

void write_folded(std::ostream& os, const core::TraceTable& table,
                  const SymbolTable& symtab, std::uint64_t min_samples,
                  const BucketFilter& keep) {
  for (const ItemId item : table.items()) {
    for (const SymbolId fn : table.functions(item)) {
      const std::uint64_t n = table.sample_count(item, fn);
      if (n < min_samples) continue;
      if (keep && !keep(item, fn)) continue;
      os << "item_" << item << ';' << symtab.name(fn) << ' ' << n << '\n';
    }
  }
}

void write_table_csv(std::ostream& os, const core::TraceTable& table,
                     const SymbolTable& symtab, const CpuSpec& spec,
                     const BucketFilter& keep) {
  report::CsvWriter w(os);
  w.header({"item", "function", "samples", "elapsed_us", "window_us"});
  for (const ItemId item : table.items()) {
    const double window = spec.us(table.item_window_total(item));
    for (const SymbolId fn : table.functions(item)) {
      if (keep && !keep(item, fn)) continue;
      w.row({std::to_string(item), std::string(symtab.name(fn)),
             std::to_string(table.sample_count(item, fn)),
             std::to_string(spec.us(table.elapsed(item, fn))),
             std::to_string(window)});
    }
  }
}

} // namespace fluxtrace::io
