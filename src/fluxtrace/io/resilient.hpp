// Resilient capture spooling: the *write* side of crash-safe tracing.
//
// PR 1 made the read side survive damage (CRC salvage); this module makes
// the path that *produces* those files survive hours of live capture:
// slow disks, transient write errors, a helper process wedged behind a
// full SSD queue. The paper's whole premise — catching a single
// occurrence of a fluctuation — dies if the one window that mattered is
// silently dropped because write(2) hiccupped.
//
//   OnlineTracer dump ──▶ ResilientWriter ──▶ SpoolSink (primary)
//                          │ bounded chunk queue      └▶ SpoolSink (secondary)
//                          │ overflow policy: block / drop-oldest / drop-newest
//                          │ retry w/ capped exponential backoff + jitter
//                          │ fsync per chunk (crash-consistent with flxt_recover)
//                          └ circuit breaker per sink, failover on persistence
//
// Invariants:
//   * every record handed to the writer is accounted exactly once:
//     committed (written + fsynced), queue-dropped (overflow policy), or
//     sink-lost (no usable sink at close) — stats() reconciles exactly;
//   * a kill -9 at any point leaves a spool whose fsynced chunks salvage
//     with zero CRC failures (chunks are written whole, synced on their
//     boundary, and the eof sentinel only appears on a clean close);
//   * the writer never blocks the capture hot path on a broken sink:
//     Block policy applies backpressure by *pumping*, not waiting, and a
//     sink that stays broken converts pressure into counted drops.
//
// Time base: the writer is single-threaded and driven by pump(now) with a
// caller-supplied monotonic clock (virtual TSC-derived ns in simulation,
// steady ns in a live deployment). Backoff delays gate retries against
// that clock; the writer never sleeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/io/chunked.hpp"

namespace fluxtrace::io {

/// Outcome of one SpoolSink::write attempt.
enum class SinkStatus : std::uint8_t {
  Ok,        ///< all or some bytes accepted (see SinkResult::written)
  Transient, ///< retryable (EINTR, EAGAIN, injected transient fault)
  Fatal,     ///< not retryable on this sink (ENOSPC, EBADF, closed)
};

struct SinkResult {
  SinkStatus status = SinkStatus::Ok;
  std::size_t written = 0; ///< bytes accepted (may be short on Ok)
};

/// Append-only byte sink a spool writes into. Implementations must accept
/// partial writes (return the count) and provide a durability barrier.
class SpoolSink {
 public:
  virtual ~SpoolSink() = default;
  virtual SinkResult write(const char* data, std::size_t len) = 0;
  /// Durability barrier (fsync). False = the barrier failed (retryable).
  [[nodiscard]] virtual bool sync() = 0;
  /// Human-readable identity for reports ("path" for files).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// POSIX file sink: open(O_CREAT|O_TRUNC|O_APPEND), write(2), fsync(2).
/// EINTR/EAGAIN report Transient; ENOSPC/EIO and friends report Fatal.
class FileSpoolSink final : public SpoolSink {
 public:
  /// Never throws: a sink that cannot open reports Fatal on first write,
  /// so the writer's failover logic handles creation failures too.
  explicit FileSpoolSink(std::string path);
  ~FileSpoolSink() override;
  FileSpoolSink(const FileSpoolSink&) = delete;
  FileSpoolSink& operator=(const FileSpoolSink&) = delete;

  SinkResult write(const char* data, std::size_t len) override;
  [[nodiscard]] bool sync() override;
  [[nodiscard]] std::string describe() const override { return path_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// What an injected sink fault does to one write attempt. Mirrors
/// sim::SinkFaultKind (sim cannot depend on io; adapt with a lambda).
enum class SinkFault : std::uint8_t {
  None,      ///< write proceeds
  Transient, ///< one-shot retryable error
  Stuck,     ///< sink wedged: fails now and for a scheduled window
  NoSpace,   ///< persistent fatal (device full)
};

/// Fault-injection decorator: consults `fault_fn` before each write and
/// turns its verdict into the corresponding SinkStatus without touching
/// the inner sink. sync() is only faulted while a Stuck/NoSpace verdict
/// is active for the current write index.
class FaultableSink final : public SpoolSink {
 public:
  using FaultFn = std::function<SinkFault(std::size_t bytes)>;
  FaultableSink(std::unique_ptr<SpoolSink> inner, FaultFn fault_fn)
      : inner_(std::move(inner)), fault_(std::move(fault_fn)) {}

  SinkResult write(const char* data, std::size_t len) override;
  [[nodiscard]] bool sync() override;
  [[nodiscard]] std::string describe() const override {
    return inner_->describe();
  }

 private:
  std::unique_ptr<SpoolSink> inner_;
  FaultFn fault_;
  bool last_faulted_ = false; ///< fault also the paired sync
};

/// What enqueue does when the staging queue is full.
enum class OverflowPolicy : std::uint8_t {
  Block,      ///< pump synchronously until space (backpressure); drops only
              ///< when no sink can make progress
  DropOldest, ///< evict the oldest staged chunk (keep the newest data)
  DropNewest, ///< refuse the incoming chunk (keep the oldest data)
};

[[nodiscard]] const char* to_string(OverflowPolicy p);

struct ResilientWriterConfig {
  /// Staging queue capacity, in chunks.
  std::size_t queue_chunks = 64;
  OverflowPolicy overflow = OverflowPolicy::Block;
  std::size_t records_per_chunk = kDefaultChunkRecords;

  /// Transient-failure retries per pump before the chunk is left queued
  /// and a breaker strike is counted.
  std::uint32_t max_attempts = 8;
  /// Capped exponential backoff between retries, plus deterministic
  /// jitter in [0, backoff_base_ns) drawn from jitter_seed.
  std::uint64_t backoff_base_ns = 1'000;
  std::uint64_t backoff_cap_ns = 1'000'000;
  std::uint64_t jitter_seed = 1;

  /// Consecutive exhausted-retry rounds (or one Fatal) that open a
  /// sink's circuit; while open, the sink is skipped until cooldown
  /// elapses and a half-open probe is allowed.
  std::uint32_t breaker_strikes = 3;
  std::uint64_t breaker_cooldown_ns = 10'000'000;

  /// fsync after every committed chunk (the crash-consistency contract).
  bool sync_each_chunk = true;
};

/// Single-threaded resilient spooler of FLXT v2 chunks. See file comment.
class ResilientWriter {
 public:
  /// `secondary` may be null (single-spool deployment).
  ResilientWriter(ResilientWriterConfig cfg, std::unique_ptr<SpoolSink> primary,
                  std::unique_ptr<SpoolSink> secondary = nullptr);

  // --- staging ----------------------------------------------------------
  /// Encode records into chunks and stage them, applying the overflow
  /// policy. Full chunks of cfg.records_per_chunk are cut immediately;
  /// the remainder is buffered until the next add or close().
  void add_markers(const Marker* ms, std::size_t n, std::uint64_t now_ns);
  void add_samples(const PebsSample* ss, std::size_t n, std::uint64_t now_ns);
  void add_wait_edges(const WaitEdge* es, std::size_t n, std::uint64_t now_ns);

  // --- driving ----------------------------------------------------------
  /// Try to drain staged chunks into the active sink. Honors backoff
  /// deadlines against `now_ns`; returns chunks committed this call.
  std::size_t pump(std::uint64_t now_ns);
  /// Flush partial buffers, drain what the sinks will take, append the
  /// eof sentinel, final sync. Chunks no sink accepted are counted as
  /// sink-lost. Returns true when everything including the sentinel
  /// committed (the spool is a *clean* v2 file).
  bool close(std::uint64_t now_ns);

  // --- observability ----------------------------------------------------
  struct Stats {
    // Record accounting; the reconciliation identity is
    //   records_enqueued == records_committed + records_dropped_queue
    //                       + records_lost_sink          (after close()).
    std::uint64_t records_enqueued = 0;
    std::uint64_t records_committed = 0;
    std::uint64_t records_dropped_queue = 0;
    std::uint64_t records_lost_sink = 0;

    std::uint64_t chunks_enqueued = 0;
    std::uint64_t chunks_committed = 0;
    std::uint64_t chunks_dropped_queue = 0;
    std::uint64_t chunks_lost_sink = 0;

    std::uint64_t retries = 0;         ///< write attempts beyond the first
    std::uint64_t backoff_ns = 0;      ///< total virtual backoff waited
    std::uint64_t sync_failures = 0;
    std::uint64_t failovers = 0;       ///< active-sink switches
    std::uint64_t breaker_opens = 0;
    std::uint64_t blocked_enqueues = 0; ///< Block-policy backpressure events

    std::size_t queue_depth = 0;  ///< staged chunks right now
    std::uint32_t active_sink = 0; ///< 0 = primary, 1 = secondary
    bool exhausted = false;        ///< every sink's circuit is open
    bool closed_clean = false;     ///< close() committed the eof sentinel

    [[nodiscard]] bool reconciled() const {
      return records_enqueued == records_committed + records_dropped_queue +
                                     records_lost_sink;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ResilientWriterConfig& config() const { return cfg_; }
  /// describe() of the sink currently accepting chunks.
  [[nodiscard]] std::string active_sink_name() const;
  /// True when a retry is pending and gated on the backoff deadline.
  [[nodiscard]] bool backing_off(std::uint64_t now_ns) const {
    return now_ns < retry_at_ns_;
  }

 private:
  struct StagedChunk {
    std::string bytes;
    std::uint64_t records = 0;
    std::size_t written = 0; ///< resume offset after a short write
  };
  struct SinkState {
    std::unique_ptr<SpoolSink> sink;
    std::size_t header_bytes = 0; ///< v2 file header resume offset
    std::uint32_t strikes = 0;
    bool open = false;            ///< circuit open (sink sidelined)
    bool fatal = false;           ///< saw a Fatal status
    std::uint64_t opened_at_ns = 0;
  };

  void stage(StagedChunk&& chunk, std::uint64_t now_ns);
  /// One chunk → active sink. True = committed; false = left queued.
  bool commit_head(std::uint64_t now_ns);
  /// Record a failed retry round on the active sink; may open its
  /// circuit and fail over. Returns true when another sink is usable.
  bool strike_active(std::uint64_t now_ns, bool fatal);
  [[nodiscard]] bool sink_usable(const SinkState& s,
                                 std::uint64_t now_ns) const;
  std::uint64_t backoff_delay(std::uint32_t attempt);

  ResilientWriterConfig cfg_;
  SinkState sinks_[2];
  std::size_t n_sinks_;
  std::size_t active_ = 0;
  std::deque<StagedChunk> queue_;
  std::vector<Marker> marker_buf_;   ///< partial chunk under construction
  SampleVec sample_buf_;
  std::vector<WaitEdge> wait_buf_;
  std::uint64_t retry_at_ns_ = 0;    ///< backoff gate for the next attempt
  std::uint32_t attempts_ = 0;       ///< transient retries on current head
  std::uint64_t jitter_state_;
  bool closed_ = false;
  Stats stats_;
};

} // namespace fluxtrace::io
