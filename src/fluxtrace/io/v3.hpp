// The FLXT **v3 compressed columnar** layout (docs/format.md).
//
// v3 keeps v2's crash-safe CHNK framing byte-for-byte — same 21-byte
// CRC-protected frame header, same eof sentinel, same salvage resync —
// and adds three *compressed* chunk types whose payloads store records
// as independently-encoded columns instead of fixed-width rows:
//
//   file    := u32 magic "FLXT" | u32 version=3 | chunk* | eof-chunk
//   chunk   := (v2 CHNK frame; new types 4=samples, 5=markers,
//               6=wait edges, compressed)
//   payload := u32 flags (must be 0; unknown bits reject the chunk)
//            | i64 min_ts | i64 max_ts     zone hint over the time column
//            | u8 n_cols
//            | column{n_cols}
//   column  := u8 col_id (ascending from 0) | u8 codec (codec/column.hpp)
//            | u32 enc_bytes | u32 enc_crc | bytes{enc_bytes}
//
// Because the framing is shared, every v2 reader mechanism — follower
// tailing, salvage resync, torn-tail detection, selective chunk decode,
// FLXI row alignment — works on a v3 file once it dispatches the three
// new types; the version field records which chunk types the writer may
// have emitted. A v3 sample chunk carries all 19 columns (ts, ip, core,
// 16 GPRs), so a v3 round trip is bit-identical to v2 — idle registers
// cost ~1 byte per chunk under the Const codec instead of 8 bytes per
// row.
//
// The zone hint (min/max of the time column) is written at encode time
// and sits at a fixed offset in the payload, so a reader can prune a
// compressed chunk against a ts predicate without inflating it (the
// engine CRC-checks the payload before trusting the hint; a chunk that
// fails the check is decoded the hard way and salvage takes over).
//
// Hostile input: n_records is capped (detail::kMaxRecordsPerChunk)
// before any allocation, every column codec rejects forged lengths and
// out-of-range dictionary indices (codec/column.hpp), and field ranges
// (core ids, marker kinds, wait causes) are validated on decode exactly
// as the v2 record decoders do.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/codec/column.hpp"
#include "fluxtrace/io/chunked.hpp"

namespace fluxtrace::io {

inline constexpr std::uint32_t kTraceVersion3 = 3;

/// Compressed chunk types (the raw v2 types are 0-3, chunked.hpp).
inline constexpr std::uint8_t kChunkTypeSamplesC = 4;
inline constexpr std::uint8_t kChunkTypeMarkersC = 5;
inline constexpr std::uint8_t kChunkTypeWaitEdgesC = 6;

[[nodiscard]] constexpr bool is_sample_chunk_type(std::uint8_t t) {
  return t == kChunkTypeSamples || t == kChunkTypeSamplesC;
}
[[nodiscard]] constexpr bool is_marker_chunk_type(std::uint8_t t) {
  return t == kChunkTypeMarkers || t == kChunkTypeMarkersC;
}
[[nodiscard]] constexpr bool is_wait_chunk_type(std::uint8_t t) {
  return t == kChunkTypeWaitEdges || t == kChunkTypeWaitEdgesC;
}
[[nodiscard]] constexpr bool is_compressed_chunk_type(std::uint8_t t) {
  return t >= kChunkTypeSamplesC && t <= kChunkTypeWaitEdgesC;
}

/// v3 chunks are larger than v2's default 1024: delta and dictionary
/// codecs amortize better over more rows, and the per-chunk cost of a
/// salvage loss is already bounded by the CRC framing.
inline constexpr std::size_t kDefaultChunkRecordsV3 = 4096;

// --- streaming chunk encoders (mirror the v2 set in chunked.hpp) ------

/// The 8-byte file prefix: magic + version=3.
[[nodiscard]] std::string encode_v3_file_header();
/// One complete compressed sample/marker/wait-edge chunk for n records
/// (n must be in [1, detail::kMaxRecordsPerChunk]).
[[nodiscard]] std::string encode_sample_chunk_v3(const PebsSample* ss,
                                                 std::size_t n);
[[nodiscard]] std::string encode_marker_chunk_v3(const Marker* ms,
                                                 std::size_t n);
[[nodiscard]] std::string encode_wait_chunk_v3(const WaitEdge* es,
                                               std::size_t n);

/// Serialize in the v3 layout (the eof sentinel is shared with v2).
/// Throws TraceIoError on stream failure.
void write_trace_v3(std::ostream& os, const TraceData& data,
                    std::size_t records_per_chunk = kDefaultChunkRecordsV3);
void save_trace_v3(const std::string& path, const TraceData& data,
                   std::size_t records_per_chunk = kDefaultChunkRecordsV3);

// --- decode ------------------------------------------------------------

/// Strict decode of one compressed chunk payload (frame payload CRC
/// already verified by the caller) into `out`. Returns false on any
/// malformation: wrong type, forged count, unknown flags, bad column
/// ids/codecs/CRCs, out-of-range field values, trailing bytes. Never
/// throws; allocations are bounded by the record cap.
[[nodiscard]] bool decode_compressed_chunk(std::uint8_t type,
                                           std::string_view payload,
                                           std::uint32_t n_records,
                                           TraceData& out);

/// Column-direct slice decode of one compressed *sample* chunk: writes
/// exactly ref.n_records values to each non-null pointer of the slice
/// (chunked.hpp), decoding only the columns asked for — the other 15 GPR
/// columns are skipped without inflation. Validates the frame payload
/// CRC and the per-column CRCs of the columns it decodes; throws
/// TraceIoError on damage or a ref that does not match `file`.
void decode_v3_samples_into(std::string_view file, const V2ChunkRef& ref,
                            const SampleColumnSlice& out);

/// The encode-time zone hint of a compressed chunk, read without
/// decoding any column. `ok` is false when the ref is not a compressed
/// chunk, lies outside the file, or its payload fails the frame CRC —
/// a hint is never trusted over damaged bytes.
struct V3ZoneHint {
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
  bool ok = false;
};
[[nodiscard]] V3ZoneHint read_v3_zone_hint(std::string_view file,
                                           const V2ChunkRef& ref);

// --- compression accounting (flxt_dump) -------------------------------

/// Per-column raw vs. encoded byte totals over every compressed chunk of
/// a v3 image, plus how many chunks each codec won the column in.
struct V3ColumnSummary {
  std::string name; ///< "samples.ts", "markers.kind", "wait.enter", ...
  std::uint64_t raw_bytes = 0; ///< fixed-width v2 footprint of the values
  std::uint64_t enc_bytes = 0; ///< encoded payload bytes (headers excluded)
  std::array<std::uint32_t, codec::kNumColumnCodecs> codec_chunks{};
};

/// Walk a chunked image and account every compressed column. Throws
/// TraceIoError on structural damage (delegates to index_trace_v2);
/// returns an empty vector for an image with no compressed chunks.
[[nodiscard]] std::vector<V3ColumnSummary> v3_compression_stats(
    std::string_view file);

} // namespace fluxtrace::io
