#include "fluxtrace/io/compact.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "fluxtrace/io/legacy.hpp"

namespace fluxtrace::io {

namespace {

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw TraceIoError("unexpected end of compact trace");
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) throw TraceIoError("varint overflow");
  }
}

template <typename T, typename TscOf>
std::map<std::uint32_t, std::vector<const T*>> group_sorted(
    const std::vector<T>& recs, TscOf tsc_of) {
  std::map<std::uint32_t, std::vector<const T*>> by_core;
  for (const T& r : recs) by_core[r.core].push_back(&r);
  for (auto& [core, v] : by_core) {
    std::stable_sort(v.begin(), v.end(), [&](const T* a, const T* b) {
      return tsc_of(*a) < tsc_of(*b);
    });
  }
  return by_core;
}

} // namespace

void write_compact(std::ostream& os, const TraceData& data) {
  put_varint(os, kCompactMagic);
  put_varint(os, kCompactVersion);

  // --- markers: per core, delta-encoded timestamps -----------------------
  auto markers = group_sorted(data.markers,
                              [](const Marker& m) { return m.tsc; });
  put_varint(os, markers.size());
  for (const auto& [core, ms] : markers) {
    put_varint(os, core);
    put_varint(os, ms.size());
    Tsc prev = 0;
    for (const Marker* m : ms) {
      put_varint(os, m->tsc - prev);
      prev = m->tsc;
      put_varint(os, m->item);
      put_varint(os, static_cast<std::uint64_t>(m->kind));
    }
  }

  // --- samples: per core, delta timestamps + delta ips -------------------
  auto samples = group_sorted(data.samples,
                              [](const PebsSample& s) { return s.tsc; });
  put_varint(os, samples.size());
  for (const auto& [core, ss] : samples) {
    put_varint(os, core);
    put_varint(os, ss.size());
    Tsc prev_t = 0;
    std::uint64_t prev_ip = 0;
    for (const PebsSample* s : ss) {
      put_varint(os, s->tsc - prev_t);
      prev_t = s->tsc;
      // Zigzag the ip delta: consecutive samples usually sit nearby.
      const std::int64_t d =
          static_cast<std::int64_t>(s->ip) - static_cast<std::int64_t>(prev_ip);
      put_varint(os, (static_cast<std::uint64_t>(d) << 1) ^
                         static_cast<std::uint64_t>(d >> 63));
      prev_ip = s->ip;
      put_varint(os, s->regs.get(kItemIdReg) + 1); // kNoItem(-1) → 0
    }
  }
  if (!os.good()) throw TraceIoError("stream failure writing compact trace");
}

TraceData read_compact(std::istream& is) {
  if (get_varint(is) != kCompactMagic) {
    throw TraceIoError("not a compact fluxtrace file (bad magic)");
  }
  const std::uint64_t version = get_varint(is);
  if (version != kCompactVersion) {
    throw TraceIoError("unsupported compact version " +
                       std::to_string(version));
  }

  TraceData out;
  const std::uint64_t marker_cores = get_varint(is);
  for (std::uint64_t c = 0; c < marker_cores; ++c) {
    const auto core = static_cast<std::uint32_t>(get_varint(is));
    const std::uint64_t n = get_varint(is);
    Tsc t = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      t += get_varint(is);
      Marker m;
      m.tsc = t;
      m.core = core;
      m.item = get_varint(is);
      const std::uint64_t kind = get_varint(is);
      if (kind > static_cast<std::uint64_t>(MarkerKind::Leave)) {
        throw TraceIoError("corrupt compact marker kind");
      }
      m.kind = static_cast<MarkerKind>(kind);
      out.markers.push_back(m);
    }
  }

  const std::uint64_t sample_cores = get_varint(is);
  for (std::uint64_t c = 0; c < sample_cores; ++c) {
    const auto core = static_cast<std::uint32_t>(get_varint(is));
    const std::uint64_t n = get_varint(is);
    Tsc t = 0;
    std::uint64_t ip = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      t += get_varint(is);
      const std::uint64_t zz = get_varint(is);
      const std::int64_t d = static_cast<std::int64_t>(zz >> 1) ^
                             -static_cast<std::int64_t>(zz & 1);
      ip = static_cast<std::uint64_t>(static_cast<std::int64_t>(ip) + d);
      PebsSample s;
      s.tsc = t;
      s.core = core;
      s.ip = ip;
      s.regs.set(kItemIdReg, get_varint(is) - 1);
      out.samples.push_back(s);
    }
  }
  return out;
}

void save_compact(const std::string& path, const TraceData& data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw TraceIoError("cannot open for writing: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    write_compact(os, data);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
  os.close();
  if (!os) {
    throw TraceIoError("write failed (close): " + path + ": " +
                       std::strerror(errno));
  }
}

TraceData load_compact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw TraceIoError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    return read_compact(is);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
}

std::uint64_t compact_size(const TraceData& data) {
  std::ostringstream os;
  write_compact(os, data);
  return os.str().size();
}

} // namespace fluxtrace::io
