// Crash-consistent live trace following: the *read* side of an active
// capture session (ISSUE 6).
//
// A ResilientWriter appends FLXT v2 chunks to a spool, fsyncing on every
// chunk boundary; a TraceFollower tails that same file while the writer
// is still running — committing a chunk only once its full frame (21-byte
// CRC-protected header + payload) is visible and both CRCs check out.
// Everything short of that is treated as "not yet", never as damage:
//
//   * a torn tail (partial header or payload) stays buffered until the
//     writer finishes it — or until the producer is declared dead, at
//     which point a final salvage pass counts it as torn, never decodes
//     it;
//   * a transient read failure (EIO, EAGAIN, injected fault) retries
//     with capped exponential backoff against the caller's clock — the
//     follower, like the writer, never sleeps;
//   * short reads and stale file metadata (fstat lagging the writer)
//     simply bound this poll's progress;
//   * a mid-file frame that stays invalid while the file keeps growing
//     past it (real corruption, not a tail) is skipped by the same
//     magic-resync scan salvage_trace uses, and counted.
//
// Producer liveness: progress (new committed bytes or chunks) feeds a
// watchdog. Once no progress has been made for liveness_timeout_ns and
// the optional producer_alive() probe (wire a pidfile / kill(pid, 0)
// check here) does not vouch for the writer, the follower runs the final
// salvage pass and finishes with FinishReason::ProducerDeath — a kill -9
// mid-chunk degrades into an exact ledger, not a hang or a crash:
//
//   chunks_observed == chunks_consumed + chunks_salvaged + chunks_torn
//
// where observed counts every data-chunk frame the follower ever saw
// bytes of, consumed the chunks committed live, salvaged the chunks the
// death pass recovered, and torn the incomplete/invalid tail frames that
// were never durable. The clean end is the v2 eof sentinel: the writer's
// close() commits it, the follower sees it and finishes CleanEof.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fluxtrace/io/chunked.hpp"
#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {

/// Outcome of one ByteSource operation.
enum class ReadStatus : std::uint8_t {
  Ok,        ///< size/bytes returned (reads may be short)
  Transient, ///< retryable (EINTR, EAGAIN, EIO, file not created yet)
  Fatal,     ///< not retryable (EBADF, unlinked directory, closed)
};

/// Random-access byte view of a file that may still be growing. The
/// follower only ever reads [0, size()) — implementations never need to
/// block at end-of-file.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  struct SizeResult {
    ReadStatus status = ReadStatus::Ok;
    std::uint64_t size = 0; ///< bytes currently visible (may lag writes)
  };
  virtual SizeResult size() = 0;

  struct ReadResult {
    ReadStatus status = ReadStatus::Ok;
    std::size_t n = 0; ///< bytes placed in dst (may be short)
  };
  virtual ReadResult read_at(std::uint64_t offset, char* dst,
                             std::size_t len) = 0;

  /// Human-readable identity for reports ("path" for files).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// POSIX file source: open(O_RDONLY) retried lazily (the spool may not
/// exist yet — ENOENT is Transient), fstat(2) for size, pread(2) for
/// bytes. EINTR/EAGAIN/EIO report Transient; everything else Fatal.
class FileByteSource final : public ByteSource {
 public:
  explicit FileByteSource(std::string path);
  ~FileByteSource() override;
  FileByteSource(const FileByteSource&) = delete;
  FileByteSource& operator=(const FileByteSource&) = delete;

  SizeResult size() override;
  ReadResult read_at(std::uint64_t offset, char* dst, std::size_t len) override;
  [[nodiscard]] std::string describe() const override { return path_; }

 private:
  bool ensure_open(ReadStatus& status);

  std::string path_;
  int fd_ = -1;
};

/// What an injected fault does to one read attempt. Mirrors
/// sim::ReadFaultKind (sim cannot depend on io; adapt with a lambda).
enum class ReadFault : std::uint8_t {
  None,      ///< read proceeds
  Transient, ///< one-shot retryable error
  Short,     ///< at most half the requested bytes are returned
};

/// Fault-injection decorator for the follow path: consults `read_fault`
/// before each read and `size_stale` before each size query. A stale
/// size query reports the file truncated at `truncate_at` bytes (clamped
/// to the real size) — the follower must treat the missing tail as "not
/// yet", exactly like a torn write.
class FaultableByteSource final : public ByteSource {
 public:
  using ReadFaultFn = std::function<ReadFault()>;
  using StaleFn = std::function<bool()>;
  FaultableByteSource(std::unique_ptr<ByteSource> inner, ReadFaultFn read_fault,
                      StaleFn size_stale, std::uint64_t truncate_at = 0)
      : inner_(std::move(inner)), read_fault_(std::move(read_fault)),
        size_stale_(std::move(size_stale)), truncate_at_(truncate_at) {}

  SizeResult size() override;
  ReadResult read_at(std::uint64_t offset, char* dst, std::size_t len) override;
  [[nodiscard]] std::string describe() const override {
    return inner_->describe();
  }

 private:
  std::unique_ptr<ByteSource> inner_;
  ReadFaultFn read_fault_;
  StaleFn size_stale_;
  std::uint64_t truncate_at_;
};

/// How a finished follow ended.
enum class FollowFinish : std::uint8_t {
  None,          ///< not finished yet
  CleanEof,      ///< the writer's eof sentinel was read: a clean close
  ProducerDeath, ///< liveness lapsed: final salvage pass ran
  SourceFatal,   ///< the source failed unrecoverably (after salvage)
  Stopped,       ///< stop() was called (SIGINT path)
};

[[nodiscard]] const char* to_string(FollowFinish f);

struct TraceFollowerConfig {
  /// Transient-read retries within one poll before the poll gives up and
  /// arms the cross-poll backoff gate.
  std::uint32_t max_read_attempts = 8;
  /// Capped exponential backoff between retry polls.
  std::uint64_t backoff_base_ns = 1'000;
  std::uint64_t backoff_cap_ns = 10'000'000;
  /// Producer-death watchdog: this long with zero progress (no new
  /// durable bytes, no chunk committed) declares the producer dead —
  /// unless producer_alive() vouches for it.
  std::uint64_t liveness_timeout_ns = 100'000'000;
  /// Optional liveness probe (pidfile + kill(pid, 0), a supervisor
  /// heartbeat, ...). While it returns true the watchdog never fires.
  std::function<bool()> producer_alive;
  /// Bytes ingested per poll at most (bounds one poll's latency).
  std::size_t max_bytes_per_poll = 4u << 20;
  /// A mid-file frame that stays invalid while at least this many bytes
  /// accumulate beyond it is real damage, not a tail still being
  /// written: resynchronize at the next chunk magic and count it.
  std::size_t resync_after_bytes = 1u << 16;
};

class TraceFollower {
 public:
  TraceFollower(TraceFollowerConfig cfg, std::unique_ptr<ByteSource> source);

  /// Follow a file on disk (the common case).
  [[nodiscard]] static TraceFollower open(const std::string& path,
                                          TraceFollowerConfig cfg = {});

  struct PollResult {
    std::size_t chunks = 0;   ///< data chunks committed by this poll
    TraceData data;           ///< their records, in exact file order
    bool progressed = false;  ///< new durable bytes or chunks this poll
    bool finished = false;    ///< the follow ended during this poll
    bool salvage = false;     ///< data includes the final salvage pass
  };

  /// One non-blocking step against the caller's monotonic clock: check
  /// the source, ingest what is durable, commit every complete chunk,
  /// run the liveness watchdog. Call once per poll interval.
  PollResult poll(std::uint64_t now_ns);

  /// End the follow from outside (SIGINT): everything already buffered
  /// and valid is committed by a last salvage pass, the rest is torn.
  /// Returns that final pass (empty when already finished).
  PollResult stop(std::uint64_t now_ns);

  [[nodiscard]] bool finished() const {
    return finish_ != FollowFinish::None;
  }
  [[nodiscard]] FollowFinish finish_reason() const { return finish_; }
  /// True when a retry is pending and gated on the backoff deadline.
  [[nodiscard]] bool backing_off(std::uint64_t now_ns) const {
    return now_ns < retry_at_ns_;
  }
  [[nodiscard]] std::string source_name() const {
    return source_->describe();
  }

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t bytes_consumed = 0;  ///< bytes behind committed chunks
    std::uint64_t bytes_torn = 0;      ///< tail bytes never committed

    // The chunk ledger (data chunks only; the eof sentinel is eof_seen).
    std::uint64_t chunks_observed = 0; ///< frames the follower saw bytes of
    std::uint64_t chunks_consumed = 0; ///< committed live, in order
    std::uint64_t chunks_salvaged = 0; ///< recovered by the final pass
    std::uint64_t chunks_torn = 0;     ///< incomplete/invalid at finish

    std::uint64_t records_markers = 0;
    std::uint64_t records_samples = 0;
    std::uint64_t records_wait_edges = 0;

    std::uint64_t read_transients = 0; ///< retryable source failures
    std::uint64_t short_reads = 0;     ///< reads returning < requested
    std::uint64_t backoff_ns = 0;      ///< total virtual backoff armed
    std::uint64_t resyncs = 0;         ///< mid-file damage scans
    std::uint64_t bytes_skipped = 0;   ///< damaged bytes resynced past

    bool header_seen = false; ///< v2 magic + version validated
    bool eof_seen = false;    ///< the writer's clean-close sentinel

    /// The exact accounting ISSUE 6 demands: every data-chunk frame the
    /// follower ever observed is consumed, salvaged, or torn.
    [[nodiscard]] bool reconciled() const {
      return chunks_observed ==
             chunks_consumed + chunks_salvaged + chunks_torn;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const TraceFollowerConfig& config() const { return cfg_; }

 private:
  /// Pull durable bytes [read_pos_, durable_size) into buf_. Returns
  /// false when gated on backoff or a transient failure.
  bool ingest(std::uint64_t now_ns, std::uint64_t durable_size,
              PollResult& out);
  /// Commit every complete valid chunk at the front of buf_.
  void parse_committed(std::uint64_t now_ns, PollResult& out);
  /// Final pass over everything buffered: valid chunks -> salvaged,
  /// leftover -> torn. Sets finish_.
  void finish_with_salvage(FollowFinish reason, PollResult& out);
  void note_progress(std::uint64_t now_ns);
  std::uint64_t backoff_delay();
  void drop_consumed_prefix();

  TraceFollowerConfig cfg_;
  std::unique_ptr<ByteSource> source_;

  std::string buf_;            ///< unconsumed bytes [buf_pos_, read_pos_)
  std::uint64_t buf_pos_ = 0;  ///< absolute offset of buf_[0]
  std::uint64_t read_pos_ = 0; ///< absolute offset read so far
  std::size_t parse_at_ = 0;   ///< committed cursor within buf_

  std::uint64_t retry_at_ns_ = 0; ///< backoff gate for the next attempt
  std::uint32_t attempts_ = 0;    ///< consecutive transient failures
  std::uint64_t progress_at_ns_ = 0;
  bool clock_seen_ = false;       ///< progress_at_ns_ initialized

  FollowFinish finish_ = FollowFinish::None;
  Stats stats_;
};

} // namespace fluxtrace::io
