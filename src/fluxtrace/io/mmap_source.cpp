#include "fluxtrace/io/mmap_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fluxtrace::io {

std::shared_ptr<MmapByteSource> MmapByteSource::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    // Empty files cannot be mapped (mmap of length 0 is EINVAL); the
    // caller's pread fallback produces the empty image.
    ::close(fd);
    return nullptr;
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    ::close(fd);
    return nullptr;
  }
  // Chunk decode walks the image front to back; tell the pager.
  ::madvise(addr, len, MADV_SEQUENTIAL);
  return std::shared_ptr<MmapByteSource>(
      new MmapByteSource(addr, len, fd, path));
}

MmapByteSource::MmapByteSource(const void* addr, std::size_t len, int fd,
                               std::string path)
    : addr_(addr), len_(len), fd_(fd), path_(std::move(path)) {}

MmapByteSource::~MmapByteSource() {
  if (addr_ != nullptr) {
    ::munmap(const_cast<void*>(addr_), len_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::size_t MmapByteSource::current_size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0 || st.st_size < 0) return 0;
  return static_cast<std::size_t>(st.st_size);
}

ByteSource::SizeResult MmapByteSource::size() {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    return {errno == EINTR ? ReadStatus::Transient : ReadStatus::Fatal, 0};
  }
  return {ReadStatus::Ok, static_cast<std::uint64_t>(st.st_size)};
}

ByteSource::ReadResult MmapByteSource::read_at(std::uint64_t offset, char* dst,
                                               std::size_t len) {
  // Serve from the mapping where both the mapping and the *current* file
  // size cover the range: pages below the current size are still backed
  // even after a shrink, so copying them cannot fault.
  const std::uint64_t safe =
      std::min<std::uint64_t>(len_, current_size());
  if (offset < safe) {
    const std::size_t n =
        std::min<std::size_t>(len, static_cast<std::size_t>(safe - offset));
    std::memcpy(dst, static_cast<const char*>(addr_) + offset, n);
    return {ReadStatus::Ok, n};
  }
  // Past the mapping (the file grew after map()) — or past a shrink:
  // pread answers from the file as it is now.
  const ssize_t n = ::pread(fd_, dst, len, static_cast<off_t>(offset));
  if (n < 0) {
    const bool transient = errno == EINTR || errno == EAGAIN || errno == EIO;
    return {transient ? ReadStatus::Transient : ReadStatus::Fatal, 0};
  }
  return {ReadStatus::Ok, static_cast<std::size_t>(n)};
}

std::string MmapByteSource::describe() const {
  return path_ + " (mmap)";
}

} // namespace fluxtrace::io
