#include "fluxtrace/io/follower.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include "fluxtrace/io/v3.hpp"
#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::io {

namespace {

// Self-telemetry: what the live follow path commits and what it fights.
struct FollowMetrics {
  obs::Counter& chunks = obs::metrics().counter("io.follow.chunks_consumed");
  obs::Counter& salvaged = obs::metrics().counter("io.follow.chunks_salvaged");
  obs::Counter& torn = obs::metrics().counter("io.follow.chunks_torn");
  obs::Counter& transients = obs::metrics().counter("io.follow.read_transients");
  obs::Counter& resyncs = obs::metrics().counter("io.follow.resyncs");

  static FollowMetrics& get() {
    static FollowMetrics m;
    return m;
  }
};

constexpr std::size_t kFileHeaderBytes = 8;  // magic + version
constexpr std::size_t kFrameHeaderBytes = 21; // magic+type+count+size+2 CRCs
constexpr std::size_t kReadGranule = 256u << 10;

std::uint32_t peek_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
             b[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

} // namespace

const char* to_string(FollowFinish f) {
  switch (f) {
    case FollowFinish::None: return "following";
    case FollowFinish::CleanEof: return "clean-eof";
    case FollowFinish::ProducerDeath: return "producer-death";
    case FollowFinish::SourceFatal: return "source-fatal";
    case FollowFinish::Stopped: return "stopped";
  }
  return "?";
}

// --- FileByteSource -----------------------------------------------------

FileByteSource::FileByteSource(std::string path) : path_(std::move(path)) {}

FileByteSource::~FileByteSource() {
  if (fd_ >= 0) ::close(fd_);
}

bool FileByteSource::ensure_open(ReadStatus& status) {
  if (fd_ >= 0) return true;
  fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ >= 0) return true;
  // The spool may simply not have been created yet — that is the normal
  // startup race when the follower launches before the writer.
  status = (errno == ENOENT || errno == EINTR || errno == EAGAIN)
               ? ReadStatus::Transient
               : ReadStatus::Fatal;
  return false;
}

ByteSource::SizeResult FileByteSource::size() {
  SizeResult r;
  if (!ensure_open(r.status)) return r;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    r.status = (errno == EINTR || errno == EAGAIN || errno == EIO)
                   ? ReadStatus::Transient
                   : ReadStatus::Fatal;
    return r;
  }
  r.size = static_cast<std::uint64_t>(st.st_size);
  return r;
}

ByteSource::ReadResult FileByteSource::read_at(std::uint64_t offset, char* dst,
                                               std::size_t len) {
  ReadResult r;
  if (!ensure_open(r.status)) return r;
  const ssize_t n =
      ::pread(fd_, dst, len, static_cast<off_t>(offset));
  if (n < 0) {
    r.status = (errno == EINTR || errno == EAGAIN || errno == EIO)
                   ? ReadStatus::Transient
                   : ReadStatus::Fatal;
    return r;
  }
  r.n = static_cast<std::size_t>(n);
  return r;
}

// --- FaultableByteSource ------------------------------------------------

ByteSource::SizeResult FaultableByteSource::size() {
  SizeResult r = inner_->size();
  if (r.status == ReadStatus::Ok && size_stale_ && size_stale_()) {
    r.size = std::min(r.size, truncate_at_);
  }
  return r;
}

ByteSource::ReadResult FaultableByteSource::read_at(std::uint64_t offset,
                                                    char* dst,
                                                    std::size_t len) {
  ReadFault f = ReadFault::None;
  if (read_fault_) f = read_fault_();
  if (f == ReadFault::Transient) {
    return ReadResult{ReadStatus::Transient, 0};
  }
  if (f == ReadFault::Short && len > 1) len /= 2;
  return inner_->read_at(offset, dst, len);
}

// --- TraceFollower ------------------------------------------------------

TraceFollower::TraceFollower(TraceFollowerConfig cfg,
                             std::unique_ptr<ByteSource> source)
    : cfg_(cfg), source_(std::move(source)) {
  if (cfg_.max_read_attempts == 0) cfg_.max_read_attempts = 1;
  if (cfg_.max_bytes_per_poll == 0) cfg_.max_bytes_per_poll = kReadGranule;
}

TraceFollower TraceFollower::open(const std::string& path,
                                  TraceFollowerConfig cfg) {
  return TraceFollower(cfg, std::make_unique<FileByteSource>(path));
}

std::uint64_t TraceFollower::backoff_delay() {
  const std::uint32_t shift = std::min(attempts_, 20u);
  const std::uint64_t d = cfg_.backoff_base_ns << shift;
  return std::min(std::max(d, cfg_.backoff_base_ns), cfg_.backoff_cap_ns);
}

void TraceFollower::note_progress(std::uint64_t now_ns) {
  progress_at_ns_ = now_ns;
}

void TraceFollower::drop_consumed_prefix() {
  if (parse_at_ == 0) return;
  buf_.erase(0, parse_at_);
  buf_pos_ += parse_at_;
  parse_at_ = 0;
}

bool TraceFollower::ingest(std::uint64_t now_ns, std::uint64_t durable_size,
                           PollResult& out) {
  std::size_t budget = cfg_.max_bytes_per_poll;
  std::uint32_t tries = 0;
  while (read_pos_ < durable_size && budget > 0) {
    const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(durable_size - read_pos_, budget),
        kReadGranule));
    const std::size_t old = buf_.size();
    buf_.resize(old + want);
    const ByteSource::ReadResult r =
        source_->read_at(read_pos_, buf_.data() + old, want);
    if (r.status == ReadStatus::Transient) {
      buf_.resize(old);
      ++stats_.read_transients;
      FollowMetrics::get().transients.inc();
      if (++tries >= cfg_.max_read_attempts) {
        ++attempts_;
        const std::uint64_t d = backoff_delay();
        stats_.backoff_ns += d;
        retry_at_ns_ = now_ns + d;
        return false;
      }
      continue;
    }
    if (r.status == ReadStatus::Fatal) {
      buf_.resize(old);
      finish_with_salvage(FollowFinish::SourceFatal, out);
      return false;
    }
    buf_.resize(old + r.n);
    if (r.n == 0) break; // visible size lied (stale metadata): not yet
    if (r.n < want) ++stats_.short_reads;
    read_pos_ += r.n;
    budget -= r.n;
    attempts_ = 0;
    retry_at_ns_ = 0;
    out.progressed = true;
  }
  return true;
}

void TraceFollower::parse_committed(std::uint64_t now_ns, PollResult& out) {
  const bool finishing = out.finished || finish_ != FollowFinish::None;
  (void)now_ns;

  // File header first: 8 bytes of magic + version, or "not yet".
  if (!stats_.header_seen) {
    if (buf_.size() < kFileHeaderBytes) return;
    if (peek_u32(buf_, 0) != kTraceMagic ||
        (peek_u32(buf_, 4) != kTraceVersion2 &&
         peek_u32(buf_, 4) != kTraceVersion3)) {
      // Not a chunked spool at all — nothing here will ever frame-align.
      if (!finishing) finish_with_salvage(FollowFinish::SourceFatal, out);
      return;
    }
    stats_.header_seen = true;
    parse_at_ = kFileHeaderBytes;
    stats_.bytes_consumed += kFileHeaderBytes;
    out.progressed = true;
  }

  const std::string_view v(buf_);
  while (!stats_.eof_seen) {
    const std::size_t avail = v.size() - parse_at_;
    if (avail < kFrameHeaderBytes) break; // torn tail: not yet

    const bool header_ok =
        peek_u32(v, parse_at_) == kChunkMagic &&
        peek_u32(v, parse_at_ + 13) == crc32(v.data() + parse_at_, 13);
    if (!header_ok) {
      // A frame header that stays invalid while the file keeps growing
      // past it is damage, not a tail. Resynchronize at the next chunk
      // magic, exactly like salvage_trace; within the slack window it is
      // still "not yet".
      if (!finishing && avail < cfg_.resync_after_bytes) break;
      const std::size_t next = buf_.find("CHNK", parse_at_ + 1, 4);
      ++stats_.resyncs;
      ++stats_.chunks_observed;
      ++stats_.chunks_torn;
      FollowMetrics::get().resyncs.inc();
      FollowMetrics::get().torn.inc();
      if (next == std::string::npos) {
        stats_.bytes_skipped += avail;
        parse_at_ = v.size();
        break;
      }
      stats_.bytes_skipped += next - parse_at_;
      parse_at_ = next;
      continue;
    }

    const std::uint8_t type = static_cast<std::uint8_t>(v[parse_at_ + 4]);
    const std::uint32_t n_records = peek_u32(v, parse_at_ + 5);
    const std::uint32_t payload_bytes = peek_u32(v, parse_at_ + 9);
    const std::uint32_t payload_crc = peek_u32(v, parse_at_ + 17);
    if (avail - kFrameHeaderBytes < payload_bytes) break; // torn mid-payload
    const std::size_t frame = kFrameHeaderBytes + payload_bytes;

    const std::string_view payload =
        v.substr(parse_at_ + kFrameHeaderBytes, payload_bytes);
    bool ok = payload_crc == crc32(payload.data(), payload.size());
    if (ok && type == kChunkTypeEof && n_records == 0 && payload_bytes == 0) {
      stats_.eof_seen = true;
      stats_.bytes_consumed += frame;
      parse_at_ += frame;
      out.progressed = true;
      break;
    }
    if (ok && (type == kChunkTypeMarkers || type == kChunkTypeSamples ||
               type == kChunkTypeWaitEdges ||
               is_compressed_chunk_type(type))) {
      const std::size_t m0 = out.data.markers.size();
      const std::size_t s0 = out.data.samples.size();
      const std::size_t w0 = out.data.wait_edges.size();
      try {
        const V2ChunkRef ref{parse_at_, type, n_records, payload_bytes};
        decode_trace_v2_chunk(v, ref, out.data);
      } catch (const TraceIoError&) {
        out.data.markers.resize(m0);
        out.data.samples.resize(s0);
        out.data.wait_edges.resize(w0);
        ok = false;
      }
      if (ok) {
        ++stats_.chunks_observed;
        if (finishing) {
          ++stats_.chunks_salvaged;
          out.salvage = true;
          FollowMetrics::get().salvaged.inc();
        } else {
          ++stats_.chunks_consumed;
          FollowMetrics::get().chunks.inc();
        }
        stats_.records_markers += out.data.markers.size() - m0;
        stats_.records_samples += out.data.samples.size() - s0;
        stats_.records_wait_edges += out.data.wait_edges.size() - w0;
        stats_.bytes_consumed += frame;
        ++out.chunks;
        out.progressed = true;
        parse_at_ += frame;
        continue;
      }
    } else if (ok) {
      ok = false; // unknown chunk type (or malformed eof sentinel)
    }
    // Valid header, damaged payload/records: the frame is fully present,
    // so waiting cannot heal it (appends never rewrite). Skip it whole.
    ++stats_.chunks_observed;
    ++stats_.chunks_torn;
    ++stats_.resyncs;
    stats_.bytes_skipped += frame;
    FollowMetrics::get().torn.inc();
    FollowMetrics::get().resyncs.inc();
    parse_at_ += frame;
  }
  drop_consumed_prefix();
}

void TraceFollower::finish_with_salvage(FollowFinish reason, PollResult& out) {
  if (finish_ != FollowFinish::None) return;
  finish_ = reason;
  out.finished = true;

  // Best-effort final drain: pick up anything the producer managed to
  // make durable before dying (bounded attempts; failures are final).
  if (reason != FollowFinish::SourceFatal) {
    for (std::uint32_t t = 0; t < cfg_.max_read_attempts; ++t) {
      const ByteSource::SizeResult sz = source_->size();
      if (sz.status == ReadStatus::Transient) {
        ++stats_.read_transients;
        continue;
      }
      if (sz.status != ReadStatus::Ok || sz.size <= read_pos_) break;
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(sz.size - read_pos_, kReadGranule));
      const std::size_t old = buf_.size();
      buf_.resize(old + want);
      const ByteSource::ReadResult r =
          source_->read_at(read_pos_, buf_.data() + old, want);
      if (r.status != ReadStatus::Ok) {
        buf_.resize(old);
        if (r.status == ReadStatus::Transient) {
          ++stats_.read_transients;
          continue;
        }
        break;
      }
      buf_.resize(old + r.n);
      if (r.n == 0) break;
      read_pos_ += r.n;
    }
  }

  // Final pass: complete valid frames are salvaged, the leftover is the
  // torn tail the writer never committed.
  parse_committed(0, out);
  const std::size_t leftover = buf_.size() - parse_at_;
  if (leftover > 0) {
    stats_.bytes_torn += leftover;
    if (stats_.header_seen) {
      // The tail is a partial chunk frame — the mid-chunk kill the
      // ledger must attribute as exactly one torn chunk.
      ++stats_.chunks_observed;
      ++stats_.chunks_torn;
      FollowMetrics::get().torn.inc();
    }
  }
  buf_.clear();
  parse_at_ = 0;
}

TraceFollower::PollResult TraceFollower::poll(std::uint64_t now_ns) {
  PollResult out;
  if (finished()) {
    out.finished = true;
    return out;
  }
  ++stats_.polls;
  if (!clock_seen_) {
    clock_seen_ = true;
    progress_at_ns_ = now_ns;
  }

  if (now_ns >= retry_at_ns_) {
    // Size query, with bounded in-poll retries on transient failure.
    ByteSource::SizeResult sz;
    std::uint32_t tries = 0;
    for (;;) {
      sz = source_->size();
      if (sz.status != ReadStatus::Transient) break;
      ++stats_.read_transients;
      FollowMetrics::get().transients.inc();
      if (++tries >= cfg_.max_read_attempts) break;
    }
    if (sz.status == ReadStatus::Fatal) {
      finish_with_salvage(FollowFinish::SourceFatal, out);
      return out;
    }
    if (sz.status == ReadStatus::Transient) {
      ++attempts_;
      const std::uint64_t d = backoff_delay();
      stats_.backoff_ns += d;
      retry_at_ns_ = now_ns + d;
    } else {
      if (sz.size > read_pos_) {
        if (!ingest(now_ns, sz.size, out)) {
          if (finished()) return out;
        }
      }
      parse_committed(now_ns, out);
      if (finished()) return out;
      if (stats_.eof_seen) {
        finish_with_salvage(FollowFinish::CleanEof, out);
        return out;
      }
    }
  }

  if (out.progressed) {
    note_progress(now_ns);
  } else if (now_ns - progress_at_ns_ >= cfg_.liveness_timeout_ns) {
    if (cfg_.producer_alive && cfg_.producer_alive()) {
      // The probe vouches for the writer: it is alive but idle. Restart
      // the watchdog window instead of declaring death.
      note_progress(now_ns);
    } else {
      finish_with_salvage(FollowFinish::ProducerDeath, out);
    }
  }
  return out;
}

TraceFollower::PollResult TraceFollower::stop(std::uint64_t now_ns) {
  PollResult out;
  (void)now_ns;
  if (finished()) {
    out.finished = true;
    return out;
  }
  finish_with_salvage(FollowFinish::Stopped, out);
  return out;
}

} // namespace fluxtrace::io
