// Compact trace encoding ("FLXZ"): the production format for the raw
// stream whose volume §IV-C3 worries about. Exploits the streams'
// structure instead of storing fixed 96-byte records:
//
//   * records sorted by (core, time); timestamps delta-encoded;
//   * all integers LEB128 varints (a 1 µs sample gap is 2 bytes, not 8);
//   * GPRs reduced to the registers a consumer can use (R13, the §V-A
//     item-id register) — the full file format keeps everything, this one
//     keeps what analyses read.
//
// Typical effect: ~6-10x smaller than the "FLXT" container for real
// streams (measured in the round-trip tests). Lossy only in the GPRs
// other than R13 (documented; choose write_trace() when they matter).
#pragma once

#include <iosfwd>

#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {

inline constexpr std::uint32_t kCompactMagic = 0x5a584c46; // "FLXZ"
inline constexpr std::uint32_t kCompactVersion = 1;

/// Serialize compactly. Records are re-sorted internally by (core, tsc);
/// read_compact returns them in that order.
void write_compact(std::ostream& os, const TraceData& data);

/// File-path convenience; errors carry the path and errno context.
void save_compact(const std::string& path, const TraceData& data);

// The legacy readers (read_compact, load_compact) moved to the
// io-internal io/legacy.hpp; open traces via io::open_trace()
// (io/trace_reader.hpp), which autodetects every container.

/// Size in bytes write_compact would produce (for volume accounting).
[[nodiscard]] std::uint64_t compact_size(const TraceData& data);

} // namespace fluxtrace::io
