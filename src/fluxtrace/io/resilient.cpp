#include "fluxtrace/io/resilient.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::io {

namespace {

// Self-telemetry: the spool's own degradation story — committed vs
// dropped vs lost, how often it had to retry or fail over.
struct SpoolMetrics {
  obs::Counter& committed = obs::metrics().counter("io.spool.chunks_committed");
  obs::Counter& retries = obs::metrics().counter("io.spool.retries");
  obs::Counter& failovers = obs::metrics().counter("io.spool.failovers");
  obs::Counter& dropped = obs::metrics().counter("io.spool.records_dropped");
  obs::Counter& lost = obs::metrics().counter("io.spool.records_lost");
  obs::Gauge& depth = obs::metrics().gauge("io.spool.queue_depth");

  static SpoolMetrics& get() {
    static SpoolMetrics m;
    return m;
  }
};

// splitmix64, the same deterministic stream generator sim::FaultPlan
// uses; the writer only needs it for backoff jitter.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Bounded no-progress rounds for the drain loops in close()/Block
/// enqueue: each round performs at least one real write attempt (which
/// advances any write-indexed fault schedule), so a bound this size only
/// trips when a sink is genuinely unrecoverable.
constexpr std::size_t kStallLimit = 10'000;

} // namespace

const char* to_string(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::Block: return "block";
    case OverflowPolicy::DropOldest: return "drop-oldest";
    case OverflowPolicy::DropNewest: return "drop-newest";
  }
  return "?";
}

// --- FileSpoolSink ------------------------------------------------------

FileSpoolSink::FileSpoolSink(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
}

FileSpoolSink::~FileSpoolSink() {
  if (fd_ >= 0) ::close(fd_);
}

SinkResult FileSpoolSink::write(const char* data, std::size_t len) {
  if (fd_ < 0) return {SinkStatus::Fatal, 0};
  const ssize_t n = ::write(fd_, data, len);
  if (n >= 0) return {SinkStatus::Ok, static_cast<std::size_t>(n)};
  if (errno == EINTR || errno == EAGAIN) return {SinkStatus::Transient, 0};
  return {SinkStatus::Fatal, 0};
}

bool FileSpoolSink::sync() {
  return fd_ >= 0 && ::fsync(fd_) == 0;
}

// --- FaultableSink ------------------------------------------------------

SinkResult FaultableSink::write(const char* data, std::size_t len) {
  const SinkFault f = fault_ ? fault_(len) : SinkFault::None;
  last_faulted_ = f != SinkFault::None;
  switch (f) {
    case SinkFault::None: return inner_->write(data, len);
    case SinkFault::Transient:
    case SinkFault::Stuck: return {SinkStatus::Transient, 0};
    case SinkFault::NoSpace: return {SinkStatus::Fatal, 0};
  }
  return {SinkStatus::Fatal, 0};
}

bool FaultableSink::sync() {
  // A write the injector failed never reached the device; the paired
  // barrier has nothing to make durable and must not mask the fault.
  if (last_faulted_) return false;
  return inner_->sync();
}

// --- ResilientWriter ----------------------------------------------------

ResilientWriter::ResilientWriter(ResilientWriterConfig cfg,
                                 std::unique_ptr<SpoolSink> primary,
                                 std::unique_ptr<SpoolSink> secondary)
    : cfg_(cfg), jitter_state_(cfg.jitter_seed) {
  if (cfg_.records_per_chunk == 0) cfg_.records_per_chunk = 1;
  if (cfg_.queue_chunks == 0) cfg_.queue_chunks = 1;
  if (cfg_.max_attempts == 0) cfg_.max_attempts = 1;
  if (cfg_.breaker_strikes == 0) cfg_.breaker_strikes = 1;
  sinks_[0].sink = std::move(primary);
  sinks_[1].sink = std::move(secondary);
  n_sinks_ = sinks_[1].sink ? 2 : 1;
}

std::string ResilientWriter::active_sink_name() const {
  return sinks_[active_].sink->describe();
}

std::uint64_t ResilientWriter::backoff_delay(std::uint32_t attempt) {
  const std::uint32_t shift = attempt > 0 ? attempt - 1 : 0;
  std::uint64_t d = shift >= 63 ? cfg_.backoff_cap_ns
                                : cfg_.backoff_base_ns << shift;
  if (d > cfg_.backoff_cap_ns) d = cfg_.backoff_cap_ns;
  if (cfg_.backoff_base_ns > 0) {
    d += next_u64(jitter_state_) % cfg_.backoff_base_ns;
  }
  return d;
}

bool ResilientWriter::sink_usable(const SinkState& s,
                                  std::uint64_t now_ns) const {
  if (!s.sink || s.fatal) return false;
  if (!s.open) return true;
  // Half-open: after the cooldown one probe chunk is allowed through.
  return now_ns - s.opened_at_ns >= cfg_.breaker_cooldown_ns;
}

bool ResilientWriter::strike_active(std::uint64_t now_ns, bool fatal) {
  SinkState& s = sinks_[active_];
  if (fatal) {
    s.fatal = true;
    s.open = true;
    s.opened_at_ns = now_ns;
    ++stats_.breaker_opens;
  } else {
    ++s.strikes;
    if (s.strikes >= cfg_.breaker_strikes) {
      if (!s.open) ++stats_.breaker_opens;
      s.open = true;
      s.opened_at_ns = now_ns; // re-arms the cooldown on a failed probe
      s.strikes = 0;
    }
  }
  if (sink_usable(s, now_ns)) return true;
  for (std::size_t i = 0; i < n_sinks_; ++i) {
    if (i == active_) continue;
    if (sink_usable(sinks_[i], now_ns)) {
      active_ = i;
      stats_.active_sink = static_cast<std::uint32_t>(i);
      ++stats_.failovers;
      SpoolMetrics::get().failovers.inc();
      // The in-flight chunk restarts from byte 0 on the new spool; the
      // abandoned sink may keep a torn (never synced) copy, which
      // salvage discards as damage.
      if (!queue_.empty()) queue_.front().written = 0;
      return true;
    }
  }
  stats_.exhausted = true;
  return false;
}

bool ResilientWriter::commit_head(std::uint64_t now_ns) {
  if (queue_.empty()) return false;
  stats_.exhausted = false;
  if (!sink_usable(sinks_[active_], now_ns)) {
    // Active circuit open: look for any usable sink (cooldown-elapsed
    // circuits count — that is the half-open probe).
    std::size_t found = n_sinks_;
    for (std::size_t i = 0; i < n_sinks_; ++i) {
      if (sink_usable(sinks_[i], now_ns)) {
        found = i;
        break;
      }
    }
    if (found == n_sinks_) {
      stats_.exhausted = true;
      return false;
    }
    if (found != active_) {
      active_ = found;
      stats_.active_sink = static_cast<std::uint32_t>(found);
      ++stats_.failovers;
      SpoolMetrics::get().failovers.inc();
      queue_.front().written = 0;
    }
  }

  SinkState& s = sinks_[active_];
  StagedChunk& head = queue_.front();

  // Lazily prefix each spool with the 8-byte v2 file header. Folded into
  // the same attempt so header write errors take the same retry path, and
  // resumed at a byte offset like chunk payloads: a short header write
  // already landed its prefix on the device, so rewriting from byte 0
  // would corrupt the file.
  if (const std::string hdr = encode_v2_file_header();
      s.header_bytes < hdr.size()) {
    while (s.header_bytes < hdr.size()) {
      const SinkResult r = s.sink->write(hdr.data() + s.header_bytes,
                                         hdr.size() - s.header_bytes);
      if (r.status == SinkStatus::Ok && r.written > 0) {
        s.header_bytes += r.written;
        continue;
      }
      ++attempts_;
      ++stats_.retries;
      SpoolMetrics::get().retries.inc();
      if (r.status == SinkStatus::Fatal || attempts_ >= cfg_.max_attempts) {
        attempts_ = 0;
        strike_active(now_ns, r.status == SinkStatus::Fatal);
      } else {
        const std::uint64_t d = backoff_delay(attempts_);
        stats_.backoff_ns += d;
        retry_at_ns_ = now_ns + d;
      }
      return false;
    }
  }

  // Chunk payload, resuming after any earlier short write.
  while (head.written < head.bytes.size()) {
    const SinkResult r = s.sink->write(head.bytes.data() + head.written,
                                       head.bytes.size() - head.written);
    if (r.status == SinkStatus::Ok && r.written > 0) {
      head.written += r.written;
      continue; // a short write is progress, not a failure
    }
    ++attempts_;
    ++stats_.retries;
    SpoolMetrics::get().retries.inc();
    if (r.status == SinkStatus::Fatal || attempts_ >= cfg_.max_attempts) {
      attempts_ = 0;
      strike_active(now_ns, r.status == SinkStatus::Fatal);
    } else {
      const std::uint64_t d = backoff_delay(attempts_);
      stats_.backoff_ns += d;
      retry_at_ns_ = now_ns + d;
    }
    return false;
  }

  // Chunk-boundary durability barrier.
  if (cfg_.sync_each_chunk && !s.sink->sync()) {
    ++stats_.sync_failures;
    ++attempts_;
    ++stats_.retries;
    SpoolMetrics::get().retries.inc();
    if (attempts_ >= cfg_.max_attempts) {
      attempts_ = 0;
      strike_active(now_ns, false);
    } else {
      const std::uint64_t d = backoff_delay(attempts_);
      stats_.backoff_ns += d;
      retry_at_ns_ = now_ns + d;
    }
    return false;
  }

  // Committed: the chunk is on stable storage.
  stats_.records_committed += head.records;
  ++stats_.chunks_committed;
  SpoolMetrics::get().committed.inc();
  SpoolMetrics::get().depth.sub(1);
  queue_.pop_front();
  attempts_ = 0;
  retry_at_ns_ = 0;
  s.strikes = 0;
  s.open = false; // success heals the circuit
  stats_.queue_depth = queue_.size();
  return true;
}

void ResilientWriter::stage(StagedChunk&& chunk, std::uint64_t now_ns) {
  ++stats_.chunks_enqueued;
  stats_.records_enqueued += chunk.records;

  if (queue_.size() >= cfg_.queue_chunks) {
    switch (cfg_.overflow) {
      case OverflowPolicy::Block: {
        // Backpressure: drain synchronously, charging any backoff to the
        // virtual clock instead of sleeping. Only a sink that stays
        // unusable converts the block into counted drops.
        ++stats_.blocked_enqueues;
        std::uint64_t virtual_now = now_ns;
        std::size_t stalls = 0;
        while (queue_.size() >= cfg_.queue_chunks && stalls < kStallLimit) {
          if (virtual_now < retry_at_ns_) virtual_now = retry_at_ns_;
          if (commit_head(virtual_now)) {
            stalls = 0;
          } else if (stats_.exhausted) {
            break;
          } else {
            ++stalls;
          }
        }
        if (queue_.size() < cfg_.queue_chunks) break;
        [[fallthrough]]; // no sink can make progress: shed the oldest
      }
      case OverflowPolicy::DropOldest: {
        // Never evict a chunk that already has bytes on the device (a
        // resumed partial write must finish or the spool tears); take
        // the oldest un-started chunk instead.
        std::size_t victim = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          if (queue_[i].written == 0) {
            victim = i;
            break;
          }
        }
        if (victim == queue_.size()) { // everything in flight: refuse new
          stats_.records_dropped_queue += chunk.records;
          ++stats_.chunks_dropped_queue;
          SpoolMetrics::get().dropped.inc(chunk.records);
          return;
        }
        stats_.records_dropped_queue += queue_[victim].records;
        ++stats_.chunks_dropped_queue;
        SpoolMetrics::get().dropped.inc(queue_[victim].records);
        SpoolMetrics::get().depth.sub(1);
        if (victim == 0) attempts_ = 0;
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
        break;
      }
      case OverflowPolicy::DropNewest:
        stats_.records_dropped_queue += chunk.records;
        ++stats_.chunks_dropped_queue;
        SpoolMetrics::get().dropped.inc(chunk.records);
        return;
    }
  }

  queue_.push_back(std::move(chunk));
  SpoolMetrics::get().depth.add(1);
  stats_.queue_depth = queue_.size();
}

void ResilientWriter::add_markers(const Marker* ms, std::size_t n,
                                  std::uint64_t now_ns) {
  marker_buf_.insert(marker_buf_.end(), ms, ms + n);
  std::size_t at = 0;
  while (marker_buf_.size() - at >= cfg_.records_per_chunk) {
    StagedChunk c;
    c.bytes = encode_marker_chunk(marker_buf_.data() + at,
                                  cfg_.records_per_chunk);
    c.records = cfg_.records_per_chunk;
    stage(std::move(c), now_ns);
    at += cfg_.records_per_chunk;
  }
  marker_buf_.erase(marker_buf_.begin(),
                    marker_buf_.begin() + static_cast<std::ptrdiff_t>(at));
}

void ResilientWriter::add_samples(const PebsSample* ss, std::size_t n,
                                  std::uint64_t now_ns) {
  sample_buf_.insert(sample_buf_.end(), ss, ss + n);
  std::size_t at = 0;
  while (sample_buf_.size() - at >= cfg_.records_per_chunk) {
    StagedChunk c;
    c.bytes = encode_sample_chunk(sample_buf_.data() + at,
                                  cfg_.records_per_chunk);
    c.records = cfg_.records_per_chunk;
    stage(std::move(c), now_ns);
    at += cfg_.records_per_chunk;
  }
  sample_buf_.erase(sample_buf_.begin(),
                    sample_buf_.begin() + static_cast<std::ptrdiff_t>(at));
}

void ResilientWriter::add_wait_edges(const WaitEdge* es, std::size_t n,
                                     std::uint64_t now_ns) {
  // A supervisor may report its final backpressure interval while
  // winding down, after close() sealed the spool; there is no file to
  // put it in any more, so drop it rather than corrupt the ledger.
  if (closed_) return;
  wait_buf_.insert(wait_buf_.end(), es, es + n);
  std::size_t at = 0;
  while (wait_buf_.size() - at >= cfg_.records_per_chunk) {
    StagedChunk c;
    c.bytes = encode_wait_chunk(wait_buf_.data() + at, cfg_.records_per_chunk);
    c.records = cfg_.records_per_chunk;
    stage(std::move(c), now_ns);
    at += cfg_.records_per_chunk;
  }
  wait_buf_.erase(wait_buf_.begin(),
                  wait_buf_.begin() + static_cast<std::ptrdiff_t>(at));
}

std::size_t ResilientWriter::pump(std::uint64_t now_ns) {
  std::size_t committed = 0;
  while (!queue_.empty()) {
    if (backing_off(now_ns)) break;
    if (!commit_head(now_ns)) break;
    ++committed;
  }
  stats_.queue_depth = queue_.size();
  return committed;
}

bool ResilientWriter::close(std::uint64_t now_ns) {
  if (closed_) return stats_.closed_clean;
  closed_ = true;

  // Flush the partial chunks under construction.
  if (!marker_buf_.empty()) {
    StagedChunk c;
    c.bytes = encode_marker_chunk(marker_buf_.data(), marker_buf_.size());
    c.records = marker_buf_.size();
    marker_buf_.clear();
    stage(std::move(c), now_ns);
  }
  if (!sample_buf_.empty()) {
    StagedChunk c;
    c.bytes = encode_sample_chunk(sample_buf_.data(), sample_buf_.size());
    c.records = sample_buf_.size();
    sample_buf_.clear();
    stage(std::move(c), now_ns);
  }
  if (!wait_buf_.empty()) {
    StagedChunk c;
    c.bytes = encode_wait_chunk(wait_buf_.data(), wait_buf_.size());
    c.records = wait_buf_.size();
    wait_buf_.clear();
    stage(std::move(c), now_ns);
  }

  // Drain, charging backoff to a local virtual clock (close never
  // sleeps). Bounded: every round performs a real write attempt.
  std::uint64_t virtual_now = now_ns;
  std::size_t stalls = 0;
  while (!queue_.empty() && stalls < kStallLimit) {
    if (virtual_now < retry_at_ns_) virtual_now = retry_at_ns_;
    if (commit_head(virtual_now)) {
      stalls = 0;
    } else if (stats_.exhausted) {
      break;
    } else {
      ++stalls;
    }
  }

  // Whatever no sink would take is lost — counted, never silent.
  for (const StagedChunk& c : queue_) {
    stats_.records_lost_sink += c.records;
    ++stats_.chunks_lost_sink;
    SpoolMetrics::get().lost.inc(c.records);
    SpoolMetrics::get().depth.sub(1);
  }
  const bool drained = queue_.empty();
  queue_.clear();
  stats_.queue_depth = 0;

  if (drained) {
    // The eof sentinel marks a clean close; a crash before this point
    // leaves a salvageable file that is *known* incomplete.
    StagedChunk eof;
    eof.bytes = encode_eof_chunk();
    eof.records = 0;
    ++stats_.chunks_enqueued; // keep the chunk ledger balanced
    queue_.push_back(std::move(eof));
    SpoolMetrics::get().depth.add(1);
    stalls = 0;
    while (!queue_.empty() && stalls < kStallLimit) {
      if (virtual_now < retry_at_ns_) virtual_now = retry_at_ns_;
      if (commit_head(virtual_now)) {
        stalls = 0;
      } else if (stats_.exhausted) {
        break;
      } else {
        ++stalls;
      }
    }
    if (queue_.empty()) {
      stats_.closed_clean = true;
    } else {
      ++stats_.chunks_lost_sink; // the sentinel itself
      SpoolMetrics::get().depth.sub(1);
      queue_.clear();
    }
  }
  stats_.queue_depth = 0;
  return stats_.closed_clean;
}

} // namespace fluxtrace::io
