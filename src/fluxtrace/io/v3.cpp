#include "fluxtrace/io/v3.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "fluxtrace/codec/column.hpp"
#include "fluxtrace/io/chunk_util.hpp"
#include "fluxtrace/io/trace_file.hpp"

namespace fluxtrace::io {
namespace {

using codec::ColumnCodec;
using detail::app_u8;
using detail::app_u32;
using detail::app_u64;
using detail::peek_u8;
using detail::peek_u32;
using detail::peek_u64;

// Column layouts. The time column (min/max zone hint source) is column 0
// of every compressed type.
constexpr std::size_t kSampleCols = 3 + kNumRegs; // ts, ip, core, 16 GPRs
constexpr std::size_t kMarkerCols = 4;            // ts, item, core, kind
constexpr std::size_t kWaitCols = 7; // enter, leave, item, waiter, holder,
                                     // resource, cause

constexpr std::size_t kPayloadHeaderBytes = 4 + 8 + 8 + 1; // flags,min,max,n
constexpr std::size_t kColumnHeaderBytes = 1 + 1 + 4 + 4;  // id,codec,len,crc

// Fixed-width footprint of each column in the v2 row encoding, for the
// compression accounting in v3_compression_stats().
constexpr std::uint64_t kSampleColRaw[kSampleCols] = {
    8, 8, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8};
constexpr std::uint64_t kMarkerColRaw[kMarkerCols] = {8, 8, 4, 1};
constexpr std::uint64_t kWaitColRaw[kWaitCols] = {8, 8, 8, 4, 4, 4, 1};

[[nodiscard]] std::int64_t as_i64(std::uint64_t v) {
  return static_cast<std::int64_t>(v);
}
[[nodiscard]] std::uint64_t as_u64(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

[[nodiscard]] bool fits_u32(std::int64_t v) {
  return as_u64(v) <= 0xffffffffull;
}

std::size_t column_count_for(std::uint8_t type) {
  switch (type) {
    case kChunkTypeSamplesC: return kSampleCols;
    case kChunkTypeMarkersC: return kMarkerCols;
    case kChunkTypeWaitEdgesC: return kWaitCols;
    default: return 0;
  }
}

// --- encode -----------------------------------------------------------

/// Shared payload builder: columns are already gathered; column 0 is the
/// time column the zone hint summarizes.
[[nodiscard]] std::string encode_compressed_payload(
    const std::vector<std::vector<std::int64_t>>& cols) {
  const auto& ts = cols[0];
  std::int64_t min_ts = ts[0];
  std::int64_t max_ts = ts[0];
  for (std::int64_t v : ts) {
    min_ts = std::min(min_ts, v);
    max_ts = std::max(max_ts, v);
  }
  std::string payload;
  app_u32(payload, 0); // flags: none defined yet
  app_u64(payload, as_u64(min_ts));
  app_u64(payload, as_u64(max_ts));
  app_u8(payload, static_cast<std::uint8_t>(cols.size()));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const codec::EncodedColumn enc = codec::encode_column_best(cols[c]);
    app_u8(payload, static_cast<std::uint8_t>(c));
    app_u8(payload, static_cast<std::uint8_t>(enc.codec));
    app_u32(payload, static_cast<std::uint32_t>(enc.bytes.size()));
    app_u32(payload, crc32(enc.bytes.data(), enc.bytes.size()));
    payload += enc.bytes;
  }
  return payload;
}

void check_chunk_count(std::size_t n) {
  if (n == 0 || n > detail::kMaxRecordsPerChunk) {
    throw std::invalid_argument(
        "v3 chunk record count out of range: " + std::to_string(n));
  }
}

// --- decode -----------------------------------------------------------

struct ColRef {
  std::uint8_t codec = 0;
  std::uint32_t crc = 0;
  std::string_view bytes;
};

/// Parse the payload skeleton without decoding any column. Enforces the
/// record cap, zero flags, the exact expected column count, canonical
/// ascending column ids, and that the trailing column consumes the
/// payload exactly.
[[nodiscard]] bool parse_compressed_payload(std::string_view payload,
                                            std::size_t expect_cols,
                                            std::uint32_t n_records,
                                            ColRef* cols) {
  if (n_records == 0 || n_records > detail::kMaxRecordsPerChunk) return false;
  if (payload.size() < kPayloadHeaderBytes) return false;
  if (peek_u32(payload, 0) != 0) return false; // unknown flag bits
  if (peek_u8(payload, 20) != expect_cols) return false;
  std::size_t pos = kPayloadHeaderBytes;
  for (std::size_t c = 0; c < expect_cols; ++c) {
    if (payload.size() - pos < kColumnHeaderBytes) return false;
    if (peek_u8(payload, pos) != c) return false;
    cols[c].codec = peek_u8(payload, pos + 1);
    const std::uint32_t enc_bytes = peek_u32(payload, pos + 2);
    cols[c].crc = peek_u32(payload, pos + 6);
    pos += kColumnHeaderBytes;
    if (payload.size() - pos < enc_bytes) return false;
    cols[c].bytes = payload.substr(pos, enc_bytes);
    pos += enc_bytes;
  }
  return pos == payload.size();
}

/// Decode one column, CRC first. `out` must hold n values.
[[nodiscard]] bool decode_col(const ColRef& c, std::uint32_t n,
                              std::int64_t* out) {
  if (c.codec >= codec::kNumColumnCodecs) return false;
  if (crc32(c.bytes.data(), c.bytes.size()) != c.crc) return false;
  return codec::decode_column(static_cast<ColumnCodec>(c.codec), c.bytes, n,
                              out);
}

[[nodiscard]] bool decode_samples_c(std::string_view payload, std::uint32_t n,
                                    SampleVec& out) {
  ColRef cols[kSampleCols];
  if (!parse_compressed_payload(payload, kSampleCols, n, cols)) return false;
  const std::size_t base = out.size();
  out.resize(base + n);
  std::vector<std::int64_t> tmp(n);
  for (std::size_t c = 0; c < kSampleCols; ++c) {
    if (!decode_col(cols[c], n, tmp.data())) {
      out.resize(base);
      return false;
    }
    switch (c) {
      case 0:
        for (std::uint32_t i = 0; i < n; ++i) {
          out[base + i].tsc = as_u64(tmp[i]);
        }
        break;
      case 1:
        for (std::uint32_t i = 0; i < n; ++i) {
          out[base + i].ip = as_u64(tmp[i]);
        }
        break;
      case 2:
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!fits_u32(tmp[i])) {
            out.resize(base);
            return false;
          }
          out[base + i].core = static_cast<std::uint32_t>(tmp[i]);
        }
        break;
      default:
        for (std::uint32_t i = 0; i < n; ++i) {
          out[base + i].regs.v[c - 3] = as_u64(tmp[i]);
        }
        break;
    }
  }
  return true;
}

[[nodiscard]] bool decode_markers_c(std::string_view payload, std::uint32_t n,
                                    std::vector<Marker>& out) {
  ColRef cols[kMarkerCols];
  if (!parse_compressed_payload(payload, kMarkerCols, n, cols)) return false;
  std::vector<std::int64_t> ts(n), item(n), core(n), kind(n);
  if (!decode_col(cols[0], n, ts.data()) ||
      !decode_col(cols[1], n, item.data()) ||
      !decode_col(cols[2], n, core.data()) ||
      !decode_col(cols[3], n, kind.data())) {
    return false;
  }
  const std::size_t base = out.size();
  out.resize(base + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!fits_u32(core[i]) ||
        as_u64(kind[i]) >
            static_cast<std::uint64_t>(MarkerKind::Leave)) {
      out.resize(base);
      return false;
    }
    Marker& m = out[base + i];
    m.tsc = as_u64(ts[i]);
    m.item = as_u64(item[i]);
    m.core = static_cast<std::uint32_t>(core[i]);
    m.kind = static_cast<MarkerKind>(kind[i]);
  }
  return true;
}

[[nodiscard]] bool decode_wait_edges_c(std::string_view payload,
                                       std::uint32_t n,
                                       std::vector<WaitEdge>& out) {
  ColRef cols[kWaitCols];
  if (!parse_compressed_payload(payload, kWaitCols, n, cols)) return false;
  std::vector<std::vector<std::int64_t>> v(kWaitCols);
  for (std::size_t c = 0; c < kWaitCols; ++c) {
    v[c].resize(n);
    if (!decode_col(cols[c], n, v[c].data())) return false;
  }
  const std::size_t base = out.size();
  out.resize(base + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!fits_u32(v[3][i]) || !fits_u32(v[4][i]) || !fits_u32(v[5][i]) ||
        as_u64(v[6][i]) >= kNumWaitCauses) {
      out.resize(base);
      return false;
    }
    WaitEdge& e = out[base + i];
    e.enter = as_u64(v[0][i]);
    e.leave = as_u64(v[1][i]);
    e.item = as_u64(v[2][i]);
    e.waiter_core = static_cast<std::uint32_t>(v[3][i]);
    e.holder_core = static_cast<std::uint32_t>(v[4][i]);
    e.resource = static_cast<std::uint32_t>(v[5][i]);
    e.cause = static_cast<WaitCause>(v[6][i]);
  }
  return true;
}

/// Bounds- and CRC-check a compressed chunk ref against the file image
/// and return its payload. Throws TraceIoError.
[[nodiscard]] std::string_view checked_payload(std::string_view file,
                                               const V2ChunkRef& ref) {
  if (!is_compressed_chunk_type(ref.type)) {
    throw TraceIoError("not a compressed chunk at offset " +
                       std::to_string(ref.offset));
  }
  if (ref.offset > file.size() ||
      file.size() - ref.offset <
          detail::kChunkHeaderBytes + static_cast<std::size_t>(
                                          ref.payload_bytes)) {
    throw TraceIoError("chunk ref outside file at offset " +
                       std::to_string(ref.offset));
  }
  const std::string_view payload =
      file.substr(ref.offset + detail::kChunkHeaderBytes, ref.payload_bytes);
  if (crc32(payload.data(), payload.size()) != peek_u32(file, ref.offset + 17)) {
    throw TraceIoError("payload CRC mismatch at offset " +
                       std::to_string(ref.offset));
  }
  return payload;
}

} // namespace

std::string encode_v3_file_header() {
  std::string header;
  app_u32(header, kTraceMagic);
  app_u32(header, kTraceVersion3);
  return header;
}

std::string encode_sample_chunk_v3(const PebsSample* ss, std::size_t n) {
  check_chunk_count(n);
  std::vector<std::vector<std::int64_t>> cols(kSampleCols);
  for (auto& c : cols) c.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cols[0][i] = as_i64(ss[i].tsc);
    cols[1][i] = as_i64(ss[i].ip);
    cols[2][i] = static_cast<std::int64_t>(ss[i].core);
    for (std::size_t r = 0; r < kNumRegs; ++r) {
      cols[3 + r][i] = as_i64(ss[i].regs.v[r]);
    }
  }
  return detail::make_chunk(kChunkTypeSamplesC, static_cast<std::uint32_t>(n),
                            encode_compressed_payload(cols));
}

std::string encode_marker_chunk_v3(const Marker* ms, std::size_t n) {
  check_chunk_count(n);
  std::vector<std::vector<std::int64_t>> cols(kMarkerCols);
  for (auto& c : cols) c.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cols[0][i] = as_i64(ms[i].tsc);
    cols[1][i] = as_i64(ms[i].item);
    cols[2][i] = static_cast<std::int64_t>(ms[i].core);
    cols[3][i] = static_cast<std::int64_t>(ms[i].kind);
  }
  return detail::make_chunk(kChunkTypeMarkersC, static_cast<std::uint32_t>(n),
                            encode_compressed_payload(cols));
}

std::string encode_wait_chunk_v3(const WaitEdge* es, std::size_t n) {
  check_chunk_count(n);
  std::vector<std::vector<std::int64_t>> cols(kWaitCols);
  for (auto& c : cols) c.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cols[0][i] = as_i64(es[i].enter);
    cols[1][i] = as_i64(es[i].leave);
    cols[2][i] = as_i64(es[i].item);
    cols[3][i] = static_cast<std::int64_t>(es[i].waiter_core);
    cols[4][i] = static_cast<std::int64_t>(es[i].holder_core);
    cols[5][i] = static_cast<std::int64_t>(es[i].resource);
    cols[6][i] = static_cast<std::int64_t>(es[i].cause);
  }
  return detail::make_chunk(kChunkTypeWaitEdgesC,
                            static_cast<std::uint32_t>(n),
                            encode_compressed_payload(cols));
}

void write_trace_v3(std::ostream& os, const TraceData& data,
                    std::size_t records_per_chunk) {
  if (records_per_chunk == 0) records_per_chunk = 1;
  records_per_chunk =
      std::min<std::size_t>(records_per_chunk, detail::kMaxRecordsPerChunk);
  const auto check = [&os](const char* section) {
    if (os.good()) return;
    std::string msg = std::string("write failed (") + section + ")";
    if (errno != 0) msg += std::string(": ") + std::strerror(errno);
    throw TraceIoError(msg);
  };
  errno = 0;
  const std::string header = encode_v3_file_header();
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  check("header");

  const auto put = [&os](const std::string& chunk) {
    os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  };
  for (std::size_t at = 0; at < data.markers.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.markers.size() - at);
    put(encode_marker_chunk_v3(data.markers.data() + at, n));
  }
  check("marker chunks");
  for (std::size_t at = 0; at < data.samples.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.samples.size() - at);
    put(encode_sample_chunk_v3(data.samples.data() + at, n));
  }
  check("sample chunks");
  for (std::size_t at = 0; at < data.wait_edges.size();
       at += records_per_chunk) {
    const std::size_t n =
        std::min(records_per_chunk, data.wait_edges.size() - at);
    put(encode_wait_chunk_v3(data.wait_edges.data() + at, n));
  }
  check("wait-edge chunks");
  // Same torn-write sentinel as v2.
  put(detail::make_chunk(kChunkTypeEof, 0, std::string{}));
  os.flush();
  check("eof chunk");
}

void save_trace_v3(const std::string& path, const TraceData& data,
                   std::size_t records_per_chunk) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw TraceIoError("cannot open for writing: " + path + ": " +
                       std::strerror(errno));
  }
  try {
    write_trace_v3(os, data, records_per_chunk);
  } catch (const TraceIoError& e) {
    throw TraceIoError(std::string(e.what()) + ": " + path);
  }
  os.close();
}

bool decode_compressed_chunk(std::uint8_t type, std::string_view payload,
                             std::uint32_t n_records, TraceData& out) {
  switch (type) {
    case kChunkTypeSamplesC:
      return decode_samples_c(payload, n_records, out.samples);
    case kChunkTypeMarkersC:
      return decode_markers_c(payload, n_records, out.markers);
    case kChunkTypeWaitEdgesC:
      return decode_wait_edges_c(payload, n_records, out.wait_edges);
    default:
      return false;
  }
}

void decode_v3_samples_into(std::string_view file, const V2ChunkRef& ref,
                            const SampleColumnSlice& out) {
  if (ref.type != kChunkTypeSamplesC) {
    throw TraceIoError("not a compressed sample chunk at offset " +
                       std::to_string(ref.offset));
  }
  const std::string_view payload = checked_payload(file, ref);
  ColRef cols[kSampleCols];
  if (!parse_compressed_payload(payload, kSampleCols, ref.n_records, cols)) {
    throw TraceIoError("malformed compressed sample payload at offset " +
                       std::to_string(ref.offset));
  }
  const auto decode_into = [&](std::size_t c, std::int64_t* dst) {
    if (dst == nullptr) return;
    if (!decode_col(cols[c], ref.n_records, dst)) {
      throw TraceIoError("compressed column " + std::to_string(c) +
                         " damaged at offset " + std::to_string(ref.offset));
    }
  };
  decode_into(0, out.tsc);
  decode_into(1, out.ip);
  decode_into(2, out.core);
  if (out.reg != nullptr) decode_into(3 + out.reg_index, out.reg);
}

V3ZoneHint read_v3_zone_hint(std::string_view file, const V2ChunkRef& ref) {
  V3ZoneHint hint;
  if (!is_compressed_chunk_type(ref.type)) return hint;
  if (ref.payload_bytes < kPayloadHeaderBytes) return hint;
  try {
    const std::string_view payload = checked_payload(file, ref);
    hint.min_ts = static_cast<std::int64_t>(peek_u64(payload, 4));
    hint.max_ts = static_cast<std::int64_t>(peek_u64(payload, 12));
    hint.ok = true;
  } catch (const TraceIoError&) {
    // Damaged chunk: no hint; the caller's decode path will handle it.
  }
  return hint;
}

std::vector<V3ColumnSummary> v3_compression_stats(std::string_view file) {
  static constexpr const char* kSampleNames[kSampleCols] = {
      "samples.ts",    "samples.ip",    "samples.core",  "samples.reg00",
      "samples.reg01", "samples.reg02", "samples.reg03", "samples.reg04",
      "samples.reg05", "samples.reg06", "samples.reg07", "samples.reg08",
      "samples.reg09", "samples.reg10", "samples.reg11", "samples.reg12",
      "samples.reg13", "samples.reg14", "samples.reg15"};
  static constexpr const char* kMarkerNames[kMarkerCols] = {
      "markers.ts", "markers.item", "markers.core", "markers.kind"};
  static constexpr const char* kWaitNames[kWaitCols] = {
      "wait.enter",  "wait.leave",    "wait.item", "wait.waiter",
      "wait.holder", "wait.resource", "wait.cause"};

  std::vector<V3ColumnSummary> out;
  const auto slot = [&out](const char* name) -> V3ColumnSummary& {
    for (auto& s : out) {
      if (s.name == name) return s;
    }
    out.emplace_back();
    out.back().name = name;
    return out.back();
  };

  for (const V2ChunkRef& ref : index_trace_v2(file)) {
    if (!is_compressed_chunk_type(ref.type)) continue;
    const std::string_view payload = checked_payload(file, ref);
    const std::size_t n_cols = column_count_for(ref.type);
    std::vector<ColRef> cols(n_cols);
    if (!parse_compressed_payload(payload, n_cols, ref.n_records,
                                  cols.data())) {
      throw TraceIoError("malformed compressed payload at offset " +
                         std::to_string(ref.offset));
    }
    for (std::size_t c = 0; c < n_cols; ++c) {
      const char* name = ref.type == kChunkTypeSamplesC ? kSampleNames[c]
                         : ref.type == kChunkTypeMarkersC
                             ? kMarkerNames[c]
                             : kWaitNames[c];
      const std::uint64_t raw = ref.type == kChunkTypeSamplesC
                                    ? kSampleColRaw[c]
                                : ref.type == kChunkTypeMarkersC
                                    ? kMarkerColRaw[c]
                                    : kWaitColRaw[c];
      V3ColumnSummary& s = slot(name);
      s.raw_bytes += raw * ref.n_records;
      s.enc_bytes += cols[c].bytes.size();
      if (cols[c].codec < codec::kNumColumnCodecs) {
        ++s.codec_chunks[cols[c].codec];
      }
    }
  }
  return out;
}

} // namespace fluxtrace::io
