#include "fluxtrace/prog/builder.hpp"

#include <cassert>

namespace fluxtrace::prog {

ProgramBuilder& ProgramBuilder::fn(std::string_view name,
                                   std::uint64_t code_bytes) {
  SymbolId id;
  if (const auto existing = symtab_.find(name); existing.has_value()) {
    id = *existing;
  } else {
    id = symtab_.add(name, code_bytes);
  }
  sim::ExecBlock blk;
  blk.fn = id;
  blocks_.push_back(blk);
  return *this;
}

sim::ExecBlock& ProgramBuilder::current() {
  assert(!blocks_.empty() && "call fn() before block attributes");
  return blocks_.back();
}

ProgramBuilder& ProgramBuilder::uops(std::uint64_t n) {
  current().uops = n;
  return *this;
}

ProgramBuilder& ProgramBuilder::branch_misses(std::uint64_t n) {
  current().branch_misses = n;
  return *this;
}

ProgramBuilder& ProgramBuilder::loads(std::uint64_t base, std::uint32_t count,
                                      std::uint32_t stride) {
  current().mem = sim::MemPattern{base, count, stride};
  return *this;
}

ProgramBuilder& ProgramBuilder::stall(Tsc cycles) {
  current().extra_stall = cycles;
  return *this;
}

ProgramBuilder& ProgramBuilder::repeat(std::uint32_t times) {
  assert(times >= 1);
  const std::size_t group_begin = repeat_mark_;
  const std::size_t group_end = blocks_.size();
  for (std::uint32_t r = 1; r < times; ++r) {
    for (std::size_t i = group_begin; i < group_end; ++i) {
      blocks_.push_back(blocks_[i]);
    }
  }
  repeat_mark_ = blocks_.size();
  return *this;
}

SymbolId ProgramBuilder::symbol(std::string_view name) const {
  const auto id = symtab_.find(name);
  assert(id.has_value() && "symbol was never used in this builder");
  return id.value_or(kInvalidSymbol);
}

} // namespace fluxtrace::prog
