// Fluent builder for simulated programs: registers symbols and assembles
// exec-block sequences, so toy workloads and didactic benches read like
// code instead of block lists.
//
//   auto prog = ProgramBuilder(symtab)
//                   .fn("parse").uops(3000)
//                   .fn("lookup").uops(500).loads(0x1000, 64, 64)
//                   .fn("respond").uops(1500).branch_misses(10)
//                   .blocks();
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/sim/cpu.hpp"

namespace fluxtrace::prog {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(SymbolTable& symtab) : symtab_(symtab) {}

  /// Start a new block attributed to `name` (symbol registered on first
  /// use; repeated names reuse the symbol).
  ProgramBuilder& fn(std::string_view name, std::uint64_t code_bytes = 0x400);

  ProgramBuilder& uops(std::uint64_t n);
  ProgramBuilder& branch_misses(std::uint64_t n);
  ProgramBuilder& loads(std::uint64_t base, std::uint32_t count,
                        std::uint32_t stride = 64);
  ProgramBuilder& stall(Tsc cycles);

  /// Repeat the blocks added since the previous repeat()/begin `times`
  /// times in total (1 = no-op).
  ProgramBuilder& repeat(std::uint32_t times);

  /// The assembled block sequence.
  [[nodiscard]] std::vector<sim::ExecBlock> blocks() const { return blocks_; }

  /// Run the whole sequence on a core.
  void run_on(sim::Cpu& cpu) const {
    for (const sim::ExecBlock& b : blocks_) cpu.run(b);
  }

  /// Symbol id of a previously used function name.
  [[nodiscard]] SymbolId symbol(std::string_view name) const;

 private:
  sim::ExecBlock& current();

  SymbolTable& symtab_;
  std::vector<sim::ExecBlock> blocks_;
  std::size_t repeat_mark_ = 0; ///< first block of the current repeat group
};

} // namespace fluxtrace::prog
