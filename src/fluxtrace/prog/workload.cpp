#include "fluxtrace/prog/workload.hpp"

namespace fluxtrace::prog {

namespace {
// Distinct, non-overlapping heap regions per workload so shared-L3
// interactions stay interpretable in multi-workload experiments.
constexpr std::uint64_t kAstarHeap = 0x100000000ull;
constexpr std::uint64_t kBzip2Heap = 0x200000000ull;
constexpr std::uint64_t kGccHeap = 0x300000000ull;
} // namespace

Workload make_astar(SymbolTable& symtab) {
  Workload wl;
  wl.name = "astar";
  const SymbolId expand = symtab.add("astar::node_expand", 0x900);
  const SymbolId heur = symtab.add("astar::heuristic", 0x500);
  const SymbolId open = symtab.add("astar::openlist_update", 0x700);
  // 24 MiB graph walked with poor locality: most loads miss L3.
  wl.phases = {
      Phase{expand, 6000, 40, {kAstarHeap, 180, 8192}},
      Phase{heur, 3000, 10, {}},
      Phase{open, 4000, 30, {kAstarHeap + 12 * 1024 * 1024, 120, 4096}},
  };
  return wl;
}

Workload make_bzip2(SymbolTable& symtab) {
  Workload wl;
  wl.name = "bzip2";
  const SymbolId sort = symtab.add("bzip2::block_sort", 0xc00);
  const SymbolId mtf = symtab.add("bzip2::mtf_encode", 0x600);
  const SymbolId huff = symtab.add("bzip2::huffman", 0x800);
  // 256 KiB block, L2-resident: compute dominates.
  wl.phases = {
      Phase{sort, 9000, 25, {kBzip2Heap, 60, 256}},
      Phase{mtf, 5000, 8, {kBzip2Heap, 40, 64}},
      Phase{huff, 6000, 12, {}},
  };
  return wl;
}

Workload make_gcc(SymbolTable& symtab) {
  Workload wl;
  wl.name = "gcc";
  const SymbolId parse = symtab.add("gcc::parse", 0xa00);
  const SymbolId opt = symtab.add("gcc::tree_ssa_opt", 0xe00);
  const SymbolId ra = symtab.add("gcc::reg_alloc", 0x800);
  // 4 MiB of IR with irregular access and heavy branching.
  wl.phases = {
      Phase{parse, 5000, 120, {kGccHeap, 70, 1024}},
      Phase{opt, 7000, 160, {kGccHeap + 2 * 1024 * 1024, 90, 2048}},
      Phase{ra, 4000, 90, {}},
  };
  return wl;
}

sim::StepStatus WorkloadTask::step(sim::Cpu& cpu) {
  if (remaining_ == 0) return sim::StepStatus::Done;
  for (const Phase& p : wl_.phases) {
    cpu.run(sim::ExecBlock{p.fn, p.uops, p.branch_misses, p.mem});
  }
  --remaining_;
  return remaining_ == 0 ? sim::StepStatus::Done : sim::StepStatus::Progress;
}

} // namespace fluxtrace::prog
