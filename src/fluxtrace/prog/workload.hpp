// Synthetic single-core workloads standing in for the SPEC CPU 2006
// benchmarks of Figure 4 (astar, bzip2, gcc). What matters for the
// figure is that the three programs retire uops at different average
// rates — "the sample intervals for the same reset value are different
// across benchmarks because the average instructions per cycle are
// different" — so each kernel mixes compute, memory footprint and branch
// mispredictions differently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::prog {

/// One phase of a workload's steady-state loop.
struct Phase {
  SymbolId fn = kInvalidSymbol;
  std::uint64_t uops = 0;
  std::uint64_t branch_misses = 0;
  sim::MemPattern mem{};
};

struct Workload {
  std::string name;
  std::vector<Phase> phases;

  /// Uops per loop iteration, summed over phases.
  [[nodiscard]] std::uint64_t uops_per_iteration() const {
    std::uint64_t n = 0;
    for (const Phase& p : phases) n += p.uops;
    return n;
  }
};

/// Pointer-chasing search: large working set, frequent LLC misses,
/// low effective uop rate.
[[nodiscard]] Workload make_astar(SymbolTable& symtab);

/// Compression: compute-dense inner loops over an L1/L2-resident block,
/// high uop rate.
[[nodiscard]] Workload make_bzip2(SymbolTable& symtab);

/// Compiler: branchy with a medium working set, mid uop rate.
[[nodiscard]] Workload make_gcc(SymbolTable& symtab);

/// Runs a workload's phase loop for `iterations` rounds.
class WorkloadTask final : public sim::Task {
 public:
  WorkloadTask(Workload wl, std::uint64_t iterations)
      : wl_(std::move(wl)), remaining_(iterations) {}

  sim::StepStatus step(sim::Cpu& cpu) override;
  [[nodiscard]] std::string_view name() const override { return wl_.name; }
  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

 private:
  Workload wl_;
  std::uint64_t remaining_;
};

} // namespace fluxtrace::prog
