// Simulated NIC: a receive ring fed by the wire and a transmit ring the
// application fills. Packets become visible to the polling application
// only once their wire-arrival time has passed, which keeps the
// discrete-event schedule honest even though the underlying ring is
// populated eagerly.
#pragma once

#include <cstdint>
#include <optional>

#include "fluxtrace/net/packet.hpp"
#include "fluxtrace/rt/spsc_ring.hpp"

namespace fluxtrace::net {

class Nic {
 public:
  explicit Nic(std::size_t ring_depth = 4096)
      : rx_(ring_depth), tx_(ring_depth) {}

  /// Wire side: a packet arrives at `arrival` (absolute TSC).
  bool deliver(Packet p, Tsc arrival) {
    p.wire_arrival = arrival;
    return rx_.push(std::move(p));
  }

  /// Application side: poll the receive ring. Returns a packet only when
  /// its wire arrival is at or before `now`.
  std::optional<Packet> rx_poll(Tsc now) {
    const Packet* head = rx_.front();
    if (head == nullptr || head->wire_arrival > now) return std::nullopt;
    return rx_.pop();
  }

  /// Application side: hand a processed packet to the transmit ring.
  bool tx_push(Packet p, Tsc now) {
    p.egress = now;
    return tx_.push(std::move(p));
  }

  /// Wire side: the link partner (the tester) pulls transmitted packets.
  std::optional<Packet> tx_collect() { return tx_.pop(); }

  [[nodiscard]] std::size_t rx_backlog() const { return rx_.size(); }
  [[nodiscard]] std::size_t tx_backlog() const { return tx_.size(); }

 private:
  rt::SpscRing<Packet> rx_;
  rt::SpscRing<Packet> tx_;
};

} // namespace fluxtrace::net
