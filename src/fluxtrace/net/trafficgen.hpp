// Hardware traffic tester, modelled after GNET (paper §IV-C2): sends test
// packets one by one with a configurable gap (so DPDK never batches them),
// collects them after they pass the firewall, and measures per-packet
// latency in hardware. Figure 10's overhead metric — the latency increase
// caused by tracing — is exactly this tester's measurement.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fluxtrace/net/nic.hpp"
#include "fluxtrace/net/packet.hpp"
#include "fluxtrace/sim/machine.hpp"

namespace fluxtrace::net {

struct TrafficGenConfig {
  double inter_packet_gap_ns = 30000; ///< pacing between bursts
  double wire_latency_ns = 500;       ///< one-way link+NIC latency
  std::uint64_t total_packets = 100;  ///< sends stop after this many
  /// Packets per burst (1 = the paper's one-by-one sending). Packets in a
  /// burst go on the wire back to back, separated only by
  /// intra_burst_gap_ns — what makes the DUT batch.
  std::uint32_t burst_size = 1;
  double intra_burst_gap_ns = 100.0;
};

/// The tester occupies its own core; the simulated time it spends is
/// pacing only (it is a hardware box, not part of the system under test).
class TrafficGen final : public sim::Task {
 public:
  /// `to_dut` is the NIC the device-under-test receives on; `from_dut` the
  /// NIC it transmits on. `flows` is cycled through round-robin.
  TrafficGen(TrafficGenConfig cfg, Nic& to_dut, Nic& from_dut,
             std::vector<FlowKey> flows);

  sim::StepStatus step(sim::Cpu& cpu) override;
  [[nodiscard]] std::string_view name() const override { return "gnet"; }

  /// One measurement per received packet.
  struct Record {
    ItemId id = kNoItem;
    std::uint32_t flow_idx = 0;
    Tsc sent = 0;     ///< when the tester put it on the wire
    Tsc received = 0; ///< when it came back
    [[nodiscard]] Tsc latency() const { return received - sent; }
  };

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return records_.size(); }

  /// Tell the tester how many of its packets the DUT will drop (a
  /// firewall's job!), so completion does not wait for them forever.
  void expect_drops(std::uint64_t n) { expected_drops_ = n; }
  [[nodiscard]] std::uint64_t expected_drops() const {
    return expected_drops_;
  }
  [[nodiscard]] bool complete() const {
    return sent_ >= cfg_.total_packets &&
           received() + expected_drops_ >= sent_;
  }

 private:
  void collect(Tsc now);

  TrafficGenConfig cfg_;
  Nic& to_dut_;
  Nic& from_dut_;
  std::vector<FlowKey> flows_;
  std::vector<Record> records_;
  std::vector<Tsc> send_times_; ///< indexed by packet id
  std::uint64_t sent_ = 0;
  std::uint64_t expected_drops_ = 0;
  Tsc next_send_ = 0;
  Tsc spec_wire_ = 0; ///< wire latency in cycles, resolved on first step
};

} // namespace fluxtrace::net
