#include "fluxtrace/net/trafficgen.hpp"

#include <cassert>

namespace fluxtrace::net {

TrafficGen::TrafficGen(TrafficGenConfig cfg, Nic& to_dut, Nic& from_dut,
                       std::vector<FlowKey> flows)
    : cfg_(cfg), to_dut_(to_dut), from_dut_(from_dut), flows_(std::move(flows)) {
  assert(!flows_.empty());
  records_.reserve(cfg_.total_packets);
  send_times_.resize(cfg_.total_packets, 0);
}

void TrafficGen::collect(Tsc now) {
  (void)now;
  while (auto p = from_dut_.tx_collect()) {
    Record r;
    r.id = p->id;
    r.flow_idx = p->flow_idx;
    r.sent = send_times_[p->id];
    // The tester timestamps in hardware on arrival: egress from the DUT
    // plus one wire flight. Independent of when this task polled.
    r.received = p->egress + spec_wire_;
    records_.push_back(r);
  }
}

sim::StepStatus TrafficGen::step(sim::Cpu& cpu) {
  if (spec_wire_ == 0) {
    spec_wire_ = cpu.spec().cycles(cfg_.wire_latency_ns);
  }
  collect(cpu.now());

  if (sent_ >= cfg_.total_packets) {
    return complete() ? sim::StepStatus::Done : sim::StepStatus::Idle;
  }

  if (cpu.now() < next_send_) {
    // Pace: jump straight to the next send time (the tester is hardware;
    // its own time costs nothing to the system under test).
    cpu.advance(next_send_ - cpu.now());
  }

  // Send one burst (burst_size = 1 reproduces the paper's one-by-one
  // sending that prevents DPDK from batching).
  for (std::uint32_t i = 0; i < cfg_.burst_size && sent_ < cfg_.total_packets;
       ++i) {
    Packet p;
    p.id = sent_;
    p.flow_idx = static_cast<std::uint32_t>(sent_ % flows_.size());
    p.key = flows_[p.flow_idx];
    send_times_[sent_] = cpu.now();
    const bool ok = to_dut_.deliver(std::move(p), cpu.now() + spec_wire_);
    assert(ok && "DUT rx ring overflow: gap too small for ring depth");
    (void)ok;
    ++sent_;
    if (i + 1 < cfg_.burst_size && sent_ < cfg_.total_packets) {
      cpu.advance(cpu.spec().cycles(cfg_.intra_burst_gap_ns));
    }
  }
  next_send_ = cpu.now() + cpu.spec().cycles(cfg_.inter_packet_gap_ns);
  return sim::StepStatus::Progress;
}

} // namespace fluxtrace::net
