// Packets as seen by the simulated NICs and the firewall pipeline.
#pragma once

#include <cstdint>

#include "fluxtrace/base/flow.hpp"
#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::net {

enum class Verdict : std::uint8_t { None, Permit, Drop };

struct Packet {
  ItemId id = kNoItem;       ///< data-item id (sequence number)
  FlowKey key{};
  std::uint16_t len = 64;    ///< bytes on the wire
  std::uint32_t flow_idx = 0;///< which generator flow produced it
  Tsc wire_arrival = 0;      ///< when it reaches the receiving NIC
  Tsc egress = 0;            ///< when the app handed it to the TX NIC
  Verdict verdict = Verdict::None;
};

} // namespace fluxtrace::net
