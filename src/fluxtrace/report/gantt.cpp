#include "fluxtrace/report/gantt.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fluxtrace::report {

Gantt::Row& Gantt::row_for(const std::string& name) {
  for (Row& r : rows_) {
    if (r.name == name) return r;
  }
  rows_.push_back(Row{name, {}});
  return rows_.back();
}

void Gantt::span(const std::string& row, Tsc start, Tsc end, char glyph,
                 const std::string& label) {
  row_for(row).spans.push_back(Span{start, end, glyph, label});
}

void Gantt::print(std::ostream& os) const {
  if (rows_.empty()) return;
  Tsc lo = range_start_, hi = range_end_;
  if (!explicit_range_) {
    lo = ~Tsc{0};
    hi = 0;
    for (const Row& r : rows_) {
      for (const Span& s : r.spans) {
        lo = std::min(lo, s.start);
        hi = std::max(hi, s.end);
      }
    }
    if (lo > hi) return; // only empty rows
  }
  const double scale =
      hi > lo ? static_cast<double>(width_) / static_cast<double>(hi - lo)
              : 0.0;
  const auto cell = [&](Tsc t) {
    const Tsc off = t > lo ? t - lo : 0;
    const auto c = static_cast<std::size_t>(static_cast<double>(off) * scale);
    return std::min(c, width_ - 1);
  };

  std::size_t name_w = 0;
  for (const Row& r : rows_) name_w = std::max(name_w, r.name.size());

  for (const Row& r : rows_) {
    std::string line(width_, '.');
    for (const Span& s : r.spans) {
      if (s.end < lo || s.start > hi) continue;
      const std::size_t a = cell(std::max(s.start, lo));
      const std::size_t b = std::max(a, cell(std::min(s.end, hi)));
      for (std::size_t i = a; i <= b && i < width_; ++i) line[i] = s.glyph;
      // Overlay the label when the span is wide enough.
      if (!s.label.empty() && b > a && b - a + 1 >= s.label.size() + 2) {
        const std::size_t mid = a + (b - a - s.label.size()) / 2 + 1;
        for (std::size_t i = 0; i < s.label.size(); ++i) {
          line[mid + i] = s.label[i];
        }
      }
    }
    os << r.name << std::string(name_w - r.name.size(), ' ') << " |" << line
       << "|\n";
  }
}

std::string Gantt::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace fluxtrace::report
