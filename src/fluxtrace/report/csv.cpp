#include "fluxtrace/report/csv.hpp"

#include <ostream>

namespace fluxtrace::report {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

} // namespace fluxtrace::report
