#include "fluxtrace/report/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fluxtrace::report {

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Distribution::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Distribution::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0;
  for (const double x : xs_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs_.size() - 1));
}

double Distribution::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Distribution::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Distribution::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  // Out-of-domain p is clamped, never UB: the old assert let p <= 0
  // through in NDEBUG builds, and casting a negative ceil() result to
  // size_t is undefined. NaN fails the first comparison and lands on
  // the minimum too.
  if (!(p > 0.0)) return xs_.front();
  if (p >= 100.0) return xs_.back();
  // Nearest-rank: smallest 1-based k with k >= p/100 * N. The rank is
  // snapped to a nearby integer before ceil() so a p that is not
  // exactly representable does not overshoot: 99.9 is stored as
  // 99.9000000000000057, and over 1000 samples the raw product is
  // 999.00000000000006 — ceil of that is 1000, silently turning p999
  // into the maximum.
  double r = p / 100.0 * static_cast<double>(xs_.size());
  const double nearest = std::round(r);
  if (nearest > 0.0 && std::abs(r - nearest) <= 1e-9 * nearest) r = nearest;
  const auto rank = static_cast<std::size_t>(std::ceil(r));
  return xs_[std::min(xs_.size(), std::max<std::size_t>(1, rank)) - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

void Histogram::print(std::ostream& os, std::size_t max_width) const {
  std::uint64_t cmax = 1;
  for (const std::uint64_t c : counts_) cmax = std::max(cmax, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + static_cast<double>(i) * width_;
    const auto w = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(cmax) *
        static_cast<double>(max_width));
    os << std::fixed << std::setprecision(1) << std::setw(8) << b_lo << "-"
       << std::setw(7) << (b_lo + width_) << " |" << std::string(w, '#')
       << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "   (underflow: " << underflow_ << ")\n";
  if (overflow_ > 0) os << "   (overflow: " << overflow_ << ")\n";
}

std::string Histogram::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace fluxtrace::report
