// Distribution statistics for bench reporting: exact percentiles over a
// collected series and a log-bucketed histogram for compact display. Tail
// percentiles are the paper's motivating metric (§II-A quotes Huang et
// al.: "the 99th percentile was an order of magnitude greater than the
// mean" on TPC-C).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fluxtrace::report {

/// Collects a series of observations and answers distribution queries.
/// Percentiles are exact (nearest-rank over the sorted series).
class Distribution {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Nearest-rank percentile: the smallest value with at least p% of
  /// the observations at or below it. p50 = median, p99, p999 = pass
  /// 99.9. Every edge is defined rather than UB: an empty series
  /// returns 0.0, p <= 0 (or NaN) returns the minimum, p >= 100 the
  /// maximum, and a single-sample or all-equal series returns that
  /// value for any p. Ranks are computed with an integer snap so an
  /// inexactly-representable p (e.g. 99.9) hits its intended rank.
  [[nodiscard]] double percentile(double p) const;

  /// The tail-amplification factor the paper's motivation quotes.
  [[nodiscard]] double p99_over_mean() const {
    const double m = mean();
    return m > 0 ? percentile(99.0) / m : 0.0;
  }

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram over [lo, hi) with an overflow bucket, rendered
/// as ASCII rows.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void print(std::ostream& os, std::size_t max_width = 50) const;
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

} // namespace fluxtrace::report
