// ASCII Gantt/timeline rendering: item windows (and any labelled spans)
// per core over simulated time — the visual form of the paper's Fig. 6,
// reconstructed from a recorded trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fluxtrace/base/time.hpp"

namespace fluxtrace::report {

class Gantt {
 public:
  explicit Gantt(std::size_t width = 72) : width_(width) {}

  /// Add a span to `row` (rows are created on first use, displayed in
  /// creation order). `glyph` fills the span's cells; the span's label is
  /// printed inside when it fits.
  void span(const std::string& row, Tsc start, Tsc end, char glyph,
            const std::string& label = "");

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  /// The rendered time range (auto-fit to the spans unless set).
  void set_range(Tsc start, Tsc end) {
    range_start_ = start;
    range_end_ = end;
    explicit_range_ = true;
  }

 private:
  struct Span {
    Tsc start, end;
    char glyph;
    std::string label;
  };
  struct Row {
    std::string name;
    std::vector<Span> spans;
  };

  Row& row_for(const std::string& name);

  std::size_t width_;
  std::vector<Row> rows_;
  Tsc range_start_ = 0;
  Tsc range_end_ = 0;
  bool explicit_range_ = false;
};

} // namespace fluxtrace::report
