#include "fluxtrace/report/chart.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

namespace fluxtrace::report {

void BarChart::bar(std::string label, double value) {
  entries_.push_back(Entry{std::move(label), value});
}

void BarChart::print(std::ostream& os) const {
  if (entries_.empty()) return;
  double vmax = 0;
  std::size_t lmax = 0;
  for (const Entry& e : entries_) {
    vmax = std::max(vmax, e.value);
    lmax = std::max(lmax, e.label.size());
  }
  for (const Entry& e : entries_) {
    const auto w = vmax <= 0
                       ? 0
                       : static_cast<std::size_t>(e.value / vmax *
                                                  static_cast<double>(max_width_));
    os << std::left << std::setw(static_cast<int>(lmax)) << e.label << " |"
       << std::string(w, '#') << ' ' << std::fixed << std::setprecision(2)
       << e.value;
    if (!unit_.empty()) os << ' ' << unit_;
    os << '\n';
  }
}

std::string BarChart::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void StackedBarChart::series(std::string name) {
  assert(series_.size() < sizeof(kFills));
  series_.push_back(std::move(name));
}

void StackedBarChart::bar(std::string label, std::vector<double> values) {
  assert(values.size() == series_.size());
  entries_.push_back(Entry{std::move(label), std::move(values)});
}

void StackedBarChart::print(std::ostream& os) const {
  if (entries_.empty()) return;
  double vmax = 0;
  std::size_t lmax = 0;
  for (const Entry& e : entries_) {
    vmax = std::max(vmax,
                    std::accumulate(e.values.begin(), e.values.end(), 0.0));
    lmax = std::max(lmax, e.label.size());
  }
  // Legend.
  os << "legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    os << "  " << kFills[s] << " = " << series_[s];
  }
  os << '\n';
  for (const Entry& e : entries_) {
    os << std::left << std::setw(static_cast<int>(lmax)) << e.label << " |";
    const double total =
        std::accumulate(e.values.begin(), e.values.end(), 0.0);
    for (std::size_t s = 0; s < e.values.size(); ++s) {
      const auto w = vmax <= 0
                         ? 0
                         : static_cast<std::size_t>(
                               e.values[s] / vmax *
                               static_cast<double>(max_width_));
      os << std::string(w, kFills[s]);
    }
    os << ' ' << std::fixed << std::setprecision(2) << total;
    if (!unit_.empty()) os << ' ' << unit_;
    os << '\n';
  }
}

std::string StackedBarChart::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace fluxtrace::report
