// ASCII charts for bench output: horizontal bars (Fig. 2-style
// distributions) and stacked bars (Fig. 8's per-query function breakdown).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fluxtrace::report {

/// Horizontal bar chart: one labelled bar per entry, scaled to fit.
class BarChart {
 public:
  explicit BarChart(std::string value_unit = "", std::size_t max_width = 60)
      : unit_(std::move(value_unit)), max_width_(max_width) {}

  void bar(std::string label, double value);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  struct Entry {
    std::string label;
    double value;
  };
  std::string unit_;
  std::size_t max_width_;
  std::vector<Entry> entries_;
};

/// Stacked horizontal bars: each bar is a labelled sequence of segments,
/// each segment drawn with its own fill character and listed in a legend.
class StackedBarChart {
 public:
  explicit StackedBarChart(std::string value_unit = "",
                           std::size_t max_width = 70)
      : unit_(std::move(value_unit)), max_width_(max_width) {}

  /// Define a segment kind; order of definition = drawing order.
  void series(std::string name);

  /// Add one bar; `values` must align with the defined series.
  void bar(std::string label, std::vector<double> values);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  static constexpr char kFills[] = {'#', '=', '.', '+', '*', 'o', '~', '%'};

  std::string unit_;
  std::size_t max_width_;
  std::vector<std::string> series_;
  struct Entry {
    std::string label;
    std::vector<double> values;
  };
  std::vector<Entry> entries_;
};

} // namespace fluxtrace::report
