// Minimal CSV writer so every bench can also emit machine-readable series
// next to its human-readable table (for replotting the paper's figures).
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace fluxtrace::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void header(const std::vector<std::string>& cols) { emit(cols); }
  void row(const std::vector<std::string>& cells) { emit(cells); }

  /// Quote-and-escape one cell per RFC 4180 when needed.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  void emit(const std::vector<std::string>& cells);
  std::ostream& os_;
};

/// Open `path` and return a CSV writer bound to it (file kept alive by the
/// returned pair).
struct CsvFile {
  explicit CsvFile(const std::string& path) : out(path), writer(out) {}
  std::ofstream out;
  CsvWriter writer;
};

} // namespace fluxtrace::report
