#include "fluxtrace/report/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fluxtrace::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

Table& Table::align(std::size_t col, Align a) {
  assert(col < aligns_.size());
  aligns_[col] = a;
  return *this;
}

void Table::row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = width[c] - cells[c].size();
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::Left && c + 1 < cells.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace fluxtrace::report
