// Aligned plain-text tables for bench output — the rows/series the paper's
// tables and figures report, printed in a terminal.
#pragma once

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fluxtrace::report {

enum class Align : std::uint8_t { Left, Right };

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& align(std::size_t col, Align a);

  /// Add one row; must have exactly as many cells as there are headers.
  void row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);
  /// Convenience: format any integer.
  template <std::integral T>
  static std::string num(T v) {
    return std::to_string(v);
  }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace fluxtrace::report
