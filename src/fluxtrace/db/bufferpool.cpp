#include "fluxtrace/db/bufferpool.hpp"

#include <cassert>

namespace fluxtrace::db {

BufferPool::BufferPool(std::size_t frames) : capacity_(frames) {
  assert(capacity_ > 0);
}

BufferPool::FetchResult BufferPool::fetch(std::uint64_t page,
                                          bool mark_dirty) {
  FetchResult res;
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    res.hit = true;
    ++hits_;
    lru_.splice(lru_.end(), lru_, it->second.lru_pos); // move to MRU
    it->second.dirty |= mark_dirty;
    return res;
  }

  ++misses_;
  if (frames_.size() >= capacity_) {
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    auto vit = frames_.find(victim);
    if (vit->second.dirty) {
      res.evicted_dirty = true;
      ++writebacks_;
    }
    frames_.erase(vit);
  }
  lru_.push_back(page);
  frames_.emplace(page, Frame{std::prev(lru_.end()), mark_dirty});
  return res;
}

bool BufferPool::dirty(std::uint64_t page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.dirty;
}

std::size_t BufferPool::flush_all() {
  std::size_t n = 0;
  for (auto& [page, frame] : frames_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++n;
      ++writebacks_;
    }
  }
  return n;
}

} // namespace fluxtrace::db
