#include "fluxtrace/db/btree.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace::db {

BTree::BTree(std::uint32_t order) : order_(order) {
  assert(order_ >= 3 && "order must allow a meaningful split");
  root_ = std::make_unique<Node>();
}

BTree::FindResult BTree::find(std::uint64_t key) const {
  FindResult res;
  const Node* n = root_.get();
  for (;;) {
    ++res.nodes_visited;
    if (n->leaf) {
      const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      if (it != n->keys.end() && *it == key) {
        res.value = n->values[static_cast<std::size_t>(it - n->keys.begin())];
      }
      return res;
    }
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())].get();
  }
}

BTree::ScanResult BTree::scan(std::uint64_t from, std::size_t limit) const {
  ScanResult res;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++res.nodes_visited;
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), from);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())].get();
  }
  // Walk the leaf chain.
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), from);
  std::size_t idx = static_cast<std::size_t>(it - n->keys.begin());
  while (n != nullptr && res.rows.size() < limit) {
    ++res.nodes_visited;
    for (; idx < n->keys.size() && res.rows.size() < limit; ++idx) {
      res.rows.emplace_back(n->keys[idx], n->values[idx]);
    }
    n = n->next;
    idx = 0;
  }
  return res;
}

std::optional<BTree::SplitOut> BTree::insert_rec(Node* node,
                                                 std::uint64_t key,
                                                 std::uint64_t value,
                                                 InsertResult& res) {
  ++res.nodes_visited;
  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      return std::nullopt; // duplicate: res.inserted stays false
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(pos),
                        value);
    res.inserted = true;
    ++size_;

    if (node->keys.size() <= order_) return std::nullopt;

    // Leaf split: right half moves to a new node; separator = first key
    // of the right node (B+ tree convention).
    ++res.splits;
    ++total_splits_;
    const std::size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                       node->keys.end());
    right->values.assign(
        node->values.begin() + static_cast<std::ptrdiff_t>(mid),
        node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    return SplitOut{right->keys.front(), std::move(right)};
  }

  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const auto child_idx = static_cast<std::size_t>(it - node->keys.begin());
  auto split = insert_rec(node->children[child_idx].get(), key, value, res);
  if (!split.has_value()) return std::nullopt;

  node->keys.insert(node->keys.begin() + static_cast<std::ptrdiff_t>(child_idx),
                    split->sep_key);
  node->children.insert(
      node->children.begin() + static_cast<std::ptrdiff_t>(child_idx) + 1,
      std::move(split->right));

  if (node->keys.size() <= order_) return std::nullopt;

  // Internal split: the middle key moves UP (not copied right).
  ++res.splits;
  ++total_splits_;
  const std::size_t mid = node->keys.size() / 2;
  const std::uint64_t up = node->keys[mid];
  auto right = std::make_unique<Node>();
  right->leaf = false;
  right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     node->keys.end());
  for (std::size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return SplitOut{up, std::move(right)};
}

BTree::InsertResult BTree::insert(std::uint64_t key, std::uint64_t value) {
  InsertResult res;
  auto split = insert_rec(root_.get(), key, value, res);
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split->sep_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
  }
  return res;
}

bool BTree::check_rec(const Node* node, std::uint32_t depth,
                      std::optional<std::uint64_t> lo,
                      std::optional<std::uint64_t> hi) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) return false;
  if (std::adjacent_find(node->keys.begin(), node->keys.end()) !=
      node->keys.end()) {
    return false; // duplicate key inside a node
  }
  for (const std::uint64_t k : node->keys) {
    if (lo.has_value() && k < *lo) return false;
    if (hi.has_value() && k >= *hi) return false;
  }
  if (node->keys.size() > order_) return false;

  if (node->leaf) {
    if (node->values.size() != node->keys.size()) return false;
    return depth + 1 == height_; // uniform leaf depth
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    const auto clo = i == 0 ? lo : std::optional<std::uint64_t>(node->keys[i - 1]);
    const auto chi =
        i == node->keys.size() ? hi : std::optional<std::uint64_t>(node->keys[i]);
    if (!check_rec(node->children[i].get(), depth + 1, clo, chi)) return false;
  }
  return true;
}

bool BTree::check_invariants() const {
  if (!check_rec(root_.get(), 0, std::nullopt, std::nullopt)) return false;
  // Leaf chain yields all keys in ascending order.
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  std::size_t seen = 0;
  std::optional<std::uint64_t> prev;
  while (n != nullptr) {
    for (const std::uint64_t k : n->keys) {
      if (prev.has_value() && k <= *prev) return false;
      prev = k;
      ++seen;
    }
    n = n->next;
  }
  return seen == size_;
}

} // namespace fluxtrace::db
