// Table = heap pages of fixed-size rows + a primary B+ tree index mapping
// key → (page, slot), all accessed through the buffer pool. Every
// operation reports exactly the structural work it caused — index nodes
// visited, page hits/misses, dirty evictions, splits — which the
// simulated executor converts into time.
#pragma once

#include <cstdint>
#include <optional>

#include "fluxtrace/db/btree.hpp"
#include "fluxtrace/db/bufferpool.hpp"

namespace fluxtrace::db {

struct TableConfig {
  std::uint32_t rows_per_page = 32;
  std::uint64_t first_page = 1000; ///< heap page-id namespace
};

/// Per-operation structural cost; the executor's billing record.
struct OpStats {
  std::uint32_t index_nodes = 0;
  std::uint32_t page_hits = 0;
  std::uint32_t page_misses = 0;
  std::uint32_t dirty_evictions = 0;
  std::uint32_t rows = 0;        ///< rows touched/returned
  std::uint32_t index_splits = 0;
  bool found = false;

  void merge(const OpStats& o) {
    index_nodes += o.index_nodes;
    page_hits += o.page_hits;
    page_misses += o.page_misses;
    dirty_evictions += o.dirty_evictions;
    rows += o.rows;
    index_splits += o.index_splits;
  }
};

class Table {
 public:
  Table(BufferPool& pool, TableConfig cfg = {});

  /// Insert a row; no-op (found=true) when the key exists.
  OpStats insert(std::uint64_t key);

  /// Point lookup by primary key.
  OpStats point(std::uint64_t key);

  /// Range scan: up to `limit` rows with key >= from, fetching each row's
  /// heap page.
  OpStats range(std::uint64_t from, std::size_t limit);

  [[nodiscard]] std::size_t rows() const { return index_.size(); }
  [[nodiscard]] const BTree& index() const { return index_; }
  [[nodiscard]] std::uint64_t heap_pages() const { return next_page_offset_ + 1; }

 private:
  struct RowLoc {
    std::uint64_t page;
    std::uint32_t slot;
  };
  static std::uint64_t pack(const RowLoc& loc) {
    return (loc.page << 8) | loc.slot;
  }
  [[nodiscard]] RowLoc unpack(std::uint64_t v) const {
    return RowLoc{v >> 8, static_cast<std::uint32_t>(v & 0xff)};
  }

  void touch_page(std::uint64_t page, bool dirty, OpStats& st);

  BufferPool& pool_;
  TableConfig cfg_;
  BTree index_;
  std::uint64_t next_page_offset_ = 0;
  std::uint32_t next_slot_ = 0;
};

} // namespace fluxtrace::db
