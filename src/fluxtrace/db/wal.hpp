// Write-ahead log with group commit — the third fluctuation source in the
// DB case study: most inserts only append to the in-memory log buffer,
// but the insert that fills it pays the whole group's flush (the classic
// cause of periodic latency spikes that look random at the query level).
#pragma once

#include <cstdint>

namespace fluxtrace::db {

class Wal {
 public:
  /// `group_size` records are buffered before a flush is forced.
  explicit Wal(std::size_t group_size = 128);

  struct AppendResult {
    bool flushed = false;          ///< this append triggered group commit
    std::size_t records_flushed = 0;
  };
  AppendResult append();

  /// Commit whatever is pending (transaction boundary / shutdown).
  std::size_t force_flush();

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t records() const { return records_; }

 private:
  std::size_t group_size_;
  std::size_t pending_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t records_ = 0;
};

} // namespace fluxtrace::db
