// Buffer pool — the database's page cache, and the main source of the
// §IV-B-style fluctuation in the DB case study: the same point query is
// fast while its heap page is pooled and pays a storage read once a scan
// has evicted it. LRU over a fixed set of frames, with dirty-page
// write-back accounting (an eviction of a dirty page costs a write before
// the read).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace fluxtrace::db {

class BufferPool {
 public:
  explicit BufferPool(std::size_t frames);

  struct FetchResult {
    bool hit = false;
    bool evicted_dirty = false; ///< eviction required a write-back
  };

  /// Bring `page` into the pool (LRU-touch it) and optionally dirty it.
  FetchResult fetch(std::uint64_t page, bool mark_dirty = false);

  [[nodiscard]] bool contains(std::uint64_t page) const {
    return frames_.count(page) > 0;
  }
  [[nodiscard]] bool dirty(std::uint64_t page) const;

  /// Write every dirty page back (checkpoint); returns how many.
  std::size_t flush_all();

  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Frame {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  std::size_t capacity_;
  std::list<std::uint64_t> lru_; ///< front = LRU victim, back = MRU
  std::unordered_map<std::uint64_t, Frame> frames_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

} // namespace fluxtrace::db
