#include "fluxtrace/db/wal.hpp"

#include <cassert>

namespace fluxtrace::db {

Wal::Wal(std::size_t group_size) : group_size_(group_size) {
  assert(group_size_ > 0);
}

Wal::AppendResult Wal::append() {
  ++records_;
  ++pending_;
  AppendResult res;
  if (pending_ >= group_size_) {
    res.flushed = true;
    res.records_flushed = pending_;
    pending_ = 0;
    ++flushes_;
  }
  return res;
}

std::size_t Wal::force_flush() {
  const std::size_t n = pending_;
  if (n > 0) {
    pending_ = 0;
    ++flushes_;
  }
  return n;
}

} // namespace fluxtrace::db
