#include "fluxtrace/db/table.hpp"

#include <cassert>

namespace fluxtrace::db {

Table::Table(BufferPool& pool, TableConfig cfg) : pool_(pool), cfg_(cfg) {
  assert(cfg_.rows_per_page > 0 && cfg_.rows_per_page <= 256 &&
         "slot fits in 8 bits of the packed row locator");
}

void Table::touch_page(std::uint64_t page, bool dirty, OpStats& st) {
  const BufferPool::FetchResult r = pool_.fetch(page, dirty);
  if (r.hit) {
    ++st.page_hits;
  } else {
    ++st.page_misses;
  }
  if (r.evicted_dirty) ++st.dirty_evictions;
}

OpStats Table::insert(std::uint64_t key) {
  OpStats st;
  const std::uint64_t page = cfg_.first_page + next_page_offset_;
  const BTree::InsertResult ir =
      index_.insert(key, pack(RowLoc{page, next_slot_}));
  st.index_nodes = ir.nodes_visited;
  st.index_splits = ir.splits;
  if (!ir.inserted) {
    st.found = true; // duplicate key: nothing written
    return st;
  }
  touch_page(page, /*dirty=*/true, st);
  st.rows = 1;
  if (++next_slot_ >= cfg_.rows_per_page) {
    next_slot_ = 0;
    ++next_page_offset_;
  }
  return st;
}

OpStats Table::point(std::uint64_t key) {
  OpStats st;
  const BTree::FindResult fr = index_.find(key);
  st.index_nodes = fr.nodes_visited;
  if (!fr.value.has_value()) return st;
  st.found = true;
  touch_page(unpack(*fr.value).page, /*dirty=*/false, st);
  st.rows = 1;
  return st;
}

OpStats Table::range(std::uint64_t from, std::size_t limit) {
  OpStats st;
  const BTree::ScanResult sr = index_.scan(from, limit);
  st.index_nodes = sr.nodes_visited;
  st.found = !sr.rows.empty();
  std::uint64_t last_page = ~std::uint64_t{0};
  for (const auto& [key, packed] : sr.rows) {
    const std::uint64_t page = unpack(packed).page;
    if (page != last_page) { // consecutive rows share pages
      touch_page(page, /*dirty=*/false, st);
      last_page = page;
    }
    ++st.rows;
  }
  return st;
}

} // namespace fluxtrace::db
