// In-memory B+ tree — the index substrate of the mini database engine.
// The paper's primary motivation (§I, §II-A) is database fluctuation:
// identical queries taking wildly different times depending on
// non-functional state. The tree reports per-operation structural costs
// (nodes visited, splits performed) so the simulated executor can charge
// exactly the work a query caused — splits are one of the fluctuation
// sources the DB case study exposes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace fluxtrace::db {

class BTree {
 public:
  /// `order` = max keys per node (fan-out − 1 for internals).
  explicit BTree(std::uint32_t order = 64);

  struct InsertResult {
    bool inserted = false; ///< false when the key already existed
    std::uint32_t nodes_visited = 0;
    std::uint32_t splits = 0;
  };
  InsertResult insert(std::uint64_t key, std::uint64_t value);

  struct FindResult {
    std::optional<std::uint64_t> value;
    std::uint32_t nodes_visited = 0;
  };
  [[nodiscard]] FindResult find(std::uint64_t key) const;

  struct ScanResult {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
    std::uint32_t nodes_visited = 0; ///< descent + leaf-chain hops
  };
  /// Up to `limit` rows with key >= from, in key order.
  [[nodiscard]] ScanResult scan(std::uint64_t from, std::size_t limit) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] std::uint64_t total_splits() const { return total_splits_; }

  /// Full structural validation (sorted keys, fill bounds, uniform leaf
  /// depth, correct separators, intact leaf chain). For tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::uint64_t> keys;
    // Internal: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf payloads, parallel to keys.
    std::vector<std::uint64_t> values;
    Node* next = nullptr; ///< leaf chain
  };

  struct SplitOut {
    std::uint64_t sep_key = 0;
    std::unique_ptr<Node> right;
  };

  /// Insert into subtree; returns a split description when `node`
  /// overflowed and divided.
  std::optional<SplitOut> insert_rec(Node* node, std::uint64_t key,
                                     std::uint64_t value, InsertResult& res);

  bool check_rec(const Node* node, std::uint32_t depth,
                 std::optional<std::uint64_t> lo,
                 std::optional<std::uint64_t> hi) const;

  std::uint32_t order_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::uint32_t height_ = 1;
  std::uint64_t total_splits_ = 0;
};

} // namespace fluxtrace::db
