// The two classifiers of the case study:
//
//  * MultiTrieClassifier — models librte_acl: rules are divided across
//    multiple tries (a memory-driven limit in DPDK; the paper enlarges the
//    vanilla 8-trie cap so 50,000 rules land in 247 tries), and every trie
//    is walked for every packet. The per-packet work — and therefore the
//    latency fluctuation — scales with how deep each trie walk gets before
//    its early exit, amplified by the number of tries.
//  * LinearScanClassifier — the semantic oracle used by tests and as the
//    naive baseline in benches.
//
// AclCostModel converts a classification's trie/node counts into simulated
// uops so the firewall app can execute rte_acl_classify as an exec block.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/acl/rule.hpp"
#include "fluxtrace/acl/ruleset.hpp"
#include "fluxtrace/acl/trie.hpp"

namespace fluxtrace::acl {

/// Outcome of classifying one packet (either classifier).
struct ClassifyResult {
  bool matched = false;
  Action action = Action::Permit; ///< Permit when no rule matches
  std::int32_t priority = 0;
  std::uint32_t nodes_visited = 0; ///< total byte lookups across all tries
  std::uint32_t tries_walked = 0;
};

/// DPDK stores at most this many tries regardless of rule count; the paper
/// patches the limit to reach 247 tries for Table III.
inline constexpr std::uint32_t kVanillaMaxTries = 8;

struct MultiTrieConfig {
  /// Rules per trie; 0 derives it as ceil(n_rules / max_tries).
  std::uint32_t rules_per_trie = 0;
  /// Used only when rules_per_trie == 0.
  std::uint32_t max_tries = kVanillaMaxTries;
};

/// The paper's modified build: 50,000 Table III rules / 203 → 247 tries.
inline constexpr std::uint32_t kPaperRulesPerTrie = 203;

class MultiTrieClassifier {
 public:
  MultiTrieClassifier(const RuleSet& rules, MultiTrieConfig cfg = {});

  [[nodiscard]] ClassifyResult classify(const FlowKey& key) const;

  [[nodiscard]] std::uint32_t num_tries() const {
    return static_cast<std::uint32_t>(tries_.size());
  }
  [[nodiscard]] std::size_t num_rules() const { return num_rules_; }
  [[nodiscard]] std::size_t total_nodes() const;

 private:
  std::vector<ByteTrie> tries_;
  std::size_t num_rules_ = 0;
};

class LinearScanClassifier {
 public:
  explicit LinearScanClassifier(RuleSet rules) : rules_(std::move(rules)) {}

  [[nodiscard]] ClassifyResult classify(const FlowKey& key) const;
  [[nodiscard]] std::size_t num_rules() const { return rules_.size(); }

 private:
  RuleSet rules_;
};

/// Execution cost of rte_acl_classify in simulated uops, calibrated so the
/// 247-trie Table III workload lands in the paper's latency band
/// (type C ≈ 6 µs, type A ≈ 13 µs on the ~3 GHz machine).
struct AclCostModel {
  std::uint64_t per_packet_uops = 2000; ///< fixed entry/exit + key setup
  std::uint64_t per_trie_uops = 70;     ///< per-trie setup/teardown
  std::uint64_t per_node_uops = 32;     ///< one DFA transition

  [[nodiscard]] std::uint64_t uops(const ClassifyResult& r) const {
    return per_packet_uops +
           static_cast<std::uint64_t>(r.tries_walked) * per_trie_uops +
           static_cast<std::uint64_t>(r.nodes_visited) * per_node_uops;
  }
};

} // namespace fluxtrace::acl
