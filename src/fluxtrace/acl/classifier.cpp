#include "fluxtrace/acl/classifier.hpp"

#include <cassert>

namespace fluxtrace::acl {

MultiTrieClassifier::MultiTrieClassifier(const RuleSet& rules,
                                         MultiTrieConfig cfg)
    : num_rules_(rules.size()) {
  if (rules.empty()) return;
  std::uint32_t per_trie = cfg.rules_per_trie;
  if (per_trie == 0) {
    assert(cfg.max_tries > 0);
    per_trie = static_cast<std::uint32_t>(
        (rules.size() + cfg.max_tries - 1) / cfg.max_tries);
  }
  const std::size_t n_tries = (rules.size() + per_trie - 1) / per_trie;
  tries_.resize(n_tries);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    tries_[i / per_trie].insert(rules[i]);
  }
}

ClassifyResult MultiTrieClassifier::classify(const FlowKey& key) const {
  const auto bytes = key.key_bytes();
  ClassifyResult out;
  for (const ByteTrie& t : tries_) {
    const ByteTrie::LookupResult r = t.lookup(bytes);
    ++out.tries_walked;
    out.nodes_visited += r.nodes_visited;
    if (r.matched && (!out.matched || r.priority > out.priority)) {
      out.matched = true;
      out.priority = r.priority;
      out.action = r.action;
    }
  }
  return out;
}

std::size_t MultiTrieClassifier::total_nodes() const {
  std::size_t n = 0;
  for (const ByteTrie& t : tries_) n += t.num_nodes();
  return n;
}

ClassifyResult LinearScanClassifier::classify(const FlowKey& key) const {
  ClassifyResult out;
  for (const AclRule& r : rules_) {
    ++out.nodes_visited; // one rule comparison ~ one "visit"
    if (r.matches(key) && (!out.matched || r.priority > out.priority)) {
      out.matched = true;
      out.priority = r.priority;
      out.action = r.action;
    }
  }
  return out;
}

} // namespace fluxtrace::acl
