// Range → prefix decomposition for 16-bit port fields. A trie walks the
// key byte-by-byte, so an arbitrary [lo, hi] port range must be expressed
// as a minimal set of aligned power-of-two blocks (prefixes) before
// insertion — the classic technique packet classifiers use.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace fluxtrace::acl {

/// An aligned block of 2^(16-len) consecutive 16-bit values starting at
/// `value` (whose low 16-len bits are zero).
struct Prefix16 {
  std::uint16_t value = 0;
  std::uint8_t len = 16; ///< prefix length in bits; 16 = exact value

  [[nodiscard]] std::uint16_t lo() const { return value; }
  [[nodiscard]] std::uint16_t hi() const {
    return static_cast<std::uint16_t>(value | (0xffffu >> len));
  }
  friend bool operator==(const Prefix16&, const Prefix16&) = default;
};

/// Decompose [lo, hi] (inclusive, lo <= hi) into the minimal ordered set
/// of prefixes. At most 30 prefixes for any 16-bit range.
[[nodiscard]] std::vector<Prefix16> decompose_range(std::uint16_t lo,
                                                    std::uint16_t hi);

/// Per-byte inclusive bounds a prefix imposes on the two bytes of a
/// big-endian 16-bit field.
struct ByteRange {
  std::uint8_t lo = 0;
  std::uint8_t hi = 0xff;
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

/// The two byte-ranges (high byte first) a Prefix16 constrains.
[[nodiscard]] std::pair<ByteRange, ByteRange> prefix_bytes(const Prefix16& p);

/// The four byte-ranges (big-endian) an IPv4 prefix addr/len constrains.
[[nodiscard]] std::array<ByteRange, 4> ipv4_prefix_bytes(std::uint32_t addr,
                                                         std::uint8_t len);

} // namespace fluxtrace::acl
