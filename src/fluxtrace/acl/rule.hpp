// ACL rules over the 12-byte flow key: IPv4 prefixes for addresses, value
// ranges for ports — the same rule shape DPDK's librte_acl supports for
// the paper's firewall case study.
#pragma once

#include <cstdint>

#include "fluxtrace/base/flow.hpp"

namespace fluxtrace::acl {

enum class Action : std::uint8_t { Permit, Drop };

struct AclRule {
  std::uint32_t src_addr = 0;
  std::uint8_t src_len = 0; ///< 0 = match any
  std::uint32_t dst_addr = 0;
  std::uint8_t dst_len = 0;
  std::uint16_t sport_lo = 0;
  std::uint16_t sport_hi = 0xffff;
  std::uint16_t dport_lo = 0;
  std::uint16_t dport_hi = 0xffff;
  std::int32_t priority = 0; ///< higher wins among matches
  Action action = Action::Drop;

  /// Semantic match — the oracle the trie is verified against.
  [[nodiscard]] bool matches(const FlowKey& k) const {
    const auto pfx_match = [](std::uint32_t addr, std::uint32_t rule_addr,
                              std::uint8_t len) {
      if (len == 0) return true;
      const std::uint32_t mask = ~0u << (32 - len);
      return (addr & mask) == (rule_addr & mask);
    };
    return pfx_match(k.src_addr, src_addr, src_len) &&
           pfx_match(k.dst_addr, dst_addr, dst_len) &&
           k.src_port >= sport_lo && k.src_port <= sport_hi &&
           k.dst_port >= dport_lo && k.dst_port <= dport_hi;
  }
};

} // namespace fluxtrace::acl
