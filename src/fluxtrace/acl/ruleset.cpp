#include "fluxtrace/acl/ruleset.hpp"

namespace fluxtrace::acl {

RuleSet make_paper_ruleset(const PaperRulesetParams& p) {
  RuleSet rules;
  rules.reserve(static_cast<std::size_t>(p.full_src_ports) * p.dport_full +
                p.dport_tail);
  std::int32_t prio = 0;
  const auto add = [&](std::uint16_t sp, std::uint16_t dp) {
    AclRule r;
    r.src_addr = p.src_net;
    r.src_len = p.prefix_len;
    r.dst_addr = p.dst_net;
    r.dst_len = p.prefix_len;
    r.sport_lo = r.sport_hi = sp;
    r.dport_lo = r.dport_hi = dp;
    r.priority = ++prio;
    r.action = Action::Drop;
    rules.push_back(r);
  };
  for (std::uint16_t sp = 1; sp <= p.full_src_ports; ++sp) {
    for (std::uint16_t dp = 1; dp <= p.dport_full; ++dp) add(sp, dp);
  }
  for (std::uint16_t dp = 1; dp <= p.dport_tail; ++dp) add(p.tail_src_port, dp);
  return rules;
}

RuleSet make_random_ruleset(std::size_t n, std::uint64_t seed) {
  // splitmix64: small, deterministic, good enough for test workloads.
  auto next = [state = seed]() mutable {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  RuleSet rules;
  rules.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AclRule r;
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    // Cluster sources into a handful of subnets so tries share structure.
    r.src_addr = (ipv4("10.0.0.0") | (static_cast<std::uint32_t>(a) & 0x0007ff00u));
    r.src_len = static_cast<std::uint8_t>(16 + (a >> 32) % 17); // 16..32
    r.dst_addr = (ipv4("172.16.0.0") | (static_cast<std::uint32_t>(b) & 0x000fff00u));
    r.dst_len = static_cast<std::uint8_t>(16 + (b >> 32) % 17);
    const auto s1 = static_cast<std::uint16_t>(next() % 4096);
    const auto s2 = static_cast<std::uint16_t>(s1 + next() % 512);
    r.sport_lo = s1;
    r.sport_hi = s2 < s1 ? s1 : s2;
    const auto d1 = static_cast<std::uint16_t>(next() % 4096);
    const auto d2 = static_cast<std::uint16_t>(d1 + next() % 512);
    r.dport_lo = d1;
    r.dport_hi = d2 < d1 ? d1 : d2;
    r.priority = static_cast<std::int32_t>(i + 1);
    r.action = (next() & 1) != 0 ? Action::Drop : Action::Permit;
    rules.push_back(r);
  }
  return rules;
}

} // namespace fluxtrace::acl
