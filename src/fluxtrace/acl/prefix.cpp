#include "fluxtrace/acl/prefix.hpp"

#include <cassert>

namespace fluxtrace::acl {

std::vector<Prefix16> decompose_range(std::uint16_t lo, std::uint16_t hi) {
  assert(lo <= hi);
  std::vector<Prefix16> out;
  std::uint32_t cur = lo;
  const std::uint32_t end = static_cast<std::uint32_t>(hi) + 1;
  while (cur < end) {
    // Largest aligned block starting at cur that does not overshoot end.
    std::uint32_t size = 1;
    while (size < 0x10000u) {
      const std::uint32_t next = size << 1;
      if ((cur & (next - 1)) != 0) break;  // alignment bound
      if (cur + next > end) break;         // range bound
      size = next;
    }
    std::uint8_t len = 16;
    for (std::uint32_t s = size; s > 1; s >>= 1) --len;
    out.push_back(Prefix16{static_cast<std::uint16_t>(cur), len});
    cur += size;
  }
  return out;
}

std::pair<ByteRange, ByteRange> prefix_bytes(const Prefix16& p) {
  const std::uint16_t lo = p.lo();
  const std::uint16_t hi = p.hi();
  ByteRange high{static_cast<std::uint8_t>(lo >> 8),
                 static_cast<std::uint8_t>(hi >> 8)};
  ByteRange low{0, 0xff};
  if (p.len >= 8) {
    // High byte is fully determined (high.lo == high.hi); the low byte
    // spans the within-block range.
    low = ByteRange{static_cast<std::uint8_t>(lo & 0xff),
                    static_cast<std::uint8_t>(hi & 0xff)};
  }
  // For len < 8 the block is aligned to >= 256 values, so the low byte is
  // the full [0, 255] and the high byte a contiguous range — already set.
  return {high, low};
}

std::array<ByteRange, 4> ipv4_prefix_bytes(std::uint32_t addr,
                                           std::uint8_t len) {
  assert(len <= 32);
  const std::uint32_t mask = len == 0 ? 0u : (~0u << (32 - len));
  const std::uint32_t lo = addr & mask;
  const std::uint32_t hi = lo | ~mask;
  std::array<ByteRange, 4> out;
  for (int b = 0; b < 4; ++b) {
    const int shift = 8 * (3 - b);
    const auto blo = static_cast<std::uint8_t>(lo >> shift);
    const auto bhi = static_cast<std::uint8_t>(hi >> shift);
    // A prefix constrains a whole-byte boundary: every byte is either
    // exact, a contiguous range (the partial byte), or full.
    out[static_cast<std::size_t>(b)] = ByteRange{blo, bhi};
  }
  return out;
}

} // namespace fluxtrace::acl
