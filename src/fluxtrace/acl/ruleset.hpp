// Rule-set containers and generators, including the paper's Table III
// workload: 666 × 750 + 500 = 50,000 drop rules over one source/24 and
// one destination/24, enumerated per (source port, destination port) pair.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/acl/rule.hpp"

namespace fluxtrace::acl {

using RuleSet = std::vector<AclRule>;

/// Parameters of the Table III generator. Note a paper-internal
/// inconsistency: Table III claims "666 × 750 + 500 = 50,000", but
/// 666 × 750 is 499,500. The operative numbers in the evaluation are the
/// total (50,000 rules) and the trie count (247), so the defaults use
/// 66 × 750 + 500 = 50,000 — which reproduces both — while keeping the
/// structure (one src/24, one dst/24, per-(sport, dport) rules, a shorter
/// dport range for the last sport).
struct PaperRulesetParams {
  std::uint32_t src_net = ipv4("192.168.10.0");
  std::uint32_t dst_net = ipv4("192.168.11.0");
  std::uint8_t prefix_len = 24;
  std::uint16_t full_src_ports = 66;  ///< sports 1..66 get dports 1..dport_full
  std::uint16_t dport_full = 750;
  std::uint16_t tail_src_port = 67;   ///< next sport gets dports 1..dport_tail
  std::uint16_t dport_tail = 500;
};

/// Build the Table III rule set (50,000 rules with default params).
[[nodiscard]] RuleSet make_paper_ruleset(const PaperRulesetParams& p = {});

/// A generic synthetic rule set for tests: `n` rules over a few subnets
/// with pseudo-random port ranges, deterministic in `seed`.
[[nodiscard]] RuleSet make_random_ruleset(std::size_t n, std::uint64_t seed);

/// The paper's Table IV test packets (types A, B, C).
struct PaperPackets {
  FlowKey type_a{ipv4("192.168.10.4"), ipv4("192.168.11.5"), 10001, 10002};
  FlowKey type_b{ipv4("192.168.10.4"), ipv4("192.168.22.2"), 10001, 10002};
  FlowKey type_c{ipv4("192.168.12.4"), ipv4("192.168.22.2"), 10001, 10002};
};

} // namespace fluxtrace::acl
