// Byte-wise trie over the 12-byte flow key, modelling librte_acl's
// per-trie matching behaviour (paper §IV-C1, design (3)): the key is
// consumed part by part — source address, destination address, then the
// port pair — and traversal stops at the first byte no rule in this trie
// can match. That early exit is the root cause of the fluctuation the
// paper diagnoses: packets whose prefixes match installed rules walk
// deeper, in every trie.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "fluxtrace/acl/prefix.hpp"
#include "fluxtrace/acl/rule.hpp"

namespace fluxtrace::acl {

class ByteTrie {
 public:
  ByteTrie();

  /// Insert one rule. Port ranges are decomposed into prefixes; each
  /// (sport-prefix × dport-prefix) combination becomes one 12-byte-range
  /// path. Overlapping paths split existing edges, cloning the shared
  /// subtree for the overlapped part so siblings stay independent.
  void insert(const AclRule& rule);

  struct LookupResult {
    bool matched = false;
    std::int32_t priority = std::numeric_limits<std::int32_t>::min();
    Action action = Action::Permit;
    std::uint32_t nodes_visited = 0; ///< byte lookups performed (1..12)
  };

  [[nodiscard]] LookupResult lookup(
      const std::array<std::uint8_t, kFlowKeyBytes>& key) const;

  [[nodiscard]] std::size_t num_rules() const { return num_rules_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

 private:
  using NodeId = std::uint32_t;

  struct Edge {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    NodeId child = 0;
  };

  struct Node {
    std::vector<Edge> edges; ///< sorted by lo, pairwise disjoint
    std::int32_t priority = std::numeric_limits<std::int32_t>::min();
    Action action = Action::Permit;
    bool terminal = false;
  };

  NodeId new_node();
  NodeId clone_subtree(NodeId id);
  void insert_path(NodeId node,
                   const std::array<ByteRange, kFlowKeyBytes>& ranges,
                   std::size_t depth, std::int32_t priority, Action action);

  std::vector<Node> nodes_;
  std::size_t num_rules_ = 0;
};

} // namespace fluxtrace::acl
