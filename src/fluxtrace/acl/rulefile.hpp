// Rule-file parsing, in the format of DPDK's ACL sample applications:
//
//     @<src>/<len> <dst>/<len> <sport-lo>:<sport-hi> <dport-lo>:<dport-hi> <action>
//
// one rule per line ('@' prefix as in l3fwd-acl), '#' comments, blank
// lines ignored. Priority is assigned by position (earlier lines win),
// matching DPDK's convention for its sample rule files.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "fluxtrace/acl/ruleset.hpp"

namespace fluxtrace::acl {

class RuleParseError : public std::runtime_error {
 public:
  explicit RuleParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse a rule stream; throws RuleParseError with the offending line
/// number on malformed input.
[[nodiscard]] RuleSet parse_rules(std::istream& is);
[[nodiscard]] RuleSet parse_rules(const std::string& text);

/// Serialize a rule set in the same format (round-trip safe).
void write_rules(std::ostream& os, const RuleSet& rules);

} // namespace fluxtrace::acl
