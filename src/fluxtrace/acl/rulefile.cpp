#include "fluxtrace/acl/rulefile.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fluxtrace::acl {

namespace {

[[noreturn]] void fail(std::size_t lineno, const std::string& why) {
  throw RuleParseError("rule line " + std::to_string(lineno) + ": " + why);
}

std::uint32_t parse_addr(const std::string& tok, std::uint8_t& len,
                         std::size_t lineno) {
  const auto slash = tok.find('/');
  if (slash == std::string::npos) fail(lineno, "missing /len in '" + tok + "'");
  const std::uint32_t addr = ipv4(tok.substr(0, slash).c_str());
  if (addr == 0 && tok.substr(0, slash) != "0.0.0.0") {
    fail(lineno, "bad address '" + tok + "'");
  }
  const long l = std::strtol(tok.c_str() + slash + 1, nullptr, 10);
  if (l < 0 || l > 32) fail(lineno, "bad prefix length in '" + tok + "'");
  len = static_cast<std::uint8_t>(l);
  return addr;
}

void parse_port_range(const std::string& tok, std::uint16_t& lo,
                      std::uint16_t& hi, std::size_t lineno) {
  const auto colon = tok.find(':');
  if (colon == std::string::npos) {
    fail(lineno, "missing : in port range '" + tok + "'");
  }
  const long a = std::strtol(tok.substr(0, colon).c_str(), nullptr, 10);
  const long b = std::strtol(tok.c_str() + colon + 1, nullptr, 10);
  if (a < 0 || a > 0xffff || b < 0 || b > 0xffff || a > b) {
    fail(lineno, "bad port range '" + tok + "'");
  }
  lo = static_cast<std::uint16_t>(a);
  hi = static_cast<std::uint16_t>(b);
}

} // namespace

RuleSet parse_rules(std::istream& is) {
  RuleSet rules;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream ls(line);
    std::string src, dst, sports, dports, action;
    ls >> src >> dst >> sports >> dports >> action;
    if (src.empty() || src[0] != '@') {
      fail(lineno, "rules must start with '@'");
    }
    if (action.empty()) fail(lineno, "missing fields");
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing token '" + extra + "'");

    AclRule r;
    r.src_addr = parse_addr(src.substr(1), r.src_len, lineno);
    r.dst_addr = parse_addr(dst, r.dst_len, lineno);
    parse_port_range(sports, r.sport_lo, r.sport_hi, lineno);
    parse_port_range(dports, r.dport_lo, r.dport_hi, lineno);
    std::transform(action.begin(), action.end(), action.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (action == "drop" || action == "deny") {
      r.action = Action::Drop;
    } else if (action == "permit" || action == "allow" || action == "accept") {
      r.action = Action::Permit;
    } else {
      fail(lineno, "unknown action '" + action + "'");
    }
    rules.push_back(r);
  }
  // Earlier lines win: assign descending priority by position.
  const auto n = static_cast<std::int32_t>(rules.size());
  for (std::int32_t i = 0; i < n; ++i) rules[static_cast<std::size_t>(i)].priority = n - i;
  return rules;
}

RuleSet parse_rules(const std::string& text) {
  std::istringstream is(text);
  return parse_rules(is);
}

void write_rules(std::ostream& os, const RuleSet& rules) {
  // Emit in priority order (highest first) so a round-trip preserves the
  // earlier-line-wins semantics.
  RuleSet sorted = rules;
  std::sort(sorted.begin(), sorted.end(),
            [](const AclRule& a, const AclRule& b) {
              return a.priority > b.priority;
            });
  for (const AclRule& r : sorted) {
    os << '@' << ipv4_to_string(r.src_addr) << '/' << int(r.src_len) << ' '
       << ipv4_to_string(r.dst_addr) << '/' << int(r.dst_len) << ' '
       << r.sport_lo << ':' << r.sport_hi << ' ' << r.dport_lo << ':'
       << r.dport_hi << ' '
       << (r.action == Action::Drop ? "drop" : "permit") << '\n';
  }
}

} // namespace fluxtrace::acl
