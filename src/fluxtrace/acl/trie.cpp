#include "fluxtrace/acl/trie.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace::acl {

ByteTrie::ByteTrie() {
  new_node(); // root = node 0
}

ByteTrie::NodeId ByteTrie::new_node() {
  nodes_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

ByteTrie::NodeId ByteTrie::clone_subtree(NodeId id) {
  // Children are cloned before the parent so `nodes_` reallocation during
  // recursion cannot invalidate a held reference.
  std::vector<Edge> edges = nodes_[id].edges;
  for (Edge& e : edges) e.child = clone_subtree(e.child);
  const NodeId copy = new_node();
  Node& n = nodes_[copy];
  n.edges = std::move(edges);
  n.priority = nodes_[id].priority;
  n.action = nodes_[id].action;
  n.terminal = nodes_[id].terminal;
  return copy;
}

void ByteTrie::insert(const AclRule& rule) {
  const auto src = ipv4_prefix_bytes(rule.src_addr, rule.src_len);
  const auto dst = ipv4_prefix_bytes(rule.dst_addr, rule.dst_len);
  const auto sports = decompose_range(rule.sport_lo, rule.sport_hi);
  const auto dports = decompose_range(rule.dport_lo, rule.dport_hi);

  std::array<ByteRange, kFlowKeyBytes> ranges;
  for (std::size_t i = 0; i < 4; ++i) {
    ranges[i] = src[i];
    ranges[4 + i] = dst[i];
  }
  for (const Prefix16& sp : sports) {
    const auto [sp_hi, sp_lo] = prefix_bytes(sp);
    ranges[8] = sp_hi;
    ranges[9] = sp_lo;
    for (const Prefix16& dp : dports) {
      const auto [dp_hi, dp_lo] = prefix_bytes(dp);
      ranges[10] = dp_hi;
      ranges[11] = dp_lo;
      insert_path(0, ranges, 0, rule.priority, rule.action);
    }
  }
  ++num_rules_;
}

void ByteTrie::insert_path(NodeId node,
                           const std::array<ByteRange, kFlowKeyBytes>& ranges,
                           std::size_t depth, std::int32_t priority,
                           Action action) {
  if (depth == kFlowKeyBytes) {
    Node& n = nodes_[node];
    if (!n.terminal || priority > n.priority) {
      n.priority = priority;
      n.action = action;
    }
    n.terminal = true;
    return;
  }

  const ByteRange r = ranges[depth];
  std::uint32_t cover = r.lo; // uint32 so cover can pass 255 cleanly

  while (cover <= r.hi) {
    // Work on a fresh view each iteration: recursion below may reallocate.
    std::vector<Edge>& edges = nodes_[node].edges;
    auto it = std::lower_bound(
        edges.begin(), edges.end(), cover,
        [](const Edge& e, std::uint32_t v) { return e.hi < v; });

    if (it == edges.end() || it->lo > r.hi) {
      // Pure gap up to r.hi (or up to the next edge).
      const std::uint32_t gap_hi =
          it == edges.end() ? r.hi
                            : std::min<std::uint32_t>(r.hi, it->lo - 1);
      const NodeId child = new_node(); // may invalidate `edges`/`it`
      std::vector<Edge>& e2 = nodes_[node].edges;
      auto pos = std::lower_bound(
          e2.begin(), e2.end(), cover,
          [](const Edge& e, std::uint32_t v) { return e.hi < v; });
      pos = e2.insert(pos, Edge{static_cast<std::uint8_t>(cover),
                                static_cast<std::uint8_t>(gap_hi), child});
      insert_path(child, ranges, depth + 1, priority, action);
      cover = gap_hi + 1;
      continue;
    }

    if (it->lo > cover) {
      // Gap before this edge.
      const std::uint32_t gap_hi = std::min<std::uint32_t>(r.hi, it->lo - 1);
      const NodeId child = new_node();
      std::vector<Edge>& e2 = nodes_[node].edges;
      auto pos = std::lower_bound(
          e2.begin(), e2.end(), cover,
          [](const Edge& e, std::uint32_t v) { return e.hi < v; });
      pos = e2.insert(pos, Edge{static_cast<std::uint8_t>(cover),
                                static_cast<std::uint8_t>(gap_hi), child});
      insert_path(child, ranges, depth + 1, priority, action);
      cover = gap_hi + 1;
      continue;
    }

    // An existing edge covers `cover`.
    if (it->lo < cover) {
      // Split off the left part, which keeps the original subtree; the
      // right part (about to be modified) gets its own clone.
      const Edge old = *it;
      const NodeId copy = clone_subtree(old.child); // may reallocate
      std::vector<Edge>& e2 = nodes_[node].edges;
      auto pos = std::lower_bound(
          e2.begin(), e2.end(), old.lo,
          [](const Edge& e, std::uint32_t v) { return e.hi < v; });
      pos->hi = static_cast<std::uint8_t>(cover - 1); // left keeps original
      e2.insert(pos + 1, Edge{static_cast<std::uint8_t>(cover), old.hi, copy});
      continue; // re-enter: an edge now starts exactly at `cover`
    }

    // it->lo == cover.
    if (it->hi > r.hi) {
      // Split off the right part, which keeps the original subtree.
      const Edge old = *it;
      const NodeId copy = clone_subtree(old.child);
      std::vector<Edge>& e2 = nodes_[node].edges;
      auto pos = std::lower_bound(
          e2.begin(), e2.end(), old.lo,
          [](const Edge& e, std::uint32_t v) { return e.hi < v; });
      pos->lo = static_cast<std::uint8_t>(r.hi + 1); // right keeps original
      pos = e2.insert(pos, Edge{static_cast<std::uint8_t>(cover),
                                static_cast<std::uint8_t>(r.hi), copy});
      insert_path(copy, ranges, depth + 1, priority, action);
      cover = static_cast<std::uint32_t>(r.hi) + 1;
      continue;
    }

    // Edge fully inside [cover, r.hi]: descend as-is.
    const std::uint32_t edge_hi = it->hi;
    const NodeId child = it->child;
    insert_path(child, ranges, depth + 1, priority, action);
    cover = edge_hi + 1;
  }
}

ByteTrie::LookupResult ByteTrie::lookup(
    const std::array<std::uint8_t, kFlowKeyBytes>& key) const {
  LookupResult res;
  NodeId cur = 0;
  for (std::size_t depth = 0; depth < kFlowKeyBytes; ++depth) {
    ++res.nodes_visited;
    const Node& n = nodes_[cur];
    const std::uint8_t b = key[depth];
    auto it = std::lower_bound(
        n.edges.begin(), n.edges.end(), b,
        [](const Edge& e, std::uint8_t v) { return e.hi < v; });
    if (it == n.edges.end() || it->lo > b) {
      return res; // early exit: no rule in this trie matches the key prefix
    }
    cur = it->child;
  }
  const Node& leaf = nodes_[cur];
  if (leaf.terminal) {
    res.matched = true;
    res.priority = leaf.priority;
    res.action = leaf.action;
  }
  return res;
}

} // namespace fluxtrace::acl
