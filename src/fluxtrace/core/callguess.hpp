// Caller guessing — and its limits (§V-B2). PEBS records no call graph,
// so when a sample lands in a small utility function g, the only
// available heuristic is to attribute it to the function of the nearest
// preceding sample ("g was probably called by f"). The paper warns this
// "may lead to wrong understanding when a small utility function is
// called many times"; this module implements the heuristic so its error
// can be measured (bench/ext_call_graph).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"

namespace fluxtrace::core {

struct CallerGuess {
  /// guessed caller symbol → number of `utility` samples attributed to it.
  std::unordered_map<SymbolId, std::uint64_t> by_caller;
  std::uint64_t utility_samples = 0;  ///< samples that landed in `utility`
  std::uint64_t unattributed = 0;     ///< no preceding non-utility sample

  [[nodiscard]] std::uint64_t attributed_to(SymbolId caller) const {
    auto it = by_caller.find(caller);
    return it == by_caller.end() ? 0 : it->second;
  }
};

/// Attribute every sample inside `utility` to the nearest preceding
/// sample's function on the same core. Samples are grouped per core and
/// sorted by time internally.
[[nodiscard]] CallerGuess guess_callers(const SymbolTable& symtab,
                                        std::span<const PebsSample> samples,
                                        SymbolId utility);

} // namespace fluxtrace::core
