#include "fluxtrace/core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace fluxtrace::core {

DiagnosisReport diagnose(const TraceTable& table, const CpuSpec& spec,
                         DiagnosisConfig cfg) {
  DiagnosisReport rep;
  const std::vector<ItemId> items = table.items();
  rep.items = items.size();
  if (items.empty()) return rep;

  // Distribution of window totals.
  double sum = 0;
  std::vector<double> totals;
  totals.reserve(items.size());
  for (const ItemId item : items) {
    const double us = spec.us(table.item_window_total(item));
    totals.push_back(us);
    sum += us;
  }
  rep.mean_us = sum / static_cast<double>(totals.size());
  double ss = 0;
  for (const double x : totals) ss += (x - rep.mean_us) * (x - rep.mean_us);
  rep.stddev_us = totals.size() >= 2
                      ? std::sqrt(ss / static_cast<double>(totals.size() - 1))
                      : 0.0;
  std::vector<double> sorted = totals;
  std::sort(sorted.begin(), sorted.end());
  rep.p99_us = sorted[std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(sorted.size())) - 1))];

  // Offline outlier criterion: robust z-score against median/MAD, so a
  // fluctuation arriving first (the paper's query #1!) cannot poison its
  // own baseline the way a cold streaming detector would.
  const double median = sorted[sorted.size() / 2];
  std::vector<double> devs;
  devs.reserve(sorted.size());
  for (const double x : sorted) devs.push_back(std::abs(x - median));
  std::sort(devs.begin(), devs.end());
  const double mad = devs[devs.size() / 2];
  const double robust_sigma =
      std::max(1.4826 * mad, std::max(1e-9, median * 1e-3));

  struct Cand {
    ItemId item;
    Tsc total;
    double z;
  };
  std::vector<Cand> found;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const double z = (totals[i] - median) / robust_sigma;
    if (std::abs(z) > cfg.detector.k_sigma) {
      found.push_back(
          Cand{items[i], table.item_window_total(items[i]), z});
    }
  }
  std::sort(found.begin(), found.end(), [](const Cand& a, const Cand& b) {
    return std::abs(a.z) > std::abs(b.z);
  });

  for (const Cand& a : found) {
    if (rep.outliers.size() >= cfg.max_outliers) break;
    OutlierReport o;
    o.item = a.item;
    o.total = a.total;
    o.sigmas = a.z;
    const Tsc est_total = table.item_estimated_total(a.item);
    for (const SymbolId fn : table.functions(a.item)) {
      const Tsc e = table.elapsed(a.item, fn);
      if (e > o.dominant_elapsed) {
        o.dominant_elapsed = e;
        o.dominant_fn = fn;
      }
    }
    o.dominant_share =
        est_total > 0 ? static_cast<double>(o.dominant_elapsed) /
                            static_cast<double>(est_total)
                      : 0.0;
    rep.outliers.push_back(o);
  }
  return rep;
}

void DiagnosisReport::print(std::ostream& os, const SymbolTable& symtab) const {
  os << "items: " << items << "  mean: " << mean_us
     << " us  stddev: " << stddev_us << " us  p99: " << p99_us << " us\n";
  if (outliers.empty()) {
    os << "no outliers beyond the detector threshold\n";
    return;
  }
  os << "outliers (most deviant first):\n";
  for (const OutlierReport& o : outliers) {
    os << "  item #" << o.item << ": " << o.sigmas << " sigma";
    if (o.dominant_fn != kInvalidSymbol) {
      os << ", dominated by " << symtab.name(o.dominant_fn) << " ("
         << static_cast<int>(o.dominant_share * 100.0) << "% of its time)";
    }
    os << '\n';
  }
}

std::string DiagnosisReport::str(const SymbolTable& symtab) const {
  std::ostringstream os;
  print(os, symtab);
  return os.str();
}

} // namespace fluxtrace::core
