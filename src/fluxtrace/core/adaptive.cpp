#include "fluxtrace/core/adaptive.hpp"

#include <algorithm>
#include <cassert>

namespace fluxtrace::core {

AdaptiveReset::AdaptiveReset(AdaptiveResetConfig cfg,
                             std::uint64_t initial_reset, const CpuSpec& spec,
                             Reprogram reprogram)
    : cfg_(cfg),
      reset_(initial_reset),
      spec_(spec),
      reprogram_(std::move(reprogram)) {
  assert(cfg_.target_interval_ns > 0.0);
  assert(cfg_.window >= 2);
  assert(initial_reset >= cfg_.min_reset && initial_reset <= cfg_.max_reset);
}

void AdaptiveReset::on_sample(const PebsSample& s) {
  if (in_window_ == 0) {
    window_start_ = s.tsc;
  }
  last_tsc_ = s.tsc;
  ++in_window_;
  if (in_window_ >= cfg_.window) {
    maybe_adjust();
    in_window_ = 0;
  }
}

void AdaptiveReset::nudge(double factor) {
  assert(factor > 0.0);
  // Samples accumulated so far were taken at the *old* R; a windowed
  // adjustment computed over them would partially undo this nudge.
  // Restart the window so the next decision sees only post-nudge data.
  in_window_ = 0;
  const auto proposed = static_cast<std::uint64_t>(
      static_cast<double>(reset_) * factor + 0.5);
  const std::uint64_t clamped =
      std::clamp(proposed, cfg_.min_reset, cfg_.max_reset);
  if (clamped == reset_) return;
  reset_ = clamped;
  ++adjustments_;
  if (reprogram_) reprogram_(reset_);
}

void AdaptiveReset::maybe_adjust() {
  if (last_tsc_ <= window_start_) return;
  const double achieved_ns =
      spec_.ns(last_tsc_ - window_start_) /
      static_cast<double>(cfg_.window - 1);
  last_interval_ns_ = achieved_ns;
  if (achieved_ns <= 0.0) return;

  // interval ∝ R (the §V-C linearity): proportional correction.
  const double factor = cfg_.target_interval_ns / achieved_ns;
  if (factor < cfg_.min_adjust_ratio && factor > 1.0 / cfg_.min_adjust_ratio) {
    return; // inside the dead-band
  }
  const auto proposed = static_cast<std::uint64_t>(
      static_cast<double>(reset_) * factor + 0.5);
  const std::uint64_t clamped =
      std::clamp(proposed, cfg_.min_reset, cfg_.max_reset);
  if (clamped == reset_) return;
  reset_ = clamped;
  ++adjustments_;
  if (reprogram_) reprogram_(reset_);
}

} // namespace fluxtrace::core
