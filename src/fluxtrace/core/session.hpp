// Supervised capture sessions (ISSUE 4): the control loop that keeps a
// long-running OnlineTracer capture alive through the failures §III-E
// says production tracing must expect — drains falling behind markers,
// a spool disk that stalls or fills, bursty overload.
//
// The supervisor runs the tracer + io::ResilientWriter pair as one
// *session* with an explicit health state machine:
//
//   healthy ──▶ backpressured ──▶ shedding ──▶ degraded ──▶ halted
//      ▲             │  queue/backlog   │  R raised   │ records    │ every
//      └─────────────┴──── watermarks ──┴─ (nudge) ───┴─ dropping ─┘ sink dead
//
// and the arrows run both ways: states are recomputed every watchdog
// tick, so a transient stall heals back to healthy without operator
// action. Degradation is ordered deliberately (the paper's §V-C knob
// first): under pressure the watchdog sheds *sample rate* — raising the
// PEBS reset R through AdaptiveReset::nudge() — before the writer is
// ever allowed to shed *records*; when the backlog clears, R is restored
// step by step within a bounded number of calm ticks.
//
// Every transition, escalation, and stall is visible through obs
// counters and a per-state span track, so `--telemetry` captures the
// session's own degradation story alongside the workload's.
//
// Clock: the supervisor is single-threaded and driven by tick(now) with
// the same caller-supplied monotonic ns clock the writer uses (virtual
// TSC-derived ns in simulation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fluxtrace/core/adaptive.hpp"
#include "fluxtrace/core/online.hpp"
#include "fluxtrace/io/resilient.hpp"

namespace fluxtrace::core {

enum class SessionState : std::uint8_t {
  Healthy,       ///< everything flowing, no pressure
  Backpressured, ///< queue/backlog above the high watermark, nothing lost
  Shedding,      ///< R raised (sample rate shed) to relieve pressure
  Degraded,      ///< records are being dropped (queue overflow or sink loss)
  Halted,        ///< every sink circuit open: the session cannot persist
};

[[nodiscard]] const char* to_string(SessionState s);

struct SessionSupervisorConfig {
  /// Pressure watermarks: tracer pending-item backlog (items) and writer
  /// staging queue (chunks). Crossing `high` raises pressure; the session
  /// only relaxes once both are at or below `low` (hysteresis).
  std::size_t backlog_high = 64;
  std::size_t backlog_low = 16;
  std::size_t queue_high = 48;
  std::size_t queue_low = 8;

  /// Watchdog: with staged chunks waiting, this long without a single
  /// chunk committing means the sink is stalled (deadline miss).
  std::uint64_t stall_deadline_ns = 5'000'000;

  /// Escalation: each step multiplies R by shed_factor (nudge); at most
  /// max_shed_steps steps, no two steps closer than escalate_gap_ns.
  double shed_factor = 2.0;
  std::uint32_t max_shed_steps = 4;
  std::uint64_t escalate_gap_ns = 1'000'000;
  /// De-escalation: one restoring step per calm_hold_ns of the session
  /// staying at or below the low watermarks — bounded recovery time.
  std::uint64_t calm_hold_ns = 2'000'000;

  /// --- follower alert loop (ISSUE 6) ----------------------------------
  /// A live follower (`flxt_query --follow`) reporting a fluctuation
  /// closes the adaptive loop: the supervisor nudges R *down* by this
  /// factor (< 1 = finer sampling around the flagged item range) so the
  /// anomaly's neighborhood is captured at higher fidelity.
  double alert_boost_factor = 0.5;
  /// Bounded stacking: at most this many boost steps held at once.
  std::uint32_t max_alert_boosts = 2;
  /// A boost step is restored after this long without a fresh alert
  /// (checked every tick), so fidelity decays back to the planned R.
  std::uint64_t alert_hold_ns = 4'000'000;
};

/// What a live follower detected (query::StreamAlert, decoupled so core
/// does not depend on query): the flagged {item, func} and when.
struct FollowerAlert {
  ItemId item = kNoItem;
  std::uint64_t func = 0;
  std::uint64_t at_ns = 0;
};

/// One recorded state change.
struct SessionTransition {
  std::uint64_t at_ns = 0;
  SessionState from = SessionState::Healthy;
  SessionState to = SessionState::Healthy;
  const char* reason = ""; ///< static string, e.g. "backlog>=high"
};

class SessionSupervisor {
 public:
  /// `reset` may be null (no rate shedding available; the session then
  /// escalates straight from backpressured to degraded under pressure).
  /// The tracer's dump and shed callbacks are taken over by the
  /// supervisor; the tracer/writer/reset must outlive it.
  SessionSupervisor(OnlineTracer& tracer, io::ResilientWriter& writer,
                    SessionSupervisorConfig cfg = {},
                    AdaptiveReset* reset = nullptr);

  // --- streaming inputs (forwarded to the tracer) -----------------------
  void on_marker(const Marker& m, std::uint64_t now_ns);
  void on_sample(const PebsSample& s, std::uint64_t now_ns);
  void on_sample_lost(const SampleLoss& l, std::uint64_t now_ns);

  /// A live follower flagged a fluctuation: boost sampling fidelity
  /// (nudge R down by alert_boost_factor, at most max_alert_boosts
  /// steps) around the flagged item range. Suppressed while the session
  /// is shedding/degraded/halted — pressure relief always wins over
  /// fidelity. Boosts decay one step per alert_hold_ns without a fresh
  /// alert (enforced by tick()).
  void on_follower_alert(const FollowerAlert& a, std::uint64_t now_ns);

  /// Watchdog heartbeat: pump the writer, check deadlines/watermarks,
  /// escalate or de-escalate, recompute the state. Call at least a few
  /// times per stall_deadline_ns.
  void tick(std::uint64_t now_ns);

  /// End of session: finalize the tracer, close the writer (eof
  /// sentinel), settle the final state.
  struct Report;
  Report finish(std::uint64_t now_ns);

  // --- observability ----------------------------------------------------
  struct Report {
    SessionState final_state = SessionState::Healthy;
    std::vector<SessionTransition> transitions;

    std::uint64_t ticks = 0;
    std::uint64_t stalls = 0;           ///< watchdog deadline misses
    std::uint64_t escalations = 0;      ///< nudge steps up (R raised)
    std::uint64_t deescalations = 0;    ///< nudge steps down (R restored)
    std::uint32_t shed_steps_final = 0; ///< steps still applied at finish

    /// Follower alert loop (ISSUE 6).
    std::uint64_t alerts_received = 0;   ///< on_follower_alert calls
    std::uint64_t alert_boosts = 0;      ///< fidelity boost steps applied
    std::uint64_t alert_restores = 0;    ///< boost steps decayed by hold
    std::uint64_t alerts_suppressed = 0; ///< ignored under shed pressure
    ItemId alert_item_lo = kNoItem;      ///< flagged item range [lo, hi]
    ItemId alert_item_hi = 0;

    /// Record accounting (the reconciliation the chaos soak asserts):
    /// every unrecorded sample is attributed to exactly one cause.
    std::uint64_t samples_seen = 0;     ///< reached the tracer
    std::uint64_t samples_lost = 0;     ///< counted capture losses (drain)
    double rshed_estimate = 0.0;        ///< samples never taken due to
                                        ///< raised R (factor model)
    io::ResilientWriter::Stats writer;  ///< committed/dropped/lost ledger
    bool reconciled = false;            ///< writer ledger adds up exactly

    [[nodiscard]] std::string summary() const;
  };

  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] const std::vector<SessionTransition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] std::uint32_t shed_steps() const { return shed_steps_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::uint32_t alert_boost_steps() const {
    return alert_boosts_held_;
  }

 private:
  void escalate(std::uint64_t now_ns);
  void deescalate(std::uint64_t now_ns);
  void set_state(std::uint64_t now_ns, SessionState next, const char* reason);
  [[nodiscard]] SessionState compute_state(std::uint64_t now_ns) const;
  void refresh(std::uint64_t now_ns, const char* reason);

  OnlineTracer& tracer_;
  io::ResilientWriter& writer_;
  SessionSupervisorConfig cfg_;
  AdaptiveReset* reset_;

  SessionState state_ = SessionState::Healthy;
  std::uint64_t state_since_ns_ = 0;
  std::vector<SessionTransition> transitions_;

  std::uint32_t shed_steps_ = 0;
  double shed_multiplier_ = 1.0; ///< shed_factor^shed_steps_ (cached)
  std::uint64_t last_escalate_ns_ = 0;
  std::uint64_t calm_since_ns_ = 0;
  bool was_calm_ = false;

  // Watchdog progress tracking.
  std::uint64_t last_committed_ = 0;
  std::uint64_t progress_at_ns_ = 0;
  bool stalled_ = false;

  // Tick-delta bookkeeping for "records are dropping right now".
  std::uint64_t last_dropped_ = 0;
  bool dropping_ = false;

  // Follower alert loop (ISSUE 6).
  std::uint32_t alert_boosts_held_ = 0;
  std::uint64_t last_alert_ns_ = 0;
  std::uint64_t alerts_received_ = 0;
  std::uint64_t alert_boosts_ = 0;
  std::uint64_t alert_restores_ = 0;
  std::uint64_t alerts_suppressed_ = 0;
  ItemId alert_item_lo_ = kNoItem;
  ItemId alert_item_hi_ = 0;

  std::uint64_t ticks_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t deescalations_ = 0;
  double rshed_estimate_ = 0.0;
  std::uint64_t last_now_ns_ = 0; ///< clock hint for callback-driven events
  bool finished_ = false;
};

} // namespace fluxtrace::core
