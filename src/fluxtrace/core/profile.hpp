// Profiles — the "averaged" view the paper contrasts with traces (Fig. 1,
// §V-B1). A profile cannot show a fluctuation, but it can estimate the
// mean elapsed time of functions *shorter* than the sample interval:
// t(f) ≈ T · n_f / N, where T is total run time, n_f the samples landing
// in f and N all samples.
#pragma once

#include <span>
#include <vector>

#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::core {

struct ProfileEntry {
  SymbolId fn = kInvalidSymbol;
  std::uint64_t samples = 0;
  double share = 0.0;   ///< n_f / N
  Tsc est_time = 0;     ///< T · n_f / N
};

class Profile {
 public:
  /// Build from a sample stream. `total_time` is T (the run's length in
  /// cycles); samples whose ip resolves to no symbol are dropped and
  /// counted.
  static Profile from_samples(const SymbolTable& symtab,
                              std::span<const PebsSample> samples,
                              Tsc total_time);

  /// Entries sorted by descending estimated time.
  [[nodiscard]] const std::vector<ProfileEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] Tsc est_time(SymbolId fn) const;
  [[nodiscard]] std::uint64_t samples(SymbolId fn) const;
  [[nodiscard]] std::uint64_t total_samples() const { return total_; }
  [[nodiscard]] std::uint64_t unresolved() const { return unresolved_; }
  [[nodiscard]] Tsc total_time() const { return total_time_; }

 private:
  std::vector<ProfileEntry> entries_;
  std::uint64_t total_ = 0;
  std::uint64_t unresolved_ = 0;
  Tsc total_time_ = 0;
};

} // namespace fluxtrace::core
