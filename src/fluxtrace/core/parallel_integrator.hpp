// Sharded multi-core trace analysis (ROADMAP: "as fast as the hardware
// allows"). PEBS capture emits 100+ MB/s per core (§IV-C3), so at scale
// the offline integration step — not capture — becomes the bottleneck.
// ParallelIntegrator shards the marker and sample streams by *core*, the
// natural key: an ItemWindow never spans cores, sample→item lookup only
// consults same-core windows, and per-core watermarks are core-local.
// Each shard runs an ordinary TraceIntegrator pass on a work-stealing
// rt::ThreadPool; the shard TraceTables are then merged in ascending core
// order, which reproduces the sequential result *exactly* (TraceTable
// operator==), including degraded-mode ItemQuality accounting. The one
// cross-core coupling — degraded orphan salvage consulting the set of
// known items — is handled by precomputing the global item set and
// injecting it into every shard (IntegratorConfig::salvage_items).
// docs/parallel_analysis.md spells out the full determinism argument.
#pragma once

#include <span>

#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace::core {

class ParallelIntegrator {
 public:
  /// n_threads == 0 picks the hardware concurrency. Whatever the thread
  /// count, the result is identical to TraceIntegrator over the same
  /// input and configuration.
  explicit ParallelIntegrator(const SymbolTable& symtab,
                              IntegratorConfig cfg = {},
                              unsigned n_threads = 0)
      : symtab_(symtab), cfg_(cfg), n_threads_(n_threads) {}

  [[nodiscard]] TraceTable integrate(std::span<const Marker> markers,
                                     std::span<const PebsSample> samples) const;
  [[nodiscard]] TraceTable integrate(std::span<const Marker> markers,
                                     std::span<const PebsSample> samples,
                                     std::span<const SampleLoss> losses) const;

 private:
  const SymbolTable& symtab_;
  IntegratorConfig cfg_;
  unsigned n_threads_;
};

} // namespace fluxtrace::core
