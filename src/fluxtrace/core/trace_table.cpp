#include "fluxtrace/core/trace_table.hpp"

#include <algorithm>
#include <set>

namespace fluxtrace::core {

void TraceTable::add_sample(ItemId item, SymbolId fn, std::uint32_t core,
                            Tsc tsc) {
  buckets_[item][inner_key(core, fn)].add(tsc);
  ++total_samples_;
}

void TraceTable::add_window(const ItemWindow& w) {
  windows_.push_back(w);
  if (w.synthesized()) {
    ++windows_synthesized_;
    ItemQuality& q = quality_[w.item];
    q.markers_synthesized += static_cast<std::uint32_t>(
        (w.synth & ItemWindow::kSynthEnter ? 1 : 0) +
        (w.synth & ItemWindow::kSynthLeave ? 1 : 0));
    degrade(w.item, Confidence::Reconstructed);
  }
}

void TraceTable::note_sample_lost(ItemId item) {
  ++quality_[item].samples_lost;
  degrade(item, Confidence::Degraded);
}

void TraceTable::note_sample_salvaged(ItemId item) {
  ++quality_[item].samples_salvaged;
  degrade(item, Confidence::Degraded);
}

void TraceTable::degrade(ItemId item, Confidence floor) {
  ItemQuality& q = quality_[item];
  if (static_cast<std::uint8_t>(q.confidence) <
      static_cast<std::uint8_t>(floor)) {
    q.confidence = floor;
  }
}

void TraceTable::merge_from(TraceTable&& other) {
  for (auto& [item, inner] : other.buckets_) {
    auto& mine = buckets_[item];
    for (auto& [key, stat] : inner) {
      BucketStat& b = mine[key];
      b.first = std::min(b.first, stat.first);
      b.last = std::max(b.last, stat.last);
      b.samples += stat.samples;
    }
  }
  windows_.insert(windows_.end(), other.windows_.begin(),
                  other.windows_.end());
  for (auto& [item, q] : other.quality_) {
    ItemQuality& mine = quality_[item];
    mine.samples_lost += q.samples_lost;
    mine.markers_synthesized += q.markers_synthesized;
    mine.samples_salvaged += q.samples_salvaged;
    if (static_cast<std::uint8_t>(mine.confidence) <
        static_cast<std::uint8_t>(q.confidence)) {
      mine.confidence = q.confidence;
    }
  }
  total_samples_ += other.total_samples_;
  unmatched_item_ += other.unmatched_item_;
  unmatched_symbol_ += other.unmatched_symbol_;
  unattributed_loss_ += other.unattributed_loss_;
  windows_synthesized_ += other.windows_synthesized_;
}

const ItemQuality& TraceTable::quality(ItemId item) const {
  static const ItemQuality kClean{};
  auto it = quality_.find(item);
  return it == quality_.end() ? kClean : it->second;
}

std::vector<ItemId> TraceTable::degraded_items() const {
  std::set<ItemId> ids;
  for (const auto& [item, q] : quality_) {
    if (!q.clean()) ids.insert(item);
  }
  return {ids.begin(), ids.end()};
}

Tsc TraceTable::elapsed(ItemId item, SymbolId fn) const {
  auto it = buckets_.find(item);
  if (it == buckets_.end()) return 0;
  Tsc sum = 0;
  for (const auto& [key, stat] : it->second) {
    if (static_cast<SymbolId>(key & 0xffffffffu) == fn) sum += stat.elapsed();
  }
  return sum;
}

std::uint64_t TraceTable::sample_count(ItemId item, SymbolId fn) const {
  auto it = buckets_.find(item);
  if (it == buckets_.end()) return 0;
  std::uint64_t n = 0;
  for (const auto& [key, stat] : it->second) {
    if (static_cast<SymbolId>(key & 0xffffffffu) == fn) n += stat.samples;
  }
  return n;
}

std::vector<ItemId> TraceTable::items() const {
  std::set<ItemId> ids;
  for (const auto& [item, _] : buckets_) ids.insert(item);
  for (const ItemWindow& w : windows_) ids.insert(w.item);
  return {ids.begin(), ids.end()};
}

std::vector<SymbolId> TraceTable::functions(ItemId item) const {
  std::set<SymbolId> fns;
  auto it = buckets_.find(item);
  if (it != buckets_.end()) {
    for (const auto& [key, _] : it->second) {
      fns.insert(static_cast<SymbolId>(key & 0xffffffffu));
    }
  }
  return {fns.begin(), fns.end()};
}

Tsc TraceTable::item_estimated_total(ItemId item) const {
  auto it = buckets_.find(item);
  if (it == buckets_.end()) return 0;
  Tsc sum = 0;
  for (const auto& [_, stat] : it->second) sum += stat.elapsed();
  return sum;
}

const ItemWindow* TraceTable::window_of(ItemId item,
                                        std::uint32_t core) const {
  for (const ItemWindow& w : windows_) {
    if (w.item == item && w.core == core) return &w;
  }
  return nullptr;
}

Tsc TraceTable::item_window_total(ItemId item) const {
  Tsc sum = 0;
  for (const ItemWindow& w : windows_) {
    if (w.item == item) sum += w.length();
  }
  return sum;
}

} // namespace fluxtrace::core
