#include "fluxtrace/core/session.hpp"

#include <sstream>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::core {

namespace {

struct SessionMetrics {
  obs::Counter& transitions =
      obs::metrics().counter("core.session.transitions");
  obs::Counter& escalations =
      obs::metrics().counter("core.session.escalations");
  obs::Counter& deescalations =
      obs::metrics().counter("core.session.deescalations");
  obs::Counter& stalls = obs::metrics().counter("core.session.stalls");
  obs::Counter& alerts = obs::metrics().counter("core.session.alerts");
  obs::Counter& alert_boosts =
      obs::metrics().counter("core.session.alert_boosts");
  obs::Gauge& state = obs::metrics().gauge("core.session.state");

  static SessionMetrics& get() {
    static SessionMetrics m;
    return m;
  }
};

/// Static-lifetime span names, one per state (SpanLog keeps the pointer).
const char* span_name(SessionState s) {
  switch (s) {
    case SessionState::Healthy: return "session.healthy";
    case SessionState::Backpressured: return "session.backpressured";
    case SessionState::Shedding: return "session.shedding";
    case SessionState::Degraded: return "session.degraded";
    case SessionState::Halted: return "session.halted";
  }
  return "session.?";
}

} // namespace

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::Healthy: return "healthy";
    case SessionState::Backpressured: return "backpressured";
    case SessionState::Shedding: return "shedding";
    case SessionState::Degraded: return "degraded";
    case SessionState::Halted: return "halted";
  }
  return "?";
}

SessionSupervisor::SessionSupervisor(OnlineTracer& tracer,
                                     io::ResilientWriter& writer,
                                     SessionSupervisorConfig cfg,
                                     AdaptiveReset* reset)
    : tracer_(tracer), writer_(writer), cfg_(cfg), reset_(reset) {
  // Anomalous items flow straight into the resilient spool: the item's
  // window markers (so flxt_report can rebuild the item offline) plus
  // its raw samples.
  tracer_.set_dump_callback(
      [this](const OnlineResult& res, const SampleVec& raw) {
        Marker ms[2];
        ms[0].kind = MarkerKind::Enter;
        ms[0].core = res.core;
        ms[0].tsc = res.enter;
        ms[0].item = res.item;
        ms[1].kind = MarkerKind::Leave;
        ms[1].core = res.core;
        ms[1].tsc = res.leave;
        ms[1].item = res.item;
        writer_.add_markers(ms, 2, last_now_ns_);
        if (!raw.empty()) {
          writer_.add_samples(raw.data(), raw.size(), last_now_ns_);
        }
      });
  // The tracer's own backlog trigger is a second escalation source: it
  // fires mid-burst, between watchdog ticks.
  tracer_.set_shed_callback([this](std::uint32_t /*core*/,
                                   std::size_t /*backlog*/) {
    escalate(last_now_ns_);
  });
}

void SessionSupervisor::on_marker(const Marker& m, std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  tracer_.on_marker(m);
}

void SessionSupervisor::on_sample(const PebsSample& s, std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  if (reset_ != nullptr) reset_->on_sample(s);
  // Every sample observed while R is raised stands for shed_multiplier
  // samples at the un-shed rate; the difference is the R-shed estimate
  // (§V-C linearity: interval ∝ R).
  if (shed_steps_ > 0) rshed_estimate_ += shed_multiplier_ - 1.0;
  tracer_.on_sample(s);
}

void SessionSupervisor::on_sample_lost(const SampleLoss& l,
                                       std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  tracer_.on_sample_lost(l);
}

void SessionSupervisor::on_follower_alert(const FollowerAlert& a,
                                          std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  ++alerts_received_;
  SessionMetrics::get().alerts.inc();
  if (a.item != kNoItem) {
    alert_item_lo_ = alert_item_lo_ == kNoItem
                         ? a.item
                         : std::min(alert_item_lo_, a.item);
    alert_item_hi_ = std::max(alert_item_hi_, a.item);
  }
  last_alert_ns_ = now_ns;
  // Pressure relief always wins over fidelity: never boost while the
  // session is already shedding rate or dropping records.
  if (reset_ == nullptr || shed_steps_ > 0 ||
      state_ >= SessionState::Shedding) {
    ++alerts_suppressed_;
    return;
  }
  if (alert_boosts_held_ >= cfg_.max_alert_boosts) return;
  const std::uint64_t before = reset_->current_reset();
  reset_->nudge(cfg_.alert_boost_factor);
  if (reset_->current_reset() == before) return; // clamped at min_reset
  ++alert_boosts_held_;
  ++alert_boosts_;
  SessionMetrics::get().alert_boosts.inc();
}

void SessionSupervisor::escalate(std::uint64_t now_ns) {
  // Shedding and fidelity boosting are opposing nudges: unwind any
  // alert boosts first so pressure relief starts from the planned R.
  while (alert_boosts_held_ > 0 && reset_ != nullptr) {
    reset_->nudge(1.0 / cfg_.alert_boost_factor);
    --alert_boosts_held_;
    ++alert_restores_;
  }
  if (reset_ == nullptr || shed_steps_ >= cfg_.max_shed_steps) return;
  if (escalations_ > 0 && now_ns - last_escalate_ns_ < cfg_.escalate_gap_ns) {
    return; // rate-limited: one step per gap
  }
  const std::uint64_t before = reset_->current_reset();
  reset_->nudge(cfg_.shed_factor);
  if (reset_->current_reset() == before) return; // clamped at max_reset
  ++shed_steps_;
  shed_multiplier_ *= cfg_.shed_factor;
  ++escalations_;
  last_escalate_ns_ = now_ns;
  SessionMetrics::get().escalations.inc();
}

void SessionSupervisor::deescalate(std::uint64_t now_ns) {
  if (reset_ == nullptr || shed_steps_ == 0) return;
  reset_->nudge(1.0 / cfg_.shed_factor);
  --shed_steps_;
  shed_multiplier_ /= cfg_.shed_factor;
  ++deescalations_;
  SessionMetrics::get().deescalations.inc();
  (void)now_ns;
}

SessionState SessionSupervisor::compute_state(std::uint64_t now_ns) const {
  const auto& ws = writer_.stats();
  if (ws.exhausted) return SessionState::Halted;
  if (dropping_) return SessionState::Degraded;
  if (shed_steps_ > 0) return SessionState::Shedding;
  if (stalled_ || tracer_.max_backlog() >= cfg_.backlog_high ||
      ws.queue_depth >= cfg_.queue_high || writer_.backing_off(now_ns)) {
    return SessionState::Backpressured;
  }
  return SessionState::Healthy;
}

void SessionSupervisor::set_state(std::uint64_t now_ns, SessionState next,
                                  const char* reason) {
  if (next == state_) return;
  transitions_.push_back({now_ns, state_, next, reason});
  SessionMetrics& sm = SessionMetrics::get();
  sm.transitions.inc();
  sm.state.add(static_cast<std::int64_t>(next) -
               static_cast<std::int64_t>(state_));
  if (obs::enabled() && now_ns > state_since_ns_) {
    obs::SpanLog::global().record_virtual(span_name(state_), state_since_ns_,
                                          now_ns, 0);
  }
  // Leaving a pressure state closes one wait-edge episode (ISSUE 8): the
  // whole interval the session spent backpressured or shedding is one
  // sink-side blocking span, spooled next to the data it delayed.
  if ((state_ == SessionState::Backpressured ||
       state_ == SessionState::Shedding) &&
      now_ns > state_since_ns_) {
    WaitEdge e;
    e.enter = state_since_ns_;
    e.leave = now_ns;
    e.cause = state_ == SessionState::Shedding ? WaitCause::Shed
                                               : WaitCause::SinkBackpressure;
    writer_.add_wait_edges(&e, 1, now_ns);
    obs::count_wait_edge(e);
  }
  state_ = next;
  state_since_ns_ = now_ns;
}

void SessionSupervisor::refresh(std::uint64_t now_ns, const char* reason) {
  const SessionState next = compute_state(now_ns);
  if (reason == nullptr) {
    switch (next) {
      case SessionState::Halted: reason = "sinks-exhausted"; break;
      case SessionState::Degraded: reason = "records-dropping"; break;
      case SessionState::Shedding: reason = "rate-shed-active"; break;
      case SessionState::Backpressured: reason = "pressure-high"; break;
      case SessionState::Healthy: reason = "pressure-cleared"; break;
    }
  }
  set_state(now_ns, next, reason);
}

void SessionSupervisor::tick(std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  ++ticks_;
  writer_.pump(now_ns);
  const auto& ws = writer_.stats();

  // Watchdog: staged chunks with no commit progress past the deadline is
  // a stalled sink (the drain-side deadline miss §III-E warns about).
  if (ws.chunks_committed != last_committed_ || ws.queue_depth == 0) {
    last_committed_ = ws.chunks_committed;
    progress_at_ns_ = now_ns;
    stalled_ = false;
  } else if (now_ns - progress_at_ns_ >= cfg_.stall_deadline_ns) {
    if (!stalled_) {
      ++stalls_;
      SessionMetrics::get().stalls.inc();
    }
    stalled_ = true;
  }

  const std::uint64_t dropped_now =
      ws.records_dropped_queue + ws.records_lost_sink;
  dropping_ = dropped_now != last_dropped_;
  last_dropped_ = dropped_now;

  // Fidelity boosts decay: one step restored per alert_hold_ns without
  // a fresh alert, so the session drifts back to the planned R.
  if (alert_boosts_held_ > 0 && reset_ != nullptr &&
      now_ns - last_alert_ns_ >= cfg_.alert_hold_ns) {
    reset_->nudge(1.0 / cfg_.alert_boost_factor);
    --alert_boosts_held_;
    ++alert_restores_;
    last_alert_ns_ = now_ns; // one restoring step per hold interval
  }

  const std::size_t backlog = tracer_.max_backlog();
  const bool pressure = stalled_ || backlog >= cfg_.backlog_high ||
                        ws.queue_depth >= cfg_.queue_high;
  const bool calm = !stalled_ && backlog <= cfg_.backlog_low &&
                    ws.queue_depth <= cfg_.queue_low;
  if (pressure) {
    was_calm_ = false;
    escalate(now_ns);
  } else if (calm) {
    if (shed_steps_ > 0) {
      if (!was_calm_) {
        was_calm_ = true;
        calm_since_ns_ = now_ns;
      } else if (now_ns - calm_since_ns_ >= cfg_.calm_hold_ns) {
        deescalate(now_ns);
        calm_since_ns_ = now_ns; // one restoring step per calm hold
      }
    } else {
      was_calm_ = true;
    }
  } else {
    was_calm_ = false;
  }

  refresh(now_ns, nullptr);
}

SessionSupervisor::Report SessionSupervisor::finish(std::uint64_t now_ns) {
  last_now_ns_ = now_ns;
  if (!finished_) {
    finished_ = true;
    tracer_.finish(); // late dumps flow into the writer via the callback
    writer_.close(now_ns);
    const auto& ws = writer_.stats();
    const std::uint64_t dropped_now =
        ws.records_dropped_queue + ws.records_lost_sink;
    dropping_ = dropped_now != last_dropped_;
    last_dropped_ = dropped_now;
    stalled_ = false; // the queue is settled now, one way or the other
    refresh(now_ns, "finish");
    // Close out the final state's span interval.
    if (obs::enabled() && now_ns > state_since_ns_) {
      obs::SpanLog::global().record_virtual(span_name(state_), state_since_ns_,
                                            now_ns, 0);
      state_since_ns_ = now_ns;
    }
  }

  Report r;
  r.final_state = state_;
  r.transitions = transitions_;
  r.ticks = ticks_;
  r.stalls = stalls_;
  r.escalations = escalations_;
  r.deescalations = deescalations_;
  r.shed_steps_final = shed_steps_;
  r.alerts_received = alerts_received_;
  r.alert_boosts = alert_boosts_;
  r.alert_restores = alert_restores_;
  r.alerts_suppressed = alerts_suppressed_;
  r.alert_item_lo = alert_item_lo_;
  r.alert_item_hi = alert_item_hi_;
  r.samples_seen = tracer_.samples_seen();
  r.samples_lost = tracer_.samples_lost();
  r.rshed_estimate = rshed_estimate_;
  r.writer = writer_.stats();
  r.reconciled = writer_.stats().reconciled();
  return r;
}

std::string SessionSupervisor::Report::summary() const {
  std::ostringstream os;
  os << "session: final=" << to_string(final_state)
     << " transitions=" << transitions.size() << " ticks=" << ticks
     << " stalls=" << stalls << "\n";
  for (const auto& t : transitions) {
    os << "  @" << t.at_ns << "  " << to_string(t.from) << " -> "
       << to_string(t.to) << "  (" << t.reason << ")\n";
  }
  os << "shedding: escalations=" << escalations
     << " deescalations=" << deescalations
     << " steps-at-finish=" << shed_steps_final
     << " r-shed-estimate=" << rshed_estimate << "\n";
  if (alerts_received > 0) {
    os << "alerts: received=" << alerts_received
       << " boosts=" << alert_boosts << " restores=" << alert_restores
       << " suppressed=" << alerts_suppressed;
    if (alert_item_lo != kNoItem) {
      os << " items=[" << alert_item_lo << ", " << alert_item_hi << "]";
    }
    os << "\n";
  }
  os << "capture: samples-seen=" << samples_seen
     << " samples-lost=" << samples_lost << "\n";
  os << "spool: enqueued=" << writer.records_enqueued
     << " committed=" << writer.records_committed
     << " queue-dropped=" << writer.records_dropped_queue
     << " sink-lost=" << writer.records_lost_sink
     << " (chunks " << writer.chunks_committed << "/"
     << writer.chunks_enqueued << ")\n";
  os << "spool: retries=" << writer.retries
     << " backoff-ns=" << writer.backoff_ns
     << " sync-failures=" << writer.sync_failures
     << " failovers=" << writer.failovers
     << " breaker-opens=" << writer.breaker_opens
     << " blocked=" << writer.blocked_enqueues << "\n";
  os << "reconciled: " << (reconciled ? "exact" : "MISMATCH")
     << " clean-close=" << (writer.closed_clean ? "yes" : "no") << "\n";
  return os.str();
}

} // namespace fluxtrace::core
