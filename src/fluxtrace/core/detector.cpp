#include "fluxtrace/core/detector.hpp"

namespace fluxtrace::core {

bool FluctuationDetector::observe(ItemId item, SymbolId fn, Tsc elapsed) {
  Welford& w = stats_[fn];
  bool flagged = false;
  if (w.n >= cfg_.warmup) {
    const double sd = w.stddev();
    const double x = static_cast<double>(elapsed);
    if (sd > 0.0 && std::abs(x - w.mean) > cfg_.k_sigma * sd) {
      anomalies_.push_back(Anomaly{item, fn, elapsed, w.mean, sd});
      flagged = true;
    }
  }
  w.add(static_cast<double>(elapsed));
  return flagged;
}

double FluctuationDetector::mean(SymbolId fn) const {
  auto it = stats_.find(fn);
  return it == stats_.end() ? 0.0 : it->second.mean;
}

double FluctuationDetector::sigma(SymbolId fn) const {
  auto it = stats_.find(fn);
  return it == stats_.end() ? 0.0 : it->second.stddev();
}

std::uint64_t FluctuationDetector::count(SymbolId fn) const {
  auto it = stats_.find(fn);
  return it == stats_.end() ? 0 : it->second.n;
}

} // namespace fluxtrace::core
