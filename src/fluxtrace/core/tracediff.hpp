// A/B comparison of two traces — the workflow for contention-style
// diagnoses: trace the same workload under two conditions (alone vs
// co-scheduled, before vs after a change) and ask which functions'
// per-item times moved. Items are matched by id; functions are compared
// by their mean elapsed across matched items.
#pragma once

#include <cstdint>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

struct FnDelta {
  SymbolId fn = kInvalidSymbol;
  double mean_a = 0.0; ///< cycles, mean over matched items (A run)
  double mean_b = 0.0; ///< cycles, mean over matched items (B run)
  std::uint64_t items = 0;

  /// Relative change B vs A; 0 when A has no time.
  [[nodiscard]] double ratio() const {
    return mean_a > 0.0 ? mean_b / mean_a : 0.0;
  }
  [[nodiscard]] double delta() const { return mean_b - mean_a; }
};

struct TraceDiff {
  std::vector<FnDelta> functions; ///< sorted by |delta| descending
  std::uint64_t matched_items = 0;
  std::uint64_t only_in_a = 0;
  std::uint64_t only_in_b = 0;

  [[nodiscard]] const FnDelta* find(SymbolId fn) const {
    for (const FnDelta& d : functions) {
      if (d.fn == fn) return &d;
    }
    return nullptr;
  }
};

/// Compare two integrated traces of the same item stream. Only items
/// present in both tables contribute; per-function means are taken over
/// the matched set (an item without samples for a function counts as 0,
/// so "function disappeared" shows up as a drop).
[[nodiscard]] TraceDiff diff_traces(const TraceTable& a, const TraceTable& b);

} // namespace fluxtrace::core
