#include "fluxtrace/core/profile.hpp"

#include <algorithm>
#include <unordered_map>

namespace fluxtrace::core {

Profile Profile::from_samples(const SymbolTable& symtab,
                              std::span<const PebsSample> samples,
                              Tsc total_time) {
  Profile p;
  p.total_time_ = total_time;
  std::unordered_map<SymbolId, std::uint64_t> counts;
  for (const PebsSample& s : samples) {
    const auto fn = symtab.resolve(s.ip);
    if (!fn.has_value()) {
      ++p.unresolved_;
      continue;
    }
    ++counts[*fn];
    ++p.total_;
  }
  p.entries_.reserve(counts.size());
  for (const auto& [fn, n] : counts) {
    ProfileEntry e;
    e.fn = fn;
    e.samples = n;
    e.share = p.total_ == 0
                  ? 0.0
                  : static_cast<double>(n) / static_cast<double>(p.total_);
    e.est_time = static_cast<Tsc>(e.share * static_cast<double>(total_time));
    p.entries_.push_back(e);
  }
  std::sort(p.entries_.begin(), p.entries_.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.est_time > b.est_time;
            });
  return p;
}

Tsc Profile::est_time(SymbolId fn) const {
  for (const ProfileEntry& e : entries_) {
    if (e.fn == fn) return e.est_time;
  }
  return 0;
}

std::uint64_t Profile::samples(SymbolId fn) const {
  for (const ProfileEntry& e : entries_) {
    if (e.fn == fn) return e.samples;
  }
  return 0;
}

} // namespace fluxtrace::core
