// Count-based work estimation. The first/last-sample span (§III-D step 3)
// measures how long a function's samples *spread* — which equals its
// elapsed time under run-to-completion, but under preemption
// (timer-switching) or with a pooled event like cache misses the right
// reading is the *count*: n samples of an event with reset value R ≈ n×R
// events attributable to {f, item} (the §V-D argument, applied to uops:
// n×R µops ≈ the function's retired work for the item).
#pragma once

#include <cstdint>

#include "fluxtrace/base/time.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

struct WorkEstimator {
  std::uint64_t reset = 8000;  ///< the run's PEBS reset value
  CpuSpec spec{};              ///< for event→time conversion (uops events)

  /// Events attributed to {item, fn}: samples × R.
  [[nodiscard]] std::uint64_t events(const TraceTable& t, ItemId item,
                                     SymbolId fn) const {
    return t.sample_count(item, fn) * reset;
  }

  /// Retired-work time estimate, valid when the sampled event is
  /// UOPS_RETIRED: (samples × R) µops at the base retirement rate.
  [[nodiscard]] Tsc work_cycles(const TraceTable& t, ItemId item,
                                SymbolId fn) const {
    return spec.uop_cycles(events(t, item, fn));
  }
  [[nodiscard]] double work_us(const TraceTable& t, ItemId item,
                               SymbolId fn) const {
    return spec.us(work_cycles(t, item, fn));
  }
};

} // namespace fluxtrace::core
