// Batched data-items — the future work §IV-C2 names: the paper sends
// packets one by one so DPDK never batches them, because a marker window
// covering a whole burst has no per-item ids. This module implements the
// natural follow-up: the instrumentation marks the *burst* (one
// Enter/Leave pair under a synthetic batch id) and records the member
// item ids on the side; integration then expands batch-level estimates
// back to items under an explicit attribution policy:
//
//  * Pooled     — every member gets elapsed/k of each function (exact for
//                 homogeneous bursts, blurs heterogeneous ones);
//  * SubWindows — the window is cut into k equal time slices, samples
//                 attribute to the slice's member (better when members
//                 run sequentially at similar cost).
//
// Neither policy recovers true per-item times for heterogeneous bursts —
// quantifying that error is exactly why this was left as future work, and
// bench/ext_batching measures it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

/// Synthetic batch ids live in their own namespace so they can never
/// collide with application item ids.
inline constexpr ItemId kBatchIdBase = 1ull << 62;

/// Side table the instrumented application fills: which items made up
/// each marked batch, in processing order.
class BatchTable {
 public:
  /// Register a batch; returns the synthetic id to use with mark_enter /
  /// mark_leave.
  ItemId new_batch(std::vector<ItemId> members);

  [[nodiscard]] const std::vector<ItemId>* members(ItemId batch_id) const;
  [[nodiscard]] std::size_t size() const { return batches_.size(); }
  [[nodiscard]] static bool is_batch_id(ItemId id) {
    return id >= kBatchIdBase;
  }

 private:
  std::unordered_map<ItemId, std::vector<ItemId>> batches_;
  ItemId next_ = kBatchIdBase;
};

enum class BatchPolicy : std::uint8_t { Pooled, SubWindows };

/// Per-item estimates recovered from batch-level windows.
struct BatchItemEstimate {
  ItemId item = kNoItem;
  ItemId batch = kNoItem;
  Tsc window_share = 0; ///< this item's share of the batch window
  std::vector<std::pair<SymbolId, Tsc>> fn_elapsed;

  [[nodiscard]] Tsc elapsed(SymbolId fn) const {
    for (const auto& [f, t] : fn_elapsed) {
      if (f == fn) return t;
    }
    return 0;
  }
};

class BatchIntegrator {
 public:
  BatchIntegrator(const SymbolTable& symtab, const BatchTable& batches)
      : symtab_(symtab), batches_(batches) {}

  /// Expand batch-marked traces to per-item estimates. Markers whose item
  /// is not a known batch id are ignored (mixed traces can run both
  /// per-item and batch marking; use TraceIntegrator for the former).
  [[nodiscard]] std::vector<BatchItemEstimate> integrate(
      std::span<const Marker> markers, std::span<const PebsSample> samples,
      BatchPolicy policy) const;

 private:
  const SymbolTable& symtab_;
  const BatchTable& batches_;
};

} // namespace fluxtrace::core
