// Step 2 of the paper's procedure (§III-D): integrate the two data
// streams. Each PEBS sample's timestamp is located inside a data-item
// window recorded by the markers on the same core (t0 < ta < t1 ⇒ the
// sample belongs to item #0), and its instruction pointer is located in
// the symbol table to recover the function. The §V-A extension instead
// reads the data-item id straight out of the sampled R13 register, which
// survives user-level context switches (timer-switching architecture).
#pragma once

#include <map>
#include <set>
#include <span>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

struct IntegratorConfig {
  /// false: map samples to items via marker windows (self-switching
  /// architecture, the paper's main procedure). true: take the item id
  /// from the sampled register (timer-switching extension, §V-A).
  bool use_register_ids = false;
  Reg id_reg = kItemIdReg;

  /// Degraded mode: tolerate a lossy capture pipeline instead of
  /// silently mis-attributing. Unbalanced markers no longer drop their
  /// item — the missing edge is synthesized (a lost Leave from the next
  /// Enter on the core, a lost edge at stream end from the per-core
  /// sample watermark) and the window is tagged as reconstructed. Orphan
  /// samples matching no window are salvaged through the id register
  /// when it names a known item. Every affected item carries loss
  /// accounting in the table (never silently clean).
  bool degraded = false;

  /// Degraded-mode orphan salvage trusts a register-carried id only when
  /// it names an item "the markers saw" — by default, the items of this
  /// call's own windows. A core-sharded parallel run (ParallelIntegrator)
  /// injects the *global* item set here so each shard salvages exactly
  /// like the sequential pass would; the pointee must outlive the
  /// integrate() call. Leave null for normal use.
  const std::set<ItemId>* salvage_items = nullptr;
};

class TraceIntegrator {
 public:
  explicit TraceIntegrator(const SymbolTable& symtab,
                           IntegratorConfig cfg = {})
      : symtab_(symtab), cfg_(cfg) {}

  /// Build the per-item, per-function table. Markers and samples may be in
  /// any order; they are grouped by core and sorted internally.
  [[nodiscard]] TraceTable integrate(std::span<const Marker> markers,
                                     std::span<const PebsSample> samples) const;

  /// Same, with known capture losses (sim::PebsDriver::losses()):
  /// each loss is attributed to the item whose window covers its
  /// timestamp, so affected items report non-zero
  /// ItemQuality::samples_lost instead of quietly under-counting.
  [[nodiscard]] TraceTable integrate(std::span<const Marker> markers,
                                     std::span<const PebsSample> samples,
                                     std::span<const SampleLoss> losses) const;

  /// Extract per-core item windows from a marker stream. Exposed for
  /// tests and for window-level analyses. Unbalanced markers (Leave
  /// without Enter, Enter without Leave at stream end) are dropped.
  [[nodiscard]] static std::vector<ItemWindow> windows_from_markers(
      std::span<const Marker> markers);

  /// Degraded-mode variant: unbalanced markers synthesize the missing
  /// edge instead of dropping the item. `watermarks` holds the per-core
  /// highest observed sample time, used to close an item still open at
  /// stream end (nothing later can belong to it).
  [[nodiscard]] static std::vector<ItemWindow> windows_from_markers_degraded(
      std::span<const Marker> markers,
      const std::map<std::uint32_t, Tsc>& watermarks);

 private:
  const SymbolTable& symtab_;
  IntegratorConfig cfg_;
};

} // namespace fluxtrace::core
