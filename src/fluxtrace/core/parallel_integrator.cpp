#include "fluxtrace/core/parallel_integrator.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"
#include "fluxtrace/rt/thread_pool.hpp"

namespace fluxtrace::core {

TraceTable ParallelIntegrator::integrate(
    std::span<const Marker> markers,
    std::span<const PebsSample> samples) const {
  return integrate(markers, samples, {});
}

TraceTable ParallelIntegrator::integrate(
    std::span<const Marker> markers, std::span<const PebsSample> samples,
    std::span<const SampleLoss> losses) const {
  // Item/degraded counters live in TraceIntegrator::integrate — the
  // per-shard passes below sum to the totals, so only the span (and the
  // run counter) belongs at this layer.
  OBS_SPAN("core.integrate_parallel");
  static obs::Counter& runs =
      obs::metrics().counter("core.integrate.parallel_runs");
  runs.inc();
  // Shard every stream by core. std::map keeps the shards in ascending
  // core order — the same order the sequential integrator's per-core map
  // walks, which is what makes the merged window list identical.
  struct Shard {
    std::vector<Marker> markers;
    SampleVec samples;
    std::vector<SampleLoss> losses;
  };
  std::map<std::uint32_t, Shard> shards;
  for (const Marker& m : markers) shards[m.core].markers.push_back(m);
  for (const PebsSample& s : samples) shards[s.core].samples.push_back(s);
  for (const SampleLoss& l : losses) shards[l.core].losses.push_back(l);

  // The one cross-core coupling: degraded orphan salvage trusts register
  // ids naming items the markers saw *anywhere*. In degraded mode every
  // marker's item ends up owning at least one window, so the global
  // window-item set equals the global marker-item set — precompute it and
  // inject it into every shard.
  IntegratorConfig cfg = cfg_;
  std::set<ItemId> global_items;
  if (cfg.degraded && !cfg.use_register_ids && cfg.salvage_items == nullptr) {
    for (const Marker& m : markers) global_items.insert(m.item);
    cfg.salvage_items = &global_items;
  }

  unsigned n = n_threads_;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  n = static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(1, shards.size())));

  if (n <= 1 || shards.size() <= 1) {
    // Single shard or single thread: one ordinary sequential pass.
    return TraceIntegrator(symtab_, cfg).integrate(markers, samples, losses);
  }

  rt::ThreadPool pool(n);
  std::vector<std::future<TraceTable>> futs;
  futs.reserve(shards.size());
  for (auto& [core, shard] : shards) {
    const Shard* sh = &shard;
    futs.push_back(pool.submit([this, cfg, sh] {
      return TraceIntegrator(symtab_, cfg)
          .integrate(sh->markers, sh->samples, sh->losses);
    }));
  }
  TraceTable out;
  for (std::future<TraceTable>& f : futs) out.merge_from(f.get());
  return out;
}

} // namespace fluxtrace::core
