#include "fluxtrace/core/batch.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace::core {

ItemId BatchTable::new_batch(std::vector<ItemId> members) {
  assert(!members.empty());
  const ItemId id = next_++;
  batches_.emplace(id, std::move(members));
  return id;
}

const std::vector<ItemId>* BatchTable::members(ItemId batch_id) const {
  auto it = batches_.find(batch_id);
  return it == batches_.end() ? nullptr : &it->second;
}

std::vector<BatchItemEstimate> BatchIntegrator::integrate(
    std::span<const Marker> markers, std::span<const PebsSample> samples,
    BatchPolicy policy) const {
  // Batch-level windows first.
  std::vector<ItemWindow> windows;
  for (const ItemWindow& w : TraceIntegrator::windows_from_markers(markers)) {
    if (batches_.members(w.item) != nullptr) windows.push_back(w);
  }
  std::sort(windows.begin(), windows.end(),
            [](const ItemWindow& a, const ItemWindow& b) {
              return a.core != b.core ? a.core < b.core : a.enter < b.enter;
            });

  // Group samples per core, sorted, for window matching.
  std::map<std::uint32_t, SampleVec> by_core;
  for (const PebsSample& s : samples) by_core[s.core].push_back(s);
  for (auto& [core, ss] : by_core) {
    std::sort(ss.begin(), ss.end(),
              [](const PebsSample& a, const PebsSample& b) {
                return a.tsc < b.tsc;
              });
  }

  std::vector<BatchItemEstimate> out;
  for (const ItemWindow& w : windows) {
    const std::vector<ItemId>& members = *batches_.members(w.item);
    const auto k = members.size();
    const Tsc span = w.length();

    // Samples inside this window, per function — possibly split into
    // per-member sub-windows.
    auto& ss = by_core[w.core];
    auto lo = std::lower_bound(ss.begin(), ss.end(), w.enter,
                               [](const PebsSample& s, Tsc t) {
                                 return s.tsc < t;
                               });
    auto hi = std::upper_bound(ss.begin(), ss.end(), w.leave,
                               [](Tsc t, const PebsSample& s) {
                                 return t < s.tsc;
                               });

    if (policy == BatchPolicy::Pooled) {
      // One bucket set for the whole batch, divided evenly.
      std::unordered_map<SymbolId, BucketStat> buckets;
      for (auto it = lo; it != hi; ++it) {
        const auto fn = symtab_.resolve(it->ip);
        if (fn.has_value()) buckets[*fn].add(it->tsc);
      }
      for (const ItemId member : members) {
        BatchItemEstimate e;
        e.item = member;
        e.batch = w.item;
        e.window_share = span / k;
        for (const auto& [fn, stat] : buckets) {
          if (stat.estimable()) {
            e.fn_elapsed.emplace_back(fn, stat.elapsed() / k);
          }
        }
        std::sort(e.fn_elapsed.begin(), e.fn_elapsed.end());
        out.push_back(std::move(e));
      }
    } else {
      // SubWindows: member i owns [enter + i*span/k, enter + (i+1)*span/k).
      std::vector<std::unordered_map<SymbolId, BucketStat>> buckets(k);
      for (auto it = lo; it != hi; ++it) {
        const auto fn = symtab_.resolve(it->ip);
        if (!fn.has_value()) continue;
        std::size_t idx = span == 0
                              ? 0
                              : static_cast<std::size_t>(
                                    static_cast<double>(it->tsc - w.enter) /
                                    static_cast<double>(span) *
                                    static_cast<double>(k));
        if (idx >= k) idx = k - 1;
        buckets[idx][*fn].add(it->tsc);
      }
      for (std::size_t i = 0; i < k; ++i) {
        BatchItemEstimate e;
        e.item = members[i];
        e.batch = w.item;
        e.window_share = span / k;
        for (const auto& [fn, stat] : buckets[i]) {
          if (stat.estimable()) e.fn_elapsed.emplace_back(fn, stat.elapsed());
        }
        std::sort(e.fn_elapsed.begin(), e.fn_elapsed.end());
        out.push_back(std::move(e));
      }
    }
  }
  return out;
}

} // namespace fluxtrace::core
