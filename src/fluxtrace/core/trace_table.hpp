// The product of the hybrid method: a per-data-item, per-function trace.
// Step 3 of the paper's procedure (§III-D) estimates the elapsed time of
// function f for data-item #M as the span between the first and the last
// PEBS sample in bucket {f, #M}.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::core {

/// Sample statistics for one {function, data-item} bucket on one core.
struct BucketStat {
  Tsc first = std::numeric_limits<Tsc>::max();
  Tsc last = 0;
  std::uint64_t samples = 0;

  void add(Tsc t) {
    if (t < first) first = t;
    if (t > last) last = t;
    ++samples;
  }
  friend bool operator==(const BucketStat&, const BucketStat&) = default;
  /// Elapsed-time estimate; needs >= 2 samples (paper §V-B1: a function
  /// shorter than the sample interval cannot be estimated from a trace).
  [[nodiscard]] Tsc elapsed() const { return samples >= 2 ? last - first : 0; }
  [[nodiscard]] bool estimable() const { return samples >= 2; }
};

/// One data-item's residency on one core, delimited by markers. Under
/// degraded integration a lost marker's edge is synthesized (from the
/// next Enter on the core, or the per-core watermark); `synth` records
/// which edges are estimates rather than measurements.
struct ItemWindow {
  ItemId item = kNoItem;
  std::uint32_t core = 0;
  Tsc enter = 0;
  Tsc leave = 0;
  std::uint8_t synth = 0; ///< bitmask of kSynthEnter / kSynthLeave

  static constexpr std::uint8_t kSynthEnter = 1;
  static constexpr std::uint8_t kSynthLeave = 2;

  [[nodiscard]] Tsc length() const { return leave - enter; }
  [[nodiscard]] bool synthesized() const { return synth != 0; }
  friend bool operator==(const ItemWindow&, const ItemWindow&) = default;
};

/// How much an item's estimates can be trusted.
enum class Confidence : std::uint8_t {
  Clean,        ///< complete markers, no known sample loss
  Degraded,     ///< real window, but samples were lost inside it
  Reconstructed ///< at least one window edge was synthesized
};

[[nodiscard]] constexpr std::string_view to_string(Confidence c) {
  switch (c) {
    case Confidence::Clean: return "clean";
    case Confidence::Degraded: return "degraded";
    case Confidence::Reconstructed: return "reconstructed";
  }
  return "?";
}

/// Per-item loss accounting: what the capture pipeline is known to have
/// lost for this item. Estimates for items with a non-Clean confidence
/// must never be presented as exact (ISSUE: flagged, not silently wrong).
struct ItemQuality {
  std::uint64_t samples_lost = 0;       ///< overflows that produced no record
  std::uint32_t markers_synthesized = 0;///< window edges that are estimates
  std::uint64_t samples_salvaged = 0;   ///< orphans re-attributed via R13
  Confidence confidence = Confidence::Clean;

  [[nodiscard]] bool clean() const {
    return confidence == Confidence::Clean;
  }
  friend bool operator==(const ItemQuality&, const ItemQuality&) = default;
};

/// Integration result plus bookkeeping about what could not be attributed.
class TraceTable {
 public:
  // --- construction (used by TraceIntegrator) -------------------------
  void add_sample(ItemId item, SymbolId fn, std::uint32_t core, Tsc tsc);
  void add_window(const ItemWindow& w);
  void count_unmatched_item() { ++unmatched_item_; }
  void count_unmatched_symbol() { ++unmatched_symbol_; }
  void note_sample_lost(ItemId item);
  void note_sample_salvaged(ItemId item);
  void count_unattributed_loss() { ++unattributed_loss_; }

  /// Fold another table into this one (used by ParallelIntegrator to
  /// combine per-core shards). Bucket stats are (min, max, count) — a
  /// commutative merge; counters are summed; per-item confidence takes
  /// the worst of the two; `other`'s windows are appended in order, so
  /// merging shards in ascending core order reproduces the sequential
  /// window order exactly.
  void merge_from(TraceTable&& other);

  // --- queries ---------------------------------------------------------
  /// Estimated elapsed time of `fn` for `item`, summed over the cores the
  /// pair appeared on. 0 when not estimable.
  [[nodiscard]] Tsc elapsed(ItemId item, SymbolId fn) const;

  /// Samples mapped to {item, fn} across all cores. With a PEBS event of
  /// "cache misses", samples × reset-value approximates the number of
  /// misses the function incurred for the item (paper §V-D).
  [[nodiscard]] std::uint64_t sample_count(ItemId item, SymbolId fn) const;

  /// All items observed (via samples or windows), sorted ascending.
  [[nodiscard]] std::vector<ItemId> items() const;

  /// Functions with at least one sample for `item`, sorted ascending.
  [[nodiscard]] std::vector<SymbolId> functions(ItemId item) const;

  /// Sum of elapsed() over all functions of the item.
  [[nodiscard]] Tsc item_estimated_total(ItemId item) const;

  /// Marker-window length of the item, summed over cores. This is what a
  /// pure-instrumentation (service-level logging) measurement would see.
  [[nodiscard]] Tsc item_window_total(ItemId item) const;

  [[nodiscard]] const std::vector<ItemWindow>& windows() const {
    return windows_;
  }

  /// The item's window on one core, if it crossed that core (first match).
  [[nodiscard]] const ItemWindow* window_of(ItemId item,
                                            std::uint32_t core) const;
  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }
  [[nodiscard]] std::uint64_t unmatched_item() const { return unmatched_item_; }
  [[nodiscard]] std::uint64_t unmatched_symbol() const {
    return unmatched_symbol_;
  }

  // --- loss accounting --------------------------------------------------
  /// Quality of the item's estimates. Items never touched by loss report
  /// the default (Clean) quality.
  [[nodiscard]] const ItemQuality& quality(ItemId item) const;
  /// Items whose confidence is not Clean, sorted ascending.
  [[nodiscard]] std::vector<ItemId> degraded_items() const;
  /// Known lost samples that no item window covered.
  [[nodiscard]] std::uint64_t unattributed_loss() const {
    return unattributed_loss_;
  }
  [[nodiscard]] std::uint64_t windows_synthesized() const {
    return windows_synthesized_;
  }

  /// Full structural equality — every bucket, window, counter and quality
  /// record. The parallel/sequential equivalence suite relies on this.
  friend bool operator==(const TraceTable&, const TraceTable&) = default;

 private:
  // Inner key packs (core, fn) so per-core spans never merge across cores
  // (two cores' TSC regions for one item may interleave arbitrarily).
  static std::uint64_t inner_key(std::uint32_t core, SymbolId fn) {
    return (static_cast<std::uint64_t>(core) << 32) | fn;
  }

  /// Degrade the item's confidence to at least `floor` (Clean <
  /// Degraded < Reconstructed; never upgraded).
  void degrade(ItemId item, Confidence floor);

  std::unordered_map<ItemId, std::unordered_map<std::uint64_t, BucketStat>>
      buckets_;
  std::vector<ItemWindow> windows_;
  std::unordered_map<ItemId, ItemQuality> quality_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t unmatched_item_ = 0;
  std::uint64_t unmatched_symbol_ = 0;
  std::uint64_t unattributed_loss_ = 0;
  std::uint64_t windows_synthesized_ = 0;
};

} // namespace fluxtrace::core
