// Online fluctuation detection (paper §IV-C3's cost-amortization idea):
// estimate each function's elapsed time per data-item online, and dump the
// raw PEBS samples only when an estimate diverges from the function's
// running statistics — so the 100s-of-MB/s raw stream need not hit
// durable storage continuously.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::core {

struct DetectorConfig {
  double k_sigma = 3.0;      ///< flag |x − mean| > k·σ
  std::uint64_t warmup = 8;  ///< observations per function before flagging
};

struct Anomaly {
  ItemId item = kNoItem;
  SymbolId fn = kInvalidSymbol;
  Tsc elapsed = 0;
  double mean = 0.0;
  double sigma = 0.0;
  /// How many sigmas the observation sits from the mean.
  [[nodiscard]] double deviation() const {
    return sigma > 0.0 ? (static_cast<double>(elapsed) - mean) / sigma : 0.0;
  }
};

/// Streaming per-function Welford statistics with k-sigma outlier
/// flagging. observe() returns true when the observation is anomalous —
/// the signal to dump raw samples for later offline analysis.
class FluctuationDetector {
 public:
  explicit FluctuationDetector(DetectorConfig cfg = {}) : cfg_(cfg) {}

  /// Feed one {item, function} elapsed-time estimate. Returns true when
  /// the observation deviates more than k·σ from the function's running
  /// mean (after warmup). The observation is folded into the statistics
  /// either way.
  bool observe(ItemId item, SymbolId fn, Tsc elapsed);

  [[nodiscard]] const std::vector<Anomaly>& anomalies() const {
    return anomalies_;
  }
  [[nodiscard]] double mean(SymbolId fn) const;
  [[nodiscard]] double sigma(SymbolId fn) const;
  [[nodiscard]] std::uint64_t count(SymbolId fn) const;
  [[nodiscard]] const DetectorConfig& config() const { return cfg_; }

 private:
  struct Welford {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    void add(double x) {
      ++n;
      const double d = x - mean;
      mean += d / static_cast<double>(n);
      m2 += d * (x - mean);
    }
    [[nodiscard]] double variance() const {
      return n >= 2 ? m2 / static_cast<double>(n - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  };

  DetectorConfig cfg_;
  std::unordered_map<SymbolId, Welford> stats_;
  std::vector<Anomaly> anomalies_;
};

} // namespace fluxtrace::core
