#include "fluxtrace/core/planner.hpp"

#include <cmath>

namespace fluxtrace::core {

LinearFit ResetValuePlanner::fit() const {
  LinearFit f;
  const std::size_t n = points_.size();
  if (n < 2) return f;

  double sx = 0, sy = 0;
  for (const CalibrationPoint& p : points_) {
    sx += static_cast<double>(p.reset);
    sy += p.interval_ns;
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (const CalibrationPoint& p : points_) {
    const double dx = static_cast<double>(p.reset) - mx;
    const double dy = p.interval_ns - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return f; // all reset values identical

  f.a = sxy / sxx;
  f.b = my - f.a * mx;
  if (syy > 0.0) {
    double ss_res = 0;
    for (const CalibrationPoint& p : points_) {
      const double pred = f.a * static_cast<double>(p.reset) + f.b;
      ss_res += (p.interval_ns - pred) * (p.interval_ns - pred);
    }
    f.r2 = 1.0 - ss_res / syy;
  } else {
    f.r2 = 1.0;
  }
  return f;
}

double ResetValuePlanner::predict_interval_ns(std::uint64_t reset) const {
  const LinearFit f = fit();
  return f.a * static_cast<double>(reset) + f.b;
}

double ResetValuePlanner::predict_overhead(std::uint64_t reset,
                                           double sample_cost_ns) const {
  const double interval = predict_interval_ns(reset);
  if (interval <= 0.0) return 1.0;
  return sample_cost_ns / interval;
}

std::uint64_t ResetValuePlanner::recommend_for_overhead(
    double max_overhead, double sample_cost_ns) const {
  const LinearFit f = fit();
  if (f.a <= 0.0 || max_overhead <= 0.0) return 0;
  // overhead = c / (aR + b) <= max  ⇒  R >= (c/max − b)/a.
  const double r = (sample_cost_ns / max_overhead - f.b) / f.a;
  return r <= 1.0 ? 1 : static_cast<std::uint64_t>(std::ceil(r));
}

std::uint64_t ResetValuePlanner::recommend_for_interval(
    double target_interval_ns) const {
  const LinearFit f = fit();
  if (f.a <= 0.0 || target_interval_ns <= f.b) return 0;
  return static_cast<std::uint64_t>(
      std::llround((target_interval_ns - f.b) / f.a));
}

} // namespace fluxtrace::core
