// Choosing the reset value (paper §V-C). PEBS cannot target a time-based
// interval directly, but the paper observes that the achieved sample
// interval is strongly linear in the reset value for a given workload, and
// that the tracing overhead is accurately predictable from the number of
// samples taken (≈250 ns each, per the authors' ROSS'17 study). The
// planner fits interval(R) = a·R + b from calibration points and inverts
// it to recommend R for a target interval or a target overhead fraction.
#pragma once

#include <cstdint>
#include <vector>

namespace fluxtrace::core {

struct CalibrationPoint {
  std::uint64_t reset = 0;
  double interval_ns = 0.0; ///< measured mean sample interval
};

struct LinearFit {
  double a = 0.0;  ///< ns per reset-value unit
  double b = 0.0;  ///< ns intercept (per-sample fixed cost)
  double r2 = 0.0; ///< coefficient of determination
};

class ResetValuePlanner {
 public:
  /// Overhead of one PEBS record; the paper's prior work measured ~250 ns.
  static constexpr double kDefaultSampleCostNs = 250.0;

  void add(std::uint64_t reset, double interval_ns) {
    points_.push_back({reset, interval_ns});
  }
  void add(const CalibrationPoint& p) { points_.push_back(p); }
  [[nodiscard]] const std::vector<CalibrationPoint>& points() const {
    return points_;
  }

  /// Least-squares fit of interval(R) = a·R + b. Requires >= 2 points
  /// with distinct reset values.
  [[nodiscard]] LinearFit fit() const;

  [[nodiscard]] double predict_interval_ns(std::uint64_t reset) const;

  /// Overhead fraction = time spent on sampling / total time
  /// ≈ sample_cost / interval(R).
  [[nodiscard]] double predict_overhead(std::uint64_t reset,
                                        double sample_cost_ns =
                                            kDefaultSampleCostNs) const;

  /// Smallest reset value whose predicted overhead fraction does not
  /// exceed `max_overhead` (e.g. 0.01 for 1%). Returns 0 when the fit is
  /// unusable (a <= 0).
  [[nodiscard]] std::uint64_t recommend_for_overhead(
      double max_overhead,
      double sample_cost_ns = kDefaultSampleCostNs) const;

  /// Reset value achieving approximately `target_interval_ns`. Returns 0
  /// when unreachable (target below the intercept) or the fit is unusable.
  [[nodiscard]] std::uint64_t recommend_for_interval(
      double target_interval_ns) const;

 private:
  std::vector<CalibrationPoint> points_;
};

} // namespace fluxtrace::core
