// Register-carried data-item ids — the timer-switching extension
// (paper §V-A). When a user-level scheduler can preempt an item mid-flight,
// marker windows overlap and mis-attribute samples; a reserved register
// (R13) that context switches swap automatically always holds the id of
// the item on the core. This module provides the attribution helper and a
// diagnostic that quantifies how badly window-based mapping would have
// done on the same stream.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/regs.hpp"
#include "fluxtrace/base/samples.hpp"

namespace fluxtrace::core {

class RegisterIdMapper {
 public:
  explicit RegisterIdMapper(Reg id_reg = kItemIdReg) : reg_(id_reg) {}

  /// Item id carried by one sample; kNoItem when the register holds the
  /// no-item sentinel (scheduler code, idle loop).
  [[nodiscard]] ItemId item_of(const PebsSample& s) const {
    return s.regs.get(reg_);
  }

  /// Group samples by register-carried item id (kNoItem excluded).
  [[nodiscard]] std::unordered_map<ItemId, SampleVec> group(
      std::span<const PebsSample> samples) const;

  /// Comparison of register-based vs window-based mapping over one stream:
  /// how many samples each method attributes, and on how many they
  /// disagree. Demonstrates the failure mode the extension fixes.
  struct Comparison {
    std::uint64_t total = 0;
    std::uint64_t by_register = 0;  ///< samples with a valid register id
    std::uint64_t by_window = 0;    ///< samples inside some marker window
    std::uint64_t disagree = 0;     ///< both mapped, to different items
  };
  [[nodiscard]] Comparison compare_with_windows(
      std::span<const PebsSample> samples,
      std::span<const Marker> markers) const;

 private:
  Reg reg_;
};

} // namespace fluxtrace::core
