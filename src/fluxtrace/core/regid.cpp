#include "fluxtrace/core/regid.hpp"

#include <algorithm>
#include <map>

#include "fluxtrace/core/integrator.hpp"

namespace fluxtrace::core {

std::unordered_map<ItemId, SampleVec> RegisterIdMapper::group(
    std::span<const PebsSample> samples) const {
  std::unordered_map<ItemId, SampleVec> out;
  for (const PebsSample& s : samples) {
    const ItemId id = item_of(s);
    if (id == kNoItem) continue;
    out[id].push_back(s);
  }
  return out;
}

RegisterIdMapper::Comparison RegisterIdMapper::compare_with_windows(
    std::span<const PebsSample> samples,
    std::span<const Marker> markers) const {
  Comparison c;
  c.total = samples.size();

  std::map<std::uint32_t, std::vector<ItemWindow>> win_by_core;
  for (const ItemWindow& w : TraceIntegrator::windows_from_markers(markers)) {
    win_by_core[w.core].push_back(w);
  }
  for (auto& [core, ws] : win_by_core) {
    std::sort(ws.begin(), ws.end(),
              [](const ItemWindow& a, const ItemWindow& b) {
                return a.enter < b.enter;
              });
  }

  for (const PebsSample& s : samples) {
    const ItemId reg_id = item_of(s);
    if (reg_id != kNoItem) ++c.by_register;

    ItemId win_id = kNoItem;
    auto it = win_by_core.find(s.core);
    if (it != win_by_core.end()) {
      // Same innermost-cover policy as TraceIntegrator.
      const std::vector<ItemWindow>& ws = it->second;
      auto wit = std::upper_bound(
          ws.begin(), ws.end(), s.tsc,
          [](Tsc t, const ItemWindow& w) { return t < w.enter; });
      while (wit != ws.begin()) {
        --wit;
        if (s.tsc <= wit->leave) {
          win_id = wit->item;
          break;
        }
      }
    }
    if (win_id != kNoItem) ++c.by_window;
    if (reg_id != kNoItem && win_id != kNoItem && reg_id != win_id) {
      ++c.disagree;
    }
  }
  return c;
}

} // namespace fluxtrace::core
