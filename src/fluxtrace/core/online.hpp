// Online trace processing — the cost-amortization idea of §IV-C3 made
// concrete: instead of dumping the 100s-of-MB/s raw PEBS stream to
// storage continuously, estimate each function's elapsed time per
// data-item *as the streams arrive*, keep the raw samples only in a
// short-lived in-memory window, and persist them solely for the items an
// online detector flags as fluctuating.
//
// Input model (matching the real system): per core, markers arrive in
// time order at marking time; samples arrive in time order but delayed in
// batches (they reach software when a PEBS buffer is drained). An item is
// finalized once a later sample on its core proves no more of its samples
// can arrive.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

/// Per-item output of the online pipeline.
struct OnlineResult {
  ItemId item = kNoItem;
  std::uint32_t core = 0;
  Tsc window = 0; ///< marker-window length
  /// Estimable functions (>= 2 samples) with their elapsed estimates.
  std::vector<std::pair<SymbolId, Tsc>> fn_elapsed;
  bool anomalous = false;

  [[nodiscard]] Tsc elapsed(SymbolId fn) const {
    for (const auto& [f, t] : fn_elapsed) {
      if (f == fn) return t;
    }
    return 0;
  }
};

struct OnlineTracerConfig {
  DetectorConfig detector{};
  /// Keep the most recent N finalized results queryable (0 = keep none).
  std::size_t keep_results = 64;
  /// Also feed the whole-item window length to the detector (under the
  /// pseudo-symbol kWindowMetric), so items fluctuate even when no single
  /// function collects two samples.
  bool track_window_metric = true;
};

class OnlineTracer {
 public:
  /// Pseudo-symbol id under which whole-item window lengths are tracked.
  static constexpr SymbolId kWindowMetric = 0xfffffffeu;

  explicit OnlineTracer(const SymbolTable& symtab,
                        OnlineTracerConfig cfg = {});

  // --- streaming inputs -------------------------------------------------
  void on_marker(const Marker& m);
  void on_sample(const PebsSample& s);
  /// Finalize everything still pending (end of run).
  void finish();

  /// Called for every finalized item whose statistics the detector
  /// flagged; receives the item's raw samples — the data a deployment
  /// would persist for offline analysis.
  using DumpFn = std::function<void(const OnlineResult&, const SampleVec&)>;
  void set_dump_callback(DumpFn fn) { dump_ = std::move(fn); }

  // --- observability -----------------------------------------------------
  [[nodiscard]] const FluctuationDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] std::uint64_t items_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dumps() const { return dumps_; }
  [[nodiscard]] std::uint64_t samples_seen() const { return samples_seen_; }
  [[nodiscard]] std::uint64_t samples_unmatched() const { return unmatched_; }
  [[nodiscard]] std::uint64_t markers_dropped() const { return dropped_; }
  /// Raw bytes persisted via the dump callback vs bytes seen in total —
  /// the amortization ratio §IV-C3 argues for.
  [[nodiscard]] std::uint64_t bytes_dumped() const {
    return bytes_dumped_;
  }
  [[nodiscard]] std::uint64_t bytes_seen() const {
    return samples_seen_ * kPebsRecordBytes;
  }
  /// The most recent finalized results (up to cfg.keep_results).
  [[nodiscard]] const std::deque<OnlineResult>& recent() const {
    return results_;
  }

 private:
  struct PendingItem {
    ItemId id = kNoItem;
    std::uint32_t core = 0;
    Tsc enter = 0;
    Tsc leave = 0;
    bool closed = false;
    SampleVec raw;
  };

  struct CoreState {
    std::deque<PendingItem> items; ///< open/closed items, in enter order
    Tsc sample_watermark = 0;      ///< per-core sample time monotonicity
  };

  /// Finalize every closed item whose leave is strictly before the
  /// watermark — per-core time order guarantees its samples are complete.
  void finalize_ready(CoreState& cs, Tsc watermark);
  void finalize(PendingItem&& item);

  const SymbolTable& symtab_;
  OnlineTracerConfig cfg_;
  FluctuationDetector detector_;
  std::map<std::uint32_t, CoreState> cores_;
  DumpFn dump_;
  std::deque<OnlineResult> results_;
  std::uint64_t completed_ = 0;
  std::uint64_t dumps_ = 0;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t unmatched_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_dumped_ = 0;
};

} // namespace fluxtrace::core
