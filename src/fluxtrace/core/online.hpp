// Online trace processing — the cost-amortization idea of §IV-C3 made
// concrete: instead of dumping the 100s-of-MB/s raw PEBS stream to
// storage continuously, estimate each function's elapsed time per
// data-item *as the streams arrive*, keep the raw samples only in a
// short-lived in-memory window, and persist them solely for the items an
// online detector flags as fluctuating.
//
// Input model (matching the real system): per core, markers arrive in
// time order at marking time; samples arrive in time order but delayed in
// batches (they reach software when a PEBS buffer is drained). An item is
// finalized once a later sample on its core proves no more of its samples
// can arrive.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "fluxtrace/base/markers.hpp"
#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

/// Per-item output of the online pipeline.
struct OnlineResult {
  ItemId item = kNoItem;
  std::uint32_t core = 0;
  Tsc window = 0; ///< marker-window length
  Tsc enter = 0;  ///< absolute item bounds — lets a spooler (the session
  Tsc leave = 0;  ///< supervisor) re-emit the item's markers alongside it
  /// Estimable functions (>= 2 samples) with their elapsed estimates.
  std::vector<std::pair<SymbolId, Tsc>> fn_elapsed;
  bool anomalous = false;

  // Loss accounting (degraded mode): estimates for a non-Clean item are
  // flagged, never presented as exact.
  std::uint64_t samples_lost = 0;        ///< losses inside this item's window
  std::uint32_t markers_synthesized = 0; ///< window edges that are estimates
  Confidence confidence = Confidence::Clean;

  [[nodiscard]] Tsc elapsed(SymbolId fn) const {
    for (const auto& [f, t] : fn_elapsed) {
      if (f == fn) return t;
    }
    return 0;
  }
  [[nodiscard]] bool degraded() const {
    return confidence != Confidence::Clean;
  }
};

struct OnlineTracerConfig {
  DetectorConfig detector{};
  /// Keep the most recent N finalized results queryable (0 = keep none).
  std::size_t keep_results = 64;
  /// Also feed the whole-item window length to the detector (under the
  /// pseudo-symbol kWindowMetric), so items fluctuate even when no single
  /// function collects two samples.
  bool track_window_metric = true;
  /// Degraded mode: when a new Enter arrives while the previous item is
  /// still open (its Leave marker was lost), synthesize the Leave at the
  /// new Enter's timestamp instead of dropping the item; items still
  /// open at finish() close at the core's sample watermark. Synthesized
  /// items are finalized with a Reconstructed confidence.
  bool synthesize_markers = false;
  /// Load shedding: when a core's pending-item backlog reaches this many
  /// items (drains falling behind markers), invoke the shed callback —
  /// wire it to AdaptiveReset::nudge to raise R. 0 = off.
  std::size_t shed_backlog = 0;
};

class OnlineTracer {
 public:
  /// Pseudo-symbol id under which whole-item window lengths are tracked.
  static constexpr SymbolId kWindowMetric = 0xfffffffeu;

  explicit OnlineTracer(const SymbolTable& symtab,
                        OnlineTracerConfig cfg = {});

  // --- streaming inputs -------------------------------------------------
  void on_marker(const Marker& m);
  void on_sample(const PebsSample& s);
  /// Streaming loss accounting: a known lost sample (drain disarm window,
  /// injected fault) is attributed to the pending item covering its
  /// timestamp (wire sim::PebsDriver::set_loss_sink here).
  void on_sample_lost(const SampleLoss& l);
  /// Finalize everything still pending (end of run).
  void finish();

  /// Called for every finalized item whose statistics the detector
  /// flagged; receives the item's raw samples — the data a deployment
  /// would persist for offline analysis.
  using DumpFn = std::function<void(const OnlineResult&, const SampleVec&)>;
  void set_dump_callback(DumpFn fn) { dump_ = std::move(fn); }

  /// Called when a core's backlog crosses cfg.shed_backlog (re-armed
  /// after it falls to half the threshold). The receiver is expected to
  /// shed load, e.g. AdaptiveReset::nudge(2.0) to halve the sample rate.
  using ShedFn = std::function<void(std::uint32_t core, std::size_t backlog)>;
  void set_shed_callback(ShedFn fn) { shed_ = std::move(fn); }

  // --- observability -----------------------------------------------------
  [[nodiscard]] const FluctuationDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] std::uint64_t items_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dumps() const { return dumps_; }
  [[nodiscard]] std::uint64_t samples_seen() const { return samples_seen_; }
  [[nodiscard]] std::uint64_t samples_unmatched() const { return unmatched_; }
  [[nodiscard]] std::uint64_t markers_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t markers_synthesized() const {
    return synthesized_;
  }
  [[nodiscard]] std::uint64_t samples_lost() const { return samples_lost_; }
  [[nodiscard]] std::uint64_t losses_unattributed() const {
    return losses_unattributed_;
  }
  [[nodiscard]] std::uint64_t shed_events() const { return shed_events_; }
  /// Current pending-item backlog on one core (drain lag indicator).
  [[nodiscard]] std::size_t backlog(std::uint32_t core) const;
  /// Largest per-core backlog right now (the watchdog's pressure signal).
  [[nodiscard]] std::size_t max_backlog() const;
  /// Raw bytes persisted via the dump callback vs bytes seen in total —
  /// the amortization ratio §IV-C3 argues for.
  [[nodiscard]] std::uint64_t bytes_dumped() const {
    return bytes_dumped_;
  }
  [[nodiscard]] std::uint64_t bytes_seen() const {
    return samples_seen_ * kPebsRecordBytes;
  }
  /// The most recent finalized results (up to cfg.keep_results).
  [[nodiscard]] const std::deque<OnlineResult>& recent() const {
    return results_;
  }

 private:
  struct PendingItem {
    ItemId id = kNoItem;
    std::uint32_t core = 0;
    Tsc enter = 0;
    Tsc leave = 0;
    bool closed = false;
    bool synth_leave = false; ///< leave was synthesized (degraded mode)
    std::uint64_t lost = 0;   ///< known losses inside this item's span
    SampleVec raw;
  };

  struct CoreState {
    std::deque<PendingItem> items; ///< open/closed items, in enter order
    Tsc sample_watermark = 0;      ///< per-core sample time monotonicity
    bool shed_armed = true;        ///< backlog-threshold edge trigger
  };

  /// Finalize every closed item whose leave is strictly before the
  /// watermark — per-core time order guarantees its samples are complete.
  void finalize_ready(CoreState& cs, Tsc watermark);
  void finalize(PendingItem&& item);
  void check_backlog(std::uint32_t core, CoreState& cs);

  const SymbolTable& symtab_;
  OnlineTracerConfig cfg_;
  FluctuationDetector detector_;
  std::map<std::uint32_t, CoreState> cores_;
  DumpFn dump_;
  ShedFn shed_;
  std::deque<OnlineResult> results_;
  std::uint64_t completed_ = 0;
  std::uint64_t dumps_ = 0;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t unmatched_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t synthesized_ = 0;
  std::uint64_t samples_lost_ = 0;
  std::uint64_t losses_unattributed_ = 0;
  std::uint64_t shed_events_ = 0;
  std::uint64_t bytes_dumped_ = 0;
};

} // namespace fluxtrace::core
