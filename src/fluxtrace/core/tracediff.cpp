#include "fluxtrace/core/tracediff.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace fluxtrace::core {

TraceDiff diff_traces(const TraceTable& a, const TraceTable& b) {
  TraceDiff out;

  const std::vector<ItemId> items_a = a.items();
  const std::vector<ItemId> items_b = b.items();
  std::vector<ItemId> matched;
  std::set_intersection(items_a.begin(), items_a.end(), items_b.begin(),
                        items_b.end(), std::back_inserter(matched));
  out.matched_items = matched.size();
  out.only_in_a = items_a.size() - matched.size();
  out.only_in_b = items_b.size() - matched.size();
  if (matched.empty()) return out;

  // Union of functions seen for matched items in either run.
  std::set<SymbolId> fns;
  for (const ItemId item : matched) {
    for (const SymbolId fn : a.functions(item)) fns.insert(fn);
    for (const SymbolId fn : b.functions(item)) fns.insert(fn);
  }

  for (const SymbolId fn : fns) {
    FnDelta d;
    d.fn = fn;
    d.items = matched.size();
    double sa = 0, sb = 0;
    for (const ItemId item : matched) {
      sa += static_cast<double>(a.elapsed(item, fn));
      sb += static_cast<double>(b.elapsed(item, fn));
    }
    d.mean_a = sa / static_cast<double>(matched.size());
    d.mean_b = sb / static_cast<double>(matched.size());
    out.functions.push_back(d);
  }
  std::sort(out.functions.begin(), out.functions.end(),
            [](const FnDelta& x, const FnDelta& y) {
              return std::abs(x.delta()) > std::abs(y.delta());
            });
  return out;
}

} // namespace fluxtrace::core
