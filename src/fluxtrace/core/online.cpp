#include "fluxtrace/core/online.hpp"

#include <algorithm>
#include <unordered_map>

#include "fluxtrace/obs/metrics.hpp"

namespace fluxtrace::core {

namespace {

// Self-telemetry (ISSUE 3): the streaming tracer's health at a glance —
// how many items finalized (and how degraded), how big their windows run,
// and how much the capture side is known to have lost.
struct OnlineMetrics {
  obs::Counter& items = obs::metrics().counter("core.online.items");
  obs::Counter& degraded = obs::metrics().counter("core.online.degraded");
  obs::Counter& dumps = obs::metrics().counter("core.online.dumps");
  obs::Counter& lost = obs::metrics().counter("core.online.samples_lost");
  obs::Histogram& window =
      obs::metrics().histogram("core.online.window_cycles");
  obs::Histogram& per_item =
      obs::metrics().histogram("core.online.samples_per_item");

  static OnlineMetrics& get() {
    static OnlineMetrics m;
    return m;
  }
};

} // namespace

OnlineTracer::OnlineTracer(const SymbolTable& symtab, OnlineTracerConfig cfg)
    : symtab_(symtab), cfg_(cfg), detector_(cfg.detector) {}

void OnlineTracer::on_marker(const Marker& m) {
  CoreState& cs = cores_[m.core];
  if (m.kind == MarkerKind::Enter) {
    // A still-open previous item means its Leave marker was lost (or the
    // stream is malformed). Degraded mode synthesizes the Leave at this
    // Enter — the item was gone before the next one started — instead of
    // silently discarding the item and its samples.
    if (!cs.items.empty() && !cs.items.back().closed) {
      if (cfg_.synthesize_markers) {
        PendingItem& dangling = cs.items.back();
        dangling.leave = m.tsc;
        dangling.closed = true;
        dangling.synth_leave = true;
        ++synthesized_;
      } else {
        cs.items.pop_back();
        ++dropped_;
      }
    }
    PendingItem item;
    item.id = m.item;
    item.core = m.core;
    item.enter = m.tsc;
    cs.items.push_back(std::move(item));
    check_backlog(m.core, cs);
  } else {
    if (cs.items.empty() || cs.items.back().closed ||
        cs.items.back().id != m.item) {
      ++dropped_; // Leave without a matching Enter
      return;
    }
    cs.items.back().leave = m.tsc;
    cs.items.back().closed = true;
  }
}

void OnlineTracer::on_sample(const PebsSample& s) {
  ++samples_seen_;
  CoreState& cs = cores_[s.core];
  cs.sample_watermark = std::max(cs.sample_watermark, s.tsc);

  // The watermark proves older items complete: no further sample at or
  // below their leave can arrive on this core.
  finalize_ready(cs, s.tsc);

  for (PendingItem& item : cs.items) {
    if (s.tsc < item.enter) break; // items are in enter order
    if (!item.closed || s.tsc <= item.leave) {
      item.raw.push_back(s);
      return;
    }
  }
  ++unmatched_; // between windows, or before the oldest pending item
}

void OnlineTracer::on_sample_lost(const SampleLoss& l) {
  ++samples_lost_;
  OnlineMetrics::get().lost.inc();
  auto cit = cores_.find(l.core);
  if (cit != cores_.end()) {
    for (PendingItem& item : cit->second.items) {
      if (l.tsc < item.enter) break;
      if (!item.closed || l.tsc <= item.leave) {
        ++item.lost;
        return;
      }
    }
  }
  ++losses_unattributed_; // between windows, or item already finalized
}

void OnlineTracer::check_backlog(std::uint32_t core, CoreState& cs) {
  if (cfg_.shed_backlog == 0) return;
  if (cs.items.size() >= cfg_.shed_backlog) {
    if (cs.shed_armed) {
      cs.shed_armed = false;
      ++shed_events_;
      if (shed_) shed_(core, cs.items.size());
    }
  } else if (cs.items.size() <= cfg_.shed_backlog / 2) {
    cs.shed_armed = true; // backlog drained; re-arm the trigger
  }
}

std::size_t OnlineTracer::backlog(std::uint32_t core) const {
  auto it = cores_.find(core);
  return it == cores_.end() ? 0 : it->second.items.size();
}

std::size_t OnlineTracer::max_backlog() const {
  std::size_t worst = 0;
  for (const auto& [core, cs] : cores_) {
    worst = std::max(worst, cs.items.size());
  }
  return worst;
}

void OnlineTracer::finalize_ready(CoreState& cs, Tsc watermark) {
  while (!cs.items.empty() && cs.items.front().closed &&
         cs.items.front().leave < watermark) {
    PendingItem item = std::move(cs.items.front());
    cs.items.pop_front();
    finalize(std::move(item));
  }
}

void OnlineTracer::finalize(PendingItem&& item) {
  OnlineResult res;
  res.item = item.id;
  res.core = item.core;
  res.window = item.leave - item.enter;
  res.enter = item.enter;
  res.leave = item.leave;
  res.samples_lost = item.lost;
  res.markers_synthesized = item.synth_leave ? 1 : 0;
  if (item.synth_leave) {
    res.confidence = Confidence::Reconstructed;
  } else if (item.lost > 0) {
    res.confidence = Confidence::Degraded;
  }

  // Per-function first/last spans from this item's raw samples.
  std::unordered_map<SymbolId, BucketStat> buckets;
  for (const PebsSample& s : item.raw) {
    const auto fn = symtab_.resolve(s.ip);
    if (!fn.has_value()) continue;
    buckets[*fn].add(s.tsc);
  }
  for (const auto& [fn, stat] : buckets) {
    if (stat.estimable()) res.fn_elapsed.emplace_back(fn, stat.elapsed());
  }
  std::sort(res.fn_elapsed.begin(), res.fn_elapsed.end());

  // Online statistics: flag if any function (or the whole window)
  // deviates from its running distribution.
  bool flagged = false;
  for (const auto& [fn, elapsed] : res.fn_elapsed) {
    flagged |= detector_.observe(item.id, fn, elapsed);
  }
  if (cfg_.track_window_metric) {
    flagged |= detector_.observe(item.id, kWindowMetric, res.window);
  }
  res.anomalous = flagged;

  if (flagged) {
    ++dumps_;
    bytes_dumped_ += item.raw.size() * kPebsRecordBytes;
    OnlineMetrics::get().dumps.inc();
    if (dump_) dump_(res, item.raw);
  }

  ++completed_;
  OnlineMetrics& om = OnlineMetrics::get();
  om.items.inc();
  if (res.confidence != Confidence::Clean) om.degraded.inc();
  om.window.observe(res.window);
  om.per_item.observe(item.raw.size());
  if (cfg_.keep_results > 0) {
    results_.push_back(std::move(res));
    while (results_.size() > cfg_.keep_results) results_.pop_front();
  }
}

void OnlineTracer::finish() {
  for (auto& [core, cs] : cores_) {
    while (!cs.items.empty()) {
      PendingItem item = std::move(cs.items.front());
      cs.items.pop_front();
      if (item.closed) {
        finalize(std::move(item));
      } else if (cfg_.synthesize_markers) {
        // Enter without Leave at stream end: the sample watermark bounds
        // how long the item can still have been on the core.
        item.leave = std::max(cs.sample_watermark, item.enter);
        item.closed = true;
        item.synth_leave = true;
        ++synthesized_;
        finalize(std::move(item));
      } else {
        ++dropped_; // Enter without Leave at stream end
      }
    }
  }
}

} // namespace fluxtrace::core
