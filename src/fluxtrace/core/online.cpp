#include "fluxtrace/core/online.hpp"

#include <algorithm>
#include <unordered_map>

namespace fluxtrace::core {

OnlineTracer::OnlineTracer(const SymbolTable& symtab, OnlineTracerConfig cfg)
    : symtab_(symtab), cfg_(cfg), detector_(cfg.detector) {}

void OnlineTracer::on_marker(const Marker& m) {
  CoreState& cs = cores_[m.core];
  if (m.kind == MarkerKind::Enter) {
    // A still-open previous item means a malformed stream under the
    // self-switching assumption; drop the dangling one.
    if (!cs.items.empty() && !cs.items.back().closed) {
      cs.items.pop_back();
      ++dropped_;
    }
    PendingItem item;
    item.id = m.item;
    item.core = m.core;
    item.enter = m.tsc;
    cs.items.push_back(std::move(item));
  } else {
    if (cs.items.empty() || cs.items.back().closed ||
        cs.items.back().id != m.item) {
      ++dropped_; // Leave without a matching Enter
      return;
    }
    cs.items.back().leave = m.tsc;
    cs.items.back().closed = true;
  }
}

void OnlineTracer::on_sample(const PebsSample& s) {
  ++samples_seen_;
  CoreState& cs = cores_[s.core];
  cs.sample_watermark = std::max(cs.sample_watermark, s.tsc);

  // The watermark proves older items complete: no further sample at or
  // below their leave can arrive on this core.
  finalize_ready(cs, s.tsc);

  for (PendingItem& item : cs.items) {
    if (s.tsc < item.enter) break; // items are in enter order
    if (!item.closed || s.tsc <= item.leave) {
      item.raw.push_back(s);
      return;
    }
  }
  ++unmatched_; // between windows, or before the oldest pending item
}

void OnlineTracer::finalize_ready(CoreState& cs, Tsc watermark) {
  while (!cs.items.empty() && cs.items.front().closed &&
         cs.items.front().leave < watermark) {
    PendingItem item = std::move(cs.items.front());
    cs.items.pop_front();
    finalize(std::move(item));
  }
}

void OnlineTracer::finalize(PendingItem&& item) {
  OnlineResult res;
  res.item = item.id;
  res.core = item.core;
  res.window = item.leave - item.enter;

  // Per-function first/last spans from this item's raw samples.
  std::unordered_map<SymbolId, BucketStat> buckets;
  for (const PebsSample& s : item.raw) {
    const auto fn = symtab_.resolve(s.ip);
    if (!fn.has_value()) continue;
    buckets[*fn].add(s.tsc);
  }
  for (const auto& [fn, stat] : buckets) {
    if (stat.estimable()) res.fn_elapsed.emplace_back(fn, stat.elapsed());
  }
  std::sort(res.fn_elapsed.begin(), res.fn_elapsed.end());

  // Online statistics: flag if any function (or the whole window)
  // deviates from its running distribution.
  bool flagged = false;
  for (const auto& [fn, elapsed] : res.fn_elapsed) {
    flagged |= detector_.observe(item.id, fn, elapsed);
  }
  if (cfg_.track_window_metric) {
    flagged |= detector_.observe(item.id, kWindowMetric, res.window);
  }
  res.anomalous = flagged;

  if (flagged) {
    ++dumps_;
    bytes_dumped_ += item.raw.size() * kPebsRecordBytes;
    if (dump_) dump_(res, item.raw);
  }

  ++completed_;
  if (cfg_.keep_results > 0) {
    results_.push_back(std::move(res));
    while (results_.size() > cfg_.keep_results) results_.pop_front();
  }
}

void OnlineTracer::finish() {
  for (auto& [core, cs] : cores_) {
    while (!cs.items.empty()) {
      PendingItem item = std::move(cs.items.front());
      cs.items.pop_front();
      if (item.closed) {
        finalize(std::move(item));
      } else {
        ++dropped_; // Enter without Leave at stream end
      }
    }
  }
}

} // namespace fluxtrace::core
