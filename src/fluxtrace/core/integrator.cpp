#include "fluxtrace/core/integrator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "fluxtrace/obs/metrics.hpp"
#include "fluxtrace/obs/span.hpp"

namespace fluxtrace::core {

namespace {

// Self-telemetry (ISSUE 3). ParallelIntegrator runs one TraceIntegrator
// pass per shard, so counting here (and only here) makes shard sums equal
// the totals — no double counting at the parallel layer.
struct IntegratorMetrics {
  obs::Counter& items = obs::metrics().counter("core.integrate.items");
  obs::Counter& degraded =
      obs::metrics().counter("core.integrate.degraded_items");

  static IntegratorMetrics& get() {
    static IntegratorMetrics m;
    return m;
  }
};

std::map<std::uint32_t, std::vector<Marker>> markers_by_core(
    std::span<const Marker> markers) {
  std::map<std::uint32_t, std::vector<Marker>> per_core;
  for (const Marker& m : markers) per_core[m.core].push_back(m);
  for (auto& [core, ms] : per_core) {
    std::stable_sort(ms.begin(), ms.end(),
                     [](const Marker& a, const Marker& b) {
                       return a.tsc < b.tsc;
                     });
  }
  return per_core;
}

} // namespace

std::vector<ItemWindow> TraceIntegrator::windows_from_markers(
    std::span<const Marker> markers) {
  std::vector<ItemWindow> out;
  for (auto& [core, ms] : markers_by_core(markers)) {
    // Pair Enter → Leave by item id. In the self-switching architecture
    // exactly one item is on a core at a time, so windows come out
    // disjoint; under preemption (timer-switching) an item's window spans
    // its whole lifetime and windows overlap — which is exactly the
    // failure mode §V-A's register-carried ids fix. Leaves without a
    // matching Enter and Enters never closed are dropped.
    std::map<ItemId, Tsc> open;
    for (const Marker& m : ms) {
      if (m.kind == MarkerKind::Enter) {
        open[m.item] = m.tsc;
      } else {
        auto oit = open.find(m.item);
        if (oit != open.end()) {
          out.push_back(ItemWindow{m.item, core, oit->second, m.tsc});
          open.erase(oit);
        }
      }
    }
  }
  return out;
}

std::vector<ItemWindow> TraceIntegrator::windows_from_markers_degraded(
    std::span<const Marker> markers,
    const std::map<std::uint32_t, Tsc>& watermarks) {
  std::vector<ItemWindow> out;
  for (auto& [core, ms] : markers_by_core(markers)) {
    // Self-switching: one item per core at a time, so a surviving edge
    // bounds its lost partner. A lost Leave is proven passed by the next
    // Enter on the core (the item was gone before the next one started);
    // a lost Enter can have happened no earlier than the previous edge.
    // Both bounds over-cover slightly — degraded, and tagged as such —
    // which beats dropping the item entirely.
    struct Open {
      ItemId item = kNoItem;
      Tsc enter = 0;
      std::uint8_t synth = 0;
    };
    Open open;
    bool has_open = false;
    Tsc prev_edge = 0;
    for (const Marker& m : ms) {
      if (m.kind == MarkerKind::Enter) {
        if (has_open) {
          // The open item's Leave was lost; close it at this Enter.
          out.push_back(ItemWindow{open.item, core, open.enter, m.tsc,
                                   static_cast<std::uint8_t>(
                                       open.synth | ItemWindow::kSynthLeave)});
        }
        open = Open{m.item, m.tsc, 0};
        has_open = true;
      } else if (has_open && open.item == m.item) {
        out.push_back(ItemWindow{m.item, core, open.enter, m.tsc, open.synth});
        has_open = false;
      } else if (has_open) {
        // Two losses at once (open item's Leave and this item's Enter):
        // both items get the joint span, honestly tagged on both edges.
        out.push_back(ItemWindow{open.item, core, open.enter, m.tsc,
                                 static_cast<std::uint8_t>(
                                     open.synth | ItemWindow::kSynthLeave)});
        out.push_back(
            ItemWindow{m.item, core, open.enter, m.tsc, static_cast<std::uint8_t>(
                           ItemWindow::kSynthEnter)});
        has_open = false;
      } else {
        // Leave whose Enter was lost: it started after the previous edge.
        out.push_back(ItemWindow{m.item, core, prev_edge, m.tsc,
                                 ItemWindow::kSynthEnter});
      }
      prev_edge = m.tsc;
    }
    if (has_open) {
      // Open at stream end: no sample after the per-core watermark can
      // belong to it, so the watermark closes it.
      auto wit = watermarks.find(core);
      const Tsc wm =
          wit != watermarks.end() ? std::max(wit->second, open.enter)
                                  : open.enter;
      out.push_back(ItemWindow{open.item, core, open.enter, wm,
                               static_cast<std::uint8_t>(
                                   open.synth | ItemWindow::kSynthLeave)});
    }
  }
  return out;
}

TraceTable TraceIntegrator::integrate(
    std::span<const Marker> markers,
    std::span<const PebsSample> samples) const {
  return integrate(markers, samples, {});
}

TraceTable TraceIntegrator::integrate(std::span<const Marker> markers,
                                      std::span<const PebsSample> samples,
                                      std::span<const SampleLoss> losses) const {
  OBS_SPAN("core.integrate");
  TraceTable table;

  // Per-core windows sorted by enter time, plus a prefix-max of leave
  // times so the backward walk below can stop as soon as no earlier
  // window can still cover the sample (O(1) for disjoint windows).
  struct CoreWindows {
    std::vector<ItemWindow> ws;
    std::vector<Tsc> prefix_max_leave;
  };
  std::map<std::uint32_t, CoreWindows> win_by_core;
  std::set<ItemId> window_items;

  std::vector<ItemWindow> windows;
  if (cfg_.degraded) {
    std::map<std::uint32_t, Tsc> watermarks;
    for (const PebsSample& s : samples) {
      Tsc& wm = watermarks[s.core];
      wm = std::max(wm, s.tsc);
    }
    for (const SampleLoss& l : losses) {
      Tsc& wm = watermarks[l.core];
      wm = std::max(wm, l.tsc);
    }
    windows = windows_from_markers_degraded(markers, watermarks);
  } else {
    windows = windows_from_markers(markers);
  }
  for (const ItemWindow& w : windows) {
    table.add_window(w);
    win_by_core[w.core].ws.push_back(w);
    window_items.insert(w.item);
  }
  // Items a salvaged register id may name: this call's window items, or
  // the injected global set when integrating one shard of a parallel run.
  const std::set<ItemId>& known_items =
      cfg_.salvage_items != nullptr ? *cfg_.salvage_items : window_items;
  for (auto& [core, cw] : win_by_core) {
    std::sort(cw.ws.begin(), cw.ws.end(),
              [](const ItemWindow& a, const ItemWindow& b) {
                return a.enter < b.enter;
              });
    cw.prefix_max_leave.resize(cw.ws.size());
    Tsc running = 0;
    for (std::size_t i = 0; i < cw.ws.size(); ++i) {
      running = std::max(running, cw.ws[i].leave);
      cw.prefix_max_leave[i] = running;
    }
  }

  // Most recent window with enter <= tsc whose leave has not passed.
  // With disjoint windows (self-switching) this is one probe; with
  // overlapping windows the walk finds the innermost cover — a heuristic
  // that can be wrong, which is the point of the §V-A extension.
  auto locate = [&win_by_core](std::uint32_t core, Tsc tsc) -> ItemId {
    auto it = win_by_core.find(core);
    if (it == win_by_core.end()) return kNoItem;
    const std::vector<ItemWindow>& ws = it->second.ws;
    const std::vector<Tsc>& pmax = it->second.prefix_max_leave;
    auto wit = std::upper_bound(
        ws.begin(), ws.end(), tsc,
        [](Tsc t, const ItemWindow& w) { return t < w.enter; });
    while (wit != ws.begin()) {
      const std::size_t idx = static_cast<std::size_t>(wit - ws.begin()) - 1;
      if (pmax[idx] < tsc) break; // nothing earlier can cover tsc
      --wit;
      if (tsc <= wit->leave) return wit->item;
    }
    return kNoItem;
  };

  for (const PebsSample& s : samples) {
    // (1) item id — from the marker windows or from the sampled register.
    ItemId item = kNoItem;
    bool salvaged = false;
    if (cfg_.use_register_ids) {
      item = s.regs.get(cfg_.id_reg);
    } else {
      item = locate(s.core, s.tsc);
      if (item == kNoItem && cfg_.degraded) {
        // Orphan salvage: the sampled id register names the item
        // directly; trust it when it matches an item the markers saw
        // (guards against registers that never held an id).
        const ItemId reg_item = s.regs.get(cfg_.id_reg);
        if (reg_item != kNoItem && known_items.count(reg_item) > 0) {
          item = reg_item;
          salvaged = true;
        }
      }
    }
    if (item == kNoItem) {
      table.count_unmatched_item();
      continue;
    }
    if (salvaged) table.note_sample_salvaged(item);

    // (2) function — from the symbol table.
    const auto fn = symtab_.resolve(s.ip);
    if (!fn.has_value()) {
      table.count_unmatched_symbol();
      continue;
    }

    table.add_sample(item, *fn, s.core, s.tsc);
  }

  // (3) loss attribution: a lost sample whose timestamp lies inside an
  // item's window degrades that item's confidence — the estimate may
  // under-cover, and the table says so instead of staying silent.
  for (const SampleLoss& l : losses) {
    const ItemId item = locate(l.core, l.tsc);
    if (item != kNoItem) {
      table.note_sample_lost(item);
    } else {
      table.count_unattributed_loss();
    }
  }
  IntegratorMetrics::get().items.inc(table.items().size());
  IntegratorMetrics::get().degraded.inc(table.degraded_items().size());
  return table;
}

} // namespace fluxtrace::core
