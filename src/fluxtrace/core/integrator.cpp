#include "fluxtrace/core/integrator.hpp"

#include <algorithm>
#include <map>

namespace fluxtrace::core {

std::vector<ItemWindow> TraceIntegrator::windows_from_markers(
    std::span<const Marker> markers) {
  // Group by core, keep time order within each core.
  std::map<std::uint32_t, std::vector<Marker>> per_core;
  for (const Marker& m : markers) per_core[m.core].push_back(m);

  std::vector<ItemWindow> out;
  for (auto& [core, ms] : per_core) {
    std::stable_sort(ms.begin(), ms.end(),
                     [](const Marker& a, const Marker& b) {
                       return a.tsc < b.tsc;
                     });
    // Pair Enter → Leave by item id. In the self-switching architecture
    // exactly one item is on a core at a time, so windows come out
    // disjoint; under preemption (timer-switching) an item's window spans
    // its whole lifetime and windows overlap — which is exactly the
    // failure mode §V-A's register-carried ids fix. Leaves without a
    // matching Enter and Enters never closed are dropped.
    std::map<ItemId, Tsc> open;
    for (const Marker& m : ms) {
      if (m.kind == MarkerKind::Enter) {
        open[m.item] = m.tsc;
      } else {
        auto oit = open.find(m.item);
        if (oit != open.end()) {
          out.push_back(ItemWindow{m.item, core, oit->second, m.tsc});
          open.erase(oit);
        }
      }
    }
  }
  return out;
}

TraceTable TraceIntegrator::integrate(std::span<const Marker> markers,
                                      std::span<const PebsSample> samples) const {
  TraceTable table;

  // Per-core windows sorted by enter time, plus a prefix-max of leave
  // times so the backward walk below can stop as soon as no earlier
  // window can still cover the sample (O(1) for disjoint windows).
  struct CoreWindows {
    std::vector<ItemWindow> ws;
    std::vector<Tsc> prefix_max_leave;
  };
  std::map<std::uint32_t, CoreWindows> win_by_core;
  for (const ItemWindow& w : windows_from_markers(markers)) {
    table.add_window(w);
    win_by_core[w.core].ws.push_back(w);
  }
  for (auto& [core, cw] : win_by_core) {
    std::sort(cw.ws.begin(), cw.ws.end(),
              [](const ItemWindow& a, const ItemWindow& b) {
                return a.enter < b.enter;
              });
    cw.prefix_max_leave.resize(cw.ws.size());
    Tsc running = 0;
    for (std::size_t i = 0; i < cw.ws.size(); ++i) {
      running = std::max(running, cw.ws[i].leave);
      cw.prefix_max_leave[i] = running;
    }
  }

  for (const PebsSample& s : samples) {
    // (1) item id — from the marker windows or from the sampled register.
    ItemId item = kNoItem;
    if (cfg_.use_register_ids) {
      item = s.regs.get(cfg_.id_reg);
    } else {
      auto it = win_by_core.find(s.core);
      if (it != win_by_core.end()) {
        const std::vector<ItemWindow>& ws = it->second.ws;
        const std::vector<Tsc>& pmax = it->second.prefix_max_leave;
        // Most recent window with enter <= tsc whose leave has not
        // passed. With disjoint windows (self-switching) this is one
        // probe; with overlapping windows the walk finds the innermost
        // cover — a heuristic that can be wrong, which is the point of
        // the §V-A extension.
        auto wit = std::upper_bound(
            ws.begin(), ws.end(), s.tsc,
            [](Tsc t, const ItemWindow& w) { return t < w.enter; });
        while (wit != ws.begin()) {
          const std::size_t idx =
              static_cast<std::size_t>(wit - ws.begin()) - 1;
          if (pmax[idx] < s.tsc) break; // nothing earlier can cover tsc
          --wit;
          if (s.tsc <= wit->leave) {
            item = wit->item;
            break;
          }
        }
      }
    }
    if (item == kNoItem) {
      table.count_unmatched_item();
      continue;
    }

    // (2) function — from the symbol table.
    const auto fn = symtab_.resolve(s.ip);
    if (!fn.has_value()) {
      table.count_unmatched_symbol();
      continue;
    }

    table.add_sample(item, *fn, s.core, s.tsc);
  }
  return table;
}

} // namespace fluxtrace::core
