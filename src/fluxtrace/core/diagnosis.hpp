// One-call diagnosis: everything an operator asks of a recorded trace —
// the latency distribution, the outliers, and each outlier's
// per-function breakdown with a root-cause hint — assembled from the
// primitives (TraceTable, FluctuationDetector) into a single report.
// The examples and tools print it; tests pin its decisions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fluxtrace/base/symbols.hpp"
#include "fluxtrace/core/detector.hpp"
#include "fluxtrace/core/trace_table.hpp"

namespace fluxtrace::core {

struct DiagnosisConfig {
  DetectorConfig detector{3.0, 8};
  std::size_t max_outliers = 10; ///< report at most this many
};

struct OutlierReport {
  ItemId item = kNoItem;
  Tsc total = 0;             ///< window total
  double sigmas = 0.0;       ///< deviation from the running mean
  SymbolId dominant_fn = kInvalidSymbol;
  Tsc dominant_elapsed = 0;
  double dominant_share = 0.0; ///< of the item's estimated total
};

struct DiagnosisReport {
  std::uint64_t items = 0;
  double mean_us = 0.0;
  double stddev_us = 0.0;
  double p99_us = 0.0;
  std::vector<OutlierReport> outliers; ///< most deviant first

  /// Render as human-readable text (function names from `symtab`).
  void print(std::ostream& os, const SymbolTable& symtab) const;
  [[nodiscard]] std::string str(const SymbolTable& symtab) const;
};

/// Run the outlier analysis over an integrated trace. Offline, the
/// criterion is a robust z-score against the median/MAD of the item
/// totals (detector.k_sigma is the threshold) — unlike the streaming
/// FluctuationDetector, a fluctuation that arrives first (the paper's
/// query #1) cannot poison its own baseline.
[[nodiscard]] DiagnosisReport diagnose(const TraceTable& table,
                                       const CpuSpec& spec,
                                       DiagnosisConfig cfg = {});

} // namespace fluxtrace::core
