#include "fluxtrace/core/callguess.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace fluxtrace::core {

CallerGuess guess_callers(const SymbolTable& symtab,
                          std::span<const PebsSample> samples,
                          SymbolId utility) {
  std::map<std::uint32_t, std::vector<PebsSample>> by_core;
  for (const PebsSample& s : samples) by_core[s.core].push_back(s);

  CallerGuess out;
  for (auto& [core, ss] : by_core) {
    std::sort(ss.begin(), ss.end(),
              [](const PebsSample& a, const PebsSample& b) {
                return a.tsc < b.tsc;
              });
    SymbolId last_other = kInvalidSymbol;
    for (const PebsSample& s : ss) {
      const auto fn = symtab.resolve(s.ip);
      if (!fn.has_value()) continue;
      if (*fn == utility) {
        ++out.utility_samples;
        if (last_other == kInvalidSymbol) {
          ++out.unattributed;
        } else {
          ++out.by_caller[last_other];
        }
      } else {
        last_other = *fn;
      }
    }
  }
  return out;
}

} // namespace fluxtrace::core
