// Closed-loop reset-value control — §V-C taken one step further. The
// planner fits interval(R) offline; this controller holds a target sample
// interval (equivalently, a target overhead fraction) *online*: it
// watches the achieved interval over a window of recent samples and
// reprograms R through the same proportional relationship the paper's
// linearity observation justifies. Workload phase changes (a drop in
// uops/cycle, a different packet mix) are absorbed within a few windows
// instead of invalidating a hand-picked R.
#pragma once

#include <cstdint>
#include <functional>

#include "fluxtrace/base/samples.hpp"
#include "fluxtrace/base/time.hpp"

namespace fluxtrace::core {

struct AdaptiveResetConfig {
  double target_interval_ns = 1000.0; ///< what §V-C would aim R at
  std::uint64_t window = 256;         ///< samples per adjustment decision
  double min_adjust_ratio = 1.05;     ///< dead-band: skip tiny corrections
  std::uint64_t min_reset = 64;
  std::uint64_t max_reset = 1u << 22;
};

class AdaptiveReset {
 public:
  /// `reprogram` is invoked with the new reset value whenever the
  /// controller decides to adjust (e.g. wire it to
  /// `PebsUnit::configure` / the MSR module's PMC rewrite).
  using Reprogram = std::function<void(std::uint64_t new_reset)>;

  AdaptiveReset(AdaptiveResetConfig cfg, std::uint64_t initial_reset,
                const CpuSpec& spec, Reprogram reprogram);

  /// Feed each drained sample (per traced core; one controller per core).
  void on_sample(const PebsSample& s);

  /// Immediate out-of-band adjustment: multiply R by `factor` (> 1 sheds
  /// load by lengthening the sample interval). This is what a backlogged
  /// consumer (OnlineTracer's shed callback) invokes when drains fall
  /// behind — graceful degradation by dropping *rate*, not records.
  /// Clamped to [min_reset, max_reset]; reprograms on change. Restarts
  /// the measurement window, so a mid-window nudge is never undone by an
  /// adjustment computed from stale pre-nudge intervals.
  void nudge(double factor);

  [[nodiscard]] std::uint64_t current_reset() const { return reset_; }
  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }
  [[nodiscard]] double last_measured_interval_ns() const {
    return last_interval_ns_;
  }

 private:
  void maybe_adjust();

  AdaptiveResetConfig cfg_;
  std::uint64_t reset_;
  CpuSpec spec_;
  Reprogram reprogram_;

  Tsc window_start_ = 0;
  std::uint64_t in_window_ = 0;
  Tsc last_tsc_ = 0;
  double last_interval_ns_ = 0.0;
  std::uint64_t adjustments_ = 0;
};

} // namespace fluxtrace::core
