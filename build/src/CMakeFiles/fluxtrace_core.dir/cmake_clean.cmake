file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/adaptive.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/adaptive.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/batch.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/batch.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/callguess.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/callguess.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/detector.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/detector.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/diagnosis.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/diagnosis.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/integrator.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/integrator.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/online.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/online.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/planner.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/planner.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/profile.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/profile.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/regid.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/regid.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/trace_table.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/trace_table.cpp.o.d"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/tracediff.cpp.o"
  "CMakeFiles/fluxtrace_core.dir/fluxtrace/core/tracediff.cpp.o.d"
  "libfluxtrace_core.a"
  "libfluxtrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
