# Empty compiler generated dependencies file for fluxtrace_core.
# This may be replaced when dependencies are built.
