file(REMOVE_RECURSE
  "libfluxtrace_core.a"
)
