
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/core/adaptive.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/adaptive.cpp.o.d"
  "/root/repo/src/fluxtrace/core/batch.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/batch.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/batch.cpp.o.d"
  "/root/repo/src/fluxtrace/core/callguess.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/callguess.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/callguess.cpp.o.d"
  "/root/repo/src/fluxtrace/core/detector.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/detector.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/detector.cpp.o.d"
  "/root/repo/src/fluxtrace/core/diagnosis.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/diagnosis.cpp.o.d"
  "/root/repo/src/fluxtrace/core/integrator.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/integrator.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/integrator.cpp.o.d"
  "/root/repo/src/fluxtrace/core/online.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/online.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/online.cpp.o.d"
  "/root/repo/src/fluxtrace/core/planner.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/planner.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/planner.cpp.o.d"
  "/root/repo/src/fluxtrace/core/profile.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/profile.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/profile.cpp.o.d"
  "/root/repo/src/fluxtrace/core/regid.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/regid.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/regid.cpp.o.d"
  "/root/repo/src/fluxtrace/core/trace_table.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/trace_table.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/trace_table.cpp.o.d"
  "/root/repo/src/fluxtrace/core/tracediff.cpp" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/tracediff.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_core.dir/fluxtrace/core/tracediff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
