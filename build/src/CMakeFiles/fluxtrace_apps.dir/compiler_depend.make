# Empty compiler generated dependencies file for fluxtrace_apps.
# This may be replaced when dependencies are built.
