file(REMOVE_RECURSE
  "libfluxtrace_apps.a"
)
