file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/acl_firewall_app.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/acl_firewall_app.cpp.o.d"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/minidb_app.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/minidb_app.cpp.o.d"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/query_cache_app.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/query_cache_app.cpp.o.d"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/rss_firewall_app.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/rss_firewall_app.cpp.o.d"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/timer_web_server.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/timer_web_server.cpp.o.d"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/webserver_model.cpp.o"
  "CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/webserver_model.cpp.o.d"
  "libfluxtrace_apps.a"
  "libfluxtrace_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
