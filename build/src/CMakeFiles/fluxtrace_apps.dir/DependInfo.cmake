
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/apps/acl_firewall_app.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/acl_firewall_app.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/acl_firewall_app.cpp.o.d"
  "/root/repo/src/fluxtrace/apps/minidb_app.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/minidb_app.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/minidb_app.cpp.o.d"
  "/root/repo/src/fluxtrace/apps/query_cache_app.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/query_cache_app.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/query_cache_app.cpp.o.d"
  "/root/repo/src/fluxtrace/apps/rss_firewall_app.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/rss_firewall_app.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/rss_firewall_app.cpp.o.d"
  "/root/repo/src/fluxtrace/apps/timer_web_server.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/timer_web_server.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/timer_web_server.cpp.o.d"
  "/root/repo/src/fluxtrace/apps/webserver_model.cpp" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/webserver_model.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_apps.dir/fluxtrace/apps/webserver_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
