file(REMOVE_RECURSE
  "libfluxtrace_io.a"
)
