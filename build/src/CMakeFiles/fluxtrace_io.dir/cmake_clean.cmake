file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/compact.cpp.o"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/compact.cpp.o.d"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/folded.cpp.o"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/folded.cpp.o.d"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/symbols_file.cpp.o"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/symbols_file.cpp.o.d"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/trace_file.cpp.o"
  "CMakeFiles/fluxtrace_io.dir/fluxtrace/io/trace_file.cpp.o.d"
  "libfluxtrace_io.a"
  "libfluxtrace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
