# Empty dependencies file for fluxtrace_io.
# This may be replaced when dependencies are built.
