
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/io/compact.cpp" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/compact.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/compact.cpp.o.d"
  "/root/repo/src/fluxtrace/io/folded.cpp" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/folded.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/folded.cpp.o.d"
  "/root/repo/src/fluxtrace/io/symbols_file.cpp" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/symbols_file.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/symbols_file.cpp.o.d"
  "/root/repo/src/fluxtrace/io/trace_file.cpp" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/trace_file.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_io.dir/fluxtrace/io/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
