# Empty dependencies file for fluxtrace_report.
# This may be replaced when dependencies are built.
