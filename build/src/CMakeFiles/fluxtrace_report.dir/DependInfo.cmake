
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/report/chart.cpp" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/chart.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/chart.cpp.o.d"
  "/root/repo/src/fluxtrace/report/csv.cpp" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/csv.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/csv.cpp.o.d"
  "/root/repo/src/fluxtrace/report/gantt.cpp" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/gantt.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/gantt.cpp.o.d"
  "/root/repo/src/fluxtrace/report/stats.cpp" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/stats.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/stats.cpp.o.d"
  "/root/repo/src/fluxtrace/report/table.cpp" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/table.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_report.dir/fluxtrace/report/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
