file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/chart.cpp.o"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/chart.cpp.o.d"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/csv.cpp.o"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/csv.cpp.o.d"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/gantt.cpp.o"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/gantt.cpp.o.d"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/stats.cpp.o"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/stats.cpp.o.d"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/table.cpp.o"
  "CMakeFiles/fluxtrace_report.dir/fluxtrace/report/table.cpp.o.d"
  "libfluxtrace_report.a"
  "libfluxtrace_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
