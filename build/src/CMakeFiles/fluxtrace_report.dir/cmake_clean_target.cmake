file(REMOVE_RECURSE
  "libfluxtrace_report.a"
)
