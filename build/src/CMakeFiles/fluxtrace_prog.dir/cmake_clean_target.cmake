file(REMOVE_RECURSE
  "libfluxtrace_prog.a"
)
