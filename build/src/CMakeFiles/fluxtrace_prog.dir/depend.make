# Empty dependencies file for fluxtrace_prog.
# This may be replaced when dependencies are built.
