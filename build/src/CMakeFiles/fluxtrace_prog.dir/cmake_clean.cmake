file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_prog.dir/fluxtrace/prog/builder.cpp.o"
  "CMakeFiles/fluxtrace_prog.dir/fluxtrace/prog/builder.cpp.o.d"
  "CMakeFiles/fluxtrace_prog.dir/fluxtrace/prog/workload.cpp.o"
  "CMakeFiles/fluxtrace_prog.dir/fluxtrace/prog/workload.cpp.o.d"
  "libfluxtrace_prog.a"
  "libfluxtrace_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
