file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_net.dir/fluxtrace/net/trafficgen.cpp.o"
  "CMakeFiles/fluxtrace_net.dir/fluxtrace/net/trafficgen.cpp.o.d"
  "libfluxtrace_net.a"
  "libfluxtrace_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
