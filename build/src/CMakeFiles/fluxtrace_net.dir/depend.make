# Empty dependencies file for fluxtrace_net.
# This may be replaced when dependencies are built.
