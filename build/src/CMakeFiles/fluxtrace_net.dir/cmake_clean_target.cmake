file(REMOVE_RECURSE
  "libfluxtrace_net.a"
)
