file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/classifier.cpp.o"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/classifier.cpp.o.d"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/prefix.cpp.o"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/prefix.cpp.o.d"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/rulefile.cpp.o"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/rulefile.cpp.o.d"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/ruleset.cpp.o"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/ruleset.cpp.o.d"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/trie.cpp.o"
  "CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/trie.cpp.o.d"
  "libfluxtrace_acl.a"
  "libfluxtrace_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
