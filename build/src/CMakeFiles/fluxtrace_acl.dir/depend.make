# Empty dependencies file for fluxtrace_acl.
# This may be replaced when dependencies are built.
