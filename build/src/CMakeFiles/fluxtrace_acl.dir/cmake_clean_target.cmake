file(REMOVE_RECURSE
  "libfluxtrace_acl.a"
)
