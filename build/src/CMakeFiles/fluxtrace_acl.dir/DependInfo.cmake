
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/acl/classifier.cpp" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/classifier.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/classifier.cpp.o.d"
  "/root/repo/src/fluxtrace/acl/prefix.cpp" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/prefix.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/prefix.cpp.o.d"
  "/root/repo/src/fluxtrace/acl/rulefile.cpp" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/rulefile.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/rulefile.cpp.o.d"
  "/root/repo/src/fluxtrace/acl/ruleset.cpp" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/ruleset.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/ruleset.cpp.o.d"
  "/root/repo/src/fluxtrace/acl/trie.cpp" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/trie.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_acl.dir/fluxtrace/acl/trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
