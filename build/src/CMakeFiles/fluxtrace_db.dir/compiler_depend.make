# Empty compiler generated dependencies file for fluxtrace_db.
# This may be replaced when dependencies are built.
