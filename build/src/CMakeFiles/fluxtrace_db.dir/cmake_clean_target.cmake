file(REMOVE_RECURSE
  "libfluxtrace_db.a"
)
