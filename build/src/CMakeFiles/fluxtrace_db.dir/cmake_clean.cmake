file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/btree.cpp.o"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/btree.cpp.o.d"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/bufferpool.cpp.o"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/bufferpool.cpp.o.d"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/table.cpp.o"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/table.cpp.o.d"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/wal.cpp.o"
  "CMakeFiles/fluxtrace_db.dir/fluxtrace/db/wal.cpp.o.d"
  "libfluxtrace_db.a"
  "libfluxtrace_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
