
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/db/btree.cpp" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/btree.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/btree.cpp.o.d"
  "/root/repo/src/fluxtrace/db/bufferpool.cpp" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/bufferpool.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/bufferpool.cpp.o.d"
  "/root/repo/src/fluxtrace/db/table.cpp" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/table.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/table.cpp.o.d"
  "/root/repo/src/fluxtrace/db/wal.cpp" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/wal.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_db.dir/fluxtrace/db/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
