file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_rt.dir/fluxtrace/rt/ulthread.cpp.o"
  "CMakeFiles/fluxtrace_rt.dir/fluxtrace/rt/ulthread.cpp.o.d"
  "libfluxtrace_rt.a"
  "libfluxtrace_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
