# Empty dependencies file for fluxtrace_rt.
# This may be replaced when dependencies are built.
