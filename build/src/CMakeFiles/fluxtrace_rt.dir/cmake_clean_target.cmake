file(REMOVE_RECURSE
  "libfluxtrace_rt.a"
)
