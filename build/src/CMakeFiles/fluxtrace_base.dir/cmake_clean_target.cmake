file(REMOVE_RECURSE
  "libfluxtrace_base.a"
)
