
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/base/markers.cpp" "src/CMakeFiles/fluxtrace_base.dir/fluxtrace/base/markers.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_base.dir/fluxtrace/base/markers.cpp.o.d"
  "/root/repo/src/fluxtrace/base/symbols.cpp" "src/CMakeFiles/fluxtrace_base.dir/fluxtrace/base/symbols.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_base.dir/fluxtrace/base/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
