# Empty compiler generated dependencies file for fluxtrace_base.
# This may be replaced when dependencies are built.
