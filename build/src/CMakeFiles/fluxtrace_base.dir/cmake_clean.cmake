file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_base.dir/fluxtrace/base/markers.cpp.o"
  "CMakeFiles/fluxtrace_base.dir/fluxtrace/base/markers.cpp.o.d"
  "CMakeFiles/fluxtrace_base.dir/fluxtrace/base/symbols.cpp.o"
  "CMakeFiles/fluxtrace_base.dir/fluxtrace/base/symbols.cpp.o.d"
  "libfluxtrace_base.a"
  "libfluxtrace_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
