
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluxtrace/sim/cache.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cache.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cache.cpp.o.d"
  "/root/repo/src/fluxtrace/sim/cpu.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cpu.cpp.o.d"
  "/root/repo/src/fluxtrace/sim/machine.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/machine.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/machine.cpp.o.d"
  "/root/repo/src/fluxtrace/sim/msr.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/msr.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/msr.cpp.o.d"
  "/root/repo/src/fluxtrace/sim/pebs.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/pebs.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/pebs.cpp.o.d"
  "/root/repo/src/fluxtrace/sim/swsampler.cpp" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/swsampler.cpp.o" "gcc" "src/CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/swsampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
