file(REMOVE_RECURSE
  "libfluxtrace_sim.a"
)
