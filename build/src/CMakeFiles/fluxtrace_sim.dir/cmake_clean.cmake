file(REMOVE_RECURSE
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cache.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cache.cpp.o.d"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cpu.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/cpu.cpp.o.d"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/machine.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/machine.cpp.o.d"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/msr.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/msr.cpp.o.d"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/pebs.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/pebs.cpp.o.d"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/swsampler.cpp.o"
  "CMakeFiles/fluxtrace_sim.dir/fluxtrace/sim/swsampler.cpp.o.d"
  "libfluxtrace_sim.a"
  "libfluxtrace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxtrace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
