# Empty compiler generated dependencies file for fluxtrace_sim.
# This may be replaced when dependencies are built.
