file(REMOVE_RECURSE
  "CMakeFiles/base_tests.dir/base/flow_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/flow_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/markers_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/markers_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/symbols_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/symbols_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/time_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/time_test.cpp.o.d"
  "base_tests"
  "base_tests.pdb"
  "base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
