file(REMOVE_RECURSE
  "CMakeFiles/db_tests.dir/db/btree_test.cpp.o"
  "CMakeFiles/db_tests.dir/db/btree_test.cpp.o.d"
  "CMakeFiles/db_tests.dir/db/bufferpool_test.cpp.o"
  "CMakeFiles/db_tests.dir/db/bufferpool_test.cpp.o.d"
  "CMakeFiles/db_tests.dir/db/table_oracle_test.cpp.o"
  "CMakeFiles/db_tests.dir/db/table_oracle_test.cpp.o.d"
  "CMakeFiles/db_tests.dir/db/table_test.cpp.o"
  "CMakeFiles/db_tests.dir/db/table_test.cpp.o.d"
  "CMakeFiles/db_tests.dir/db/wal_test.cpp.o"
  "CMakeFiles/db_tests.dir/db/wal_test.cpp.o.d"
  "db_tests"
  "db_tests.pdb"
  "db_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
