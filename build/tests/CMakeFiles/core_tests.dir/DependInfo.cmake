
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/core_tests.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/batch_test.cpp" "tests/CMakeFiles/core_tests.dir/core/batch_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/batch_test.cpp.o.d"
  "/root/repo/tests/core/callguess_test.cpp" "tests/CMakeFiles/core_tests.dir/core/callguess_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/callguess_test.cpp.o.d"
  "/root/repo/tests/core/detector_test.cpp" "tests/CMakeFiles/core_tests.dir/core/detector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/detector_test.cpp.o.d"
  "/root/repo/tests/core/diagnosis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/diagnosis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/diagnosis_test.cpp.o.d"
  "/root/repo/tests/core/integrator_edge_test.cpp" "tests/CMakeFiles/core_tests.dir/core/integrator_edge_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/integrator_edge_test.cpp.o.d"
  "/root/repo/tests/core/integrator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/integrator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/integrator_test.cpp.o.d"
  "/root/repo/tests/core/online_fuzz_test.cpp" "tests/CMakeFiles/core_tests.dir/core/online_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/online_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/online_test.cpp" "tests/CMakeFiles/core_tests.dir/core/online_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/online_test.cpp.o.d"
  "/root/repo/tests/core/planner_test.cpp" "tests/CMakeFiles/core_tests.dir/core/planner_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/planner_test.cpp.o.d"
  "/root/repo/tests/core/profile_test.cpp" "tests/CMakeFiles/core_tests.dir/core/profile_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/profile_test.cpp.o.d"
  "/root/repo/tests/core/regid_test.cpp" "tests/CMakeFiles/core_tests.dir/core/regid_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/regid_test.cpp.o.d"
  "/root/repo/tests/core/trace_table_test.cpp" "tests/CMakeFiles/core_tests.dir/core/trace_table_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/trace_table_test.cpp.o.d"
  "/root/repo/tests/core/tracediff_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tracediff_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tracediff_test.cpp.o.d"
  "/root/repo/tests/core/volume_test.cpp" "tests/CMakeFiles/core_tests.dir/core/volume_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/volume_test.cpp.o.d"
  "/root/repo/tests/core/workest_test.cpp" "tests/CMakeFiles/core_tests.dir/core/workest_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/workest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
