# Empty dependencies file for acl_tests.
# This may be replaced when dependencies are built.
