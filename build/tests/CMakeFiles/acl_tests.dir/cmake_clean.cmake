file(REMOVE_RECURSE
  "CMakeFiles/acl_tests.dir/acl/classifier_test.cpp.o"
  "CMakeFiles/acl_tests.dir/acl/classifier_test.cpp.o.d"
  "CMakeFiles/acl_tests.dir/acl/paper_ruleset_property_test.cpp.o"
  "CMakeFiles/acl_tests.dir/acl/paper_ruleset_property_test.cpp.o.d"
  "CMakeFiles/acl_tests.dir/acl/prefix_test.cpp.o"
  "CMakeFiles/acl_tests.dir/acl/prefix_test.cpp.o.d"
  "CMakeFiles/acl_tests.dir/acl/rulefile_test.cpp.o"
  "CMakeFiles/acl_tests.dir/acl/rulefile_test.cpp.o.d"
  "CMakeFiles/acl_tests.dir/acl/trie_test.cpp.o"
  "CMakeFiles/acl_tests.dir/acl/trie_test.cpp.o.d"
  "acl_tests"
  "acl_tests.pdb"
  "acl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
