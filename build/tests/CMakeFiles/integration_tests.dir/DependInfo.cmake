
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/acl_app_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/acl_app_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/acl_app_test.cpp.o.d"
  "/root/repo/tests/integration/batch_firewall_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/batch_firewall_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/batch_firewall_test.cpp.o.d"
  "/root/repo/tests/integration/builder_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/builder_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/builder_test.cpp.o.d"
  "/root/repo/tests/integration/minidb_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/minidb_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/minidb_test.cpp.o.d"
  "/root/repo/tests/integration/online_live_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/online_live_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/online_live_test.cpp.o.d"
  "/root/repo/tests/integration/query_app_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/query_app_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/query_app_test.cpp.o.d"
  "/root/repo/tests/integration/rss_firewall_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/rss_firewall_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/rss_firewall_test.cpp.o.d"
  "/root/repo/tests/integration/timer_switching_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/timer_switching_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/timer_switching_test.cpp.o.d"
  "/root/repo/tests/integration/timer_web_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/timer_web_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/timer_web_test.cpp.o.d"
  "/root/repo/tests/integration/webserver_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/webserver_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/webserver_test.cpp.o.d"
  "/root/repo/tests/integration/workload_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/workload_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
