file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/acl_app_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/acl_app_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/batch_firewall_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/batch_firewall_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/builder_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/builder_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/minidb_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/minidb_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/online_live_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/online_live_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/query_app_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/query_app_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/rss_firewall_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/rss_firewall_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/timer_switching_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/timer_switching_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/timer_web_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/timer_web_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/webserver_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/webserver_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/workload_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/workload_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
