# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/rt_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/acl_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/db_tests[1]_include.cmake")
include("/root/repo/build/tests/io_tests[1]_include.cmake")
include("/root/repo/build/tests/report_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_query_fluctuation "/root/repo/build/examples/query_fluctuation")
set_tests_properties(example_query_fluctuation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_acl_firewall "/root/repo/build/examples/acl_firewall")
set_tests_properties(example_acl_firewall PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_timer_switching "/root/repo/build/examples/timer_switching")
set_tests_properties(example_timer_switching PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_plan_overhead "/root/repo/build/examples/plan_overhead")
set_tests_properties(example_plan_overhead PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_offline_analysis "/root/repo/build/examples/offline_analysis")
set_tests_properties(example_offline_analysis PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_db_diagnosis "/root/repo/build/examples/db_diagnosis")
set_tests_properties(example_db_diagnosis PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_nginx_timer_tracing "/root/repo/build/examples/nginx_timer_tracing")
set_tests_properties(example_nginx_timer_tracing PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;110;add_test;/root/repo/tests/CMakeLists.txt;0;")
