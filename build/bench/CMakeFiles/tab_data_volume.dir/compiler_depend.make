# Empty compiler generated dependencies file for tab_data_volume.
# This may be replaced when dependencies are built.
