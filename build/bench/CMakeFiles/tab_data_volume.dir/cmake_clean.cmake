file(REMOVE_RECURSE
  "CMakeFiles/tab_data_volume.dir/tab_data_volume.cpp.o"
  "CMakeFiles/tab_data_volume.dir/tab_data_volume.cpp.o.d"
  "tab_data_volume"
  "tab_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
