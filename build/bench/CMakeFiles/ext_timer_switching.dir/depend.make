# Empty dependencies file for ext_timer_switching.
# This may be replaced when dependencies are built.
