file(REMOVE_RECURSE
  "CMakeFiles/ext_timer_switching.dir/ext_timer_switching.cpp.o"
  "CMakeFiles/ext_timer_switching.dir/ext_timer_switching.cpp.o.d"
  "ext_timer_switching"
  "ext_timer_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_timer_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
