file(REMOVE_RECURSE
  "CMakeFiles/fig02_nginx_breakdown.dir/fig02_nginx_breakdown.cpp.o"
  "CMakeFiles/fig02_nginx_breakdown.dir/fig02_nginx_breakdown.cpp.o.d"
  "fig02_nginx_breakdown"
  "fig02_nginx_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nginx_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
