
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_buffering.cpp" "bench/CMakeFiles/abl_buffering.dir/abl_buffering.cpp.o" "gcc" "bench/CMakeFiles/abl_buffering.dir/abl_buffering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxtrace_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxtrace_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
