file(REMOVE_RECURSE
  "CMakeFiles/abl_buffering.dir/abl_buffering.cpp.o"
  "CMakeFiles/abl_buffering.dir/abl_buffering.cpp.o.d"
  "abl_buffering"
  "abl_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
