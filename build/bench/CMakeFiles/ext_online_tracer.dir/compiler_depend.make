# Empty compiler generated dependencies file for ext_online_tracer.
# This may be replaced when dependencies are built.
