file(REMOVE_RECURSE
  "CMakeFiles/ext_online_tracer.dir/ext_online_tracer.cpp.o"
  "CMakeFiles/ext_online_tracer.dir/ext_online_tracer.cpp.o.d"
  "ext_online_tracer"
  "ext_online_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_online_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
