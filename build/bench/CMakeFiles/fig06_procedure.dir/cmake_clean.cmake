file(REMOVE_RECURSE
  "CMakeFiles/fig06_procedure.dir/fig06_procedure.cpp.o"
  "CMakeFiles/fig06_procedure.dir/fig06_procedure.cpp.o.d"
  "fig06_procedure"
  "fig06_procedure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
