# Empty dependencies file for fig06_procedure.
# This may be replaced when dependencies are built.
