file(REMOVE_RECURSE
  "CMakeFiles/fig08_query_fluctuation.dir/fig08_query_fluctuation.cpp.o"
  "CMakeFiles/fig08_query_fluctuation.dir/fig08_query_fluctuation.cpp.o.d"
  "fig08_query_fluctuation"
  "fig08_query_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_query_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
