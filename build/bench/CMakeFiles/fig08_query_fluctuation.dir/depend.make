# Empty dependencies file for fig08_query_fluctuation.
# This may be replaced when dependencies are built.
