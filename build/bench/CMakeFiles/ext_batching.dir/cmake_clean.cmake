file(REMOVE_RECURSE
  "CMakeFiles/ext_batching.dir/ext_batching.cpp.o"
  "CMakeFiles/ext_batching.dir/ext_batching.cpp.o.d"
  "ext_batching"
  "ext_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
