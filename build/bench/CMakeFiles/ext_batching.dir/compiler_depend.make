# Empty compiler generated dependencies file for ext_batching.
# This may be replaced when dependencies are built.
