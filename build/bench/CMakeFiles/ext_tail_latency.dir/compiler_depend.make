# Empty compiler generated dependencies file for ext_tail_latency.
# This may be replaced when dependencies are built.
