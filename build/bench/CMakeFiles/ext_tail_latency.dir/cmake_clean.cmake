file(REMOVE_RECURSE
  "CMakeFiles/ext_tail_latency.dir/ext_tail_latency.cpp.o"
  "CMakeFiles/ext_tail_latency.dir/ext_tail_latency.cpp.o.d"
  "ext_tail_latency"
  "ext_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
