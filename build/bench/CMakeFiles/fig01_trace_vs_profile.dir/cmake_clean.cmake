file(REMOVE_RECURSE
  "CMakeFiles/fig01_trace_vs_profile.dir/fig01_trace_vs_profile.cpp.o"
  "CMakeFiles/fig01_trace_vs_profile.dir/fig01_trace_vs_profile.cpp.o.d"
  "fig01_trace_vs_profile"
  "fig01_trace_vs_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_trace_vs_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
