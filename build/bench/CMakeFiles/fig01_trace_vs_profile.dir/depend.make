# Empty dependencies file for fig01_trace_vs_profile.
# This may be replaced when dependencies are built.
