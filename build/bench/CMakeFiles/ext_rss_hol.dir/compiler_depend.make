# Empty compiler generated dependencies file for ext_rss_hol.
# This may be replaced when dependencies are built.
