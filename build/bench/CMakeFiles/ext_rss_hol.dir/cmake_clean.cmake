file(REMOVE_RECURSE
  "CMakeFiles/ext_rss_hol.dir/ext_rss_hol.cpp.o"
  "CMakeFiles/ext_rss_hol.dir/ext_rss_hol.cpp.o.d"
  "ext_rss_hol"
  "ext_rss_hol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rss_hol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
