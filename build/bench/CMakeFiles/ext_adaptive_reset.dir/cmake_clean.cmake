file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_reset.dir/ext_adaptive_reset.cpp.o"
  "CMakeFiles/ext_adaptive_reset.dir/ext_adaptive_reset.cpp.o.d"
  "ext_adaptive_reset"
  "ext_adaptive_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
