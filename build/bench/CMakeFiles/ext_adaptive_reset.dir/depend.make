# Empty dependencies file for ext_adaptive_reset.
# This may be replaced when dependencies are built.
