# Empty dependencies file for abl_fig2_method.
# This may be replaced when dependencies are built.
