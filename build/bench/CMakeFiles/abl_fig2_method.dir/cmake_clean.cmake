file(REMOVE_RECURSE
  "CMakeFiles/abl_fig2_method.dir/abl_fig2_method.cpp.o"
  "CMakeFiles/abl_fig2_method.dir/abl_fig2_method.cpp.o.d"
  "abl_fig2_method"
  "abl_fig2_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fig2_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
