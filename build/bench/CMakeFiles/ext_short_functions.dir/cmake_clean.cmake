file(REMOVE_RECURSE
  "CMakeFiles/ext_short_functions.dir/ext_short_functions.cpp.o"
  "CMakeFiles/ext_short_functions.dir/ext_short_functions.cpp.o.d"
  "ext_short_functions"
  "ext_short_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_short_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
