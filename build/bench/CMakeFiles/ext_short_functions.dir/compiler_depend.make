# Empty compiler generated dependencies file for ext_short_functions.
# This may be replaced when dependencies are built.
