# Empty dependencies file for fig09_acl_estimation.
# This may be replaced when dependencies are built.
