file(REMOVE_RECURSE
  "CMakeFiles/fig09_acl_estimation.dir/fig09_acl_estimation.cpp.o"
  "CMakeFiles/fig09_acl_estimation.dir/fig09_acl_estimation.cpp.o.d"
  "fig09_acl_estimation"
  "fig09_acl_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_acl_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
