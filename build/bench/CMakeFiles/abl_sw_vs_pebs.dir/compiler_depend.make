# Empty compiler generated dependencies file for abl_sw_vs_pebs.
# This may be replaced when dependencies are built.
