file(REMOVE_RECURSE
  "CMakeFiles/abl_sw_vs_pebs.dir/abl_sw_vs_pebs.cpp.o"
  "CMakeFiles/abl_sw_vs_pebs.dir/abl_sw_vs_pebs.cpp.o.d"
  "abl_sw_vs_pebs"
  "abl_sw_vs_pebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sw_vs_pebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
