# Empty compiler generated dependencies file for ext_cache_miss_metric.
# This may be replaced when dependencies are built.
