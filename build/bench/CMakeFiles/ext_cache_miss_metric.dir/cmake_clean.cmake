file(REMOVE_RECURSE
  "CMakeFiles/ext_cache_miss_metric.dir/ext_cache_miss_metric.cpp.o"
  "CMakeFiles/ext_cache_miss_metric.dir/ext_cache_miss_metric.cpp.o.d"
  "ext_cache_miss_metric"
  "ext_cache_miss_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cache_miss_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
