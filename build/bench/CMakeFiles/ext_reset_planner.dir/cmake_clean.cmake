file(REMOVE_RECURSE
  "CMakeFiles/ext_reset_planner.dir/ext_reset_planner.cpp.o"
  "CMakeFiles/ext_reset_planner.dir/ext_reset_planner.cpp.o.d"
  "ext_reset_planner"
  "ext_reset_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reset_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
