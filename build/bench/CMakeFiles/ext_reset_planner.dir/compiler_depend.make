# Empty compiler generated dependencies file for ext_reset_planner.
# This may be replaced when dependencies are built.
