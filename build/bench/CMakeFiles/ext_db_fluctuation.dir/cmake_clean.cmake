file(REMOVE_RECURSE
  "CMakeFiles/ext_db_fluctuation.dir/ext_db_fluctuation.cpp.o"
  "CMakeFiles/ext_db_fluctuation.dir/ext_db_fluctuation.cpp.o.d"
  "ext_db_fluctuation"
  "ext_db_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_db_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
