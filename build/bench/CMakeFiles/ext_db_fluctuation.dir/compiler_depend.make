# Empty compiler generated dependencies file for ext_db_fluctuation.
# This may be replaced when dependencies are built.
