# Empty compiler generated dependencies file for fig04_sample_interval.
# This may be replaced when dependencies are built.
