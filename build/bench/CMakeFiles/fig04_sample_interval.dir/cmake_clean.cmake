file(REMOVE_RECURSE
  "CMakeFiles/fig04_sample_interval.dir/fig04_sample_interval.cpp.o"
  "CMakeFiles/fig04_sample_interval.dir/fig04_sample_interval.cpp.o.d"
  "fig04_sample_interval"
  "fig04_sample_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sample_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
