# Empty compiler generated dependencies file for ext_multicore_pipeline.
# This may be replaced when dependencies are built.
