file(REMOVE_RECURSE
  "CMakeFiles/ext_multicore_pipeline.dir/ext_multicore_pipeline.cpp.o"
  "CMakeFiles/ext_multicore_pipeline.dir/ext_multicore_pipeline.cpp.o.d"
  "ext_multicore_pipeline"
  "ext_multicore_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicore_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
