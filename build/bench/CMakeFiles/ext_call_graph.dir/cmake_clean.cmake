file(REMOVE_RECURSE
  "CMakeFiles/ext_call_graph.dir/ext_call_graph.cpp.o"
  "CMakeFiles/ext_call_graph.dir/ext_call_graph.cpp.o.d"
  "ext_call_graph"
  "ext_call_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_call_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
