# Empty dependencies file for ext_call_graph.
# This may be replaced when dependencies are built.
