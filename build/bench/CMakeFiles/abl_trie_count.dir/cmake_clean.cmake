file(REMOVE_RECURSE
  "CMakeFiles/abl_trie_count.dir/abl_trie_count.cpp.o"
  "CMakeFiles/abl_trie_count.dir/abl_trie_count.cpp.o.d"
  "abl_trie_count"
  "abl_trie_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trie_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
