# Empty dependencies file for abl_trie_count.
# This may be replaced when dependencies are built.
