# Empty compiler generated dependencies file for flxt_dump.
# This may be replaced when dependencies are built.
