file(REMOVE_RECURSE
  "CMakeFiles/flxt_dump.dir/flxt_dump.cpp.o"
  "CMakeFiles/flxt_dump.dir/flxt_dump.cpp.o.d"
  "flxt_dump"
  "flxt_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flxt_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
