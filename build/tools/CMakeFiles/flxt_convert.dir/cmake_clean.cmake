file(REMOVE_RECURSE
  "CMakeFiles/flxt_convert.dir/flxt_convert.cpp.o"
  "CMakeFiles/flxt_convert.dir/flxt_convert.cpp.o.d"
  "flxt_convert"
  "flxt_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flxt_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
