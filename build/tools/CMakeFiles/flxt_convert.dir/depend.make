# Empty dependencies file for flxt_convert.
# This may be replaced when dependencies are built.
