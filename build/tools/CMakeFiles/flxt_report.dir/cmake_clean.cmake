file(REMOVE_RECURSE
  "CMakeFiles/flxt_report.dir/flxt_report.cpp.o"
  "CMakeFiles/flxt_report.dir/flxt_report.cpp.o.d"
  "flxt_report"
  "flxt_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flxt_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
