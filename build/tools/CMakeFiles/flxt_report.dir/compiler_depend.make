# Empty compiler generated dependencies file for flxt_report.
# This may be replaced when dependencies are built.
