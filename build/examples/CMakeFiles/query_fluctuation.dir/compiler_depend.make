# Empty compiler generated dependencies file for query_fluctuation.
# This may be replaced when dependencies are built.
