file(REMOVE_RECURSE
  "CMakeFiles/query_fluctuation.dir/query_fluctuation.cpp.o"
  "CMakeFiles/query_fluctuation.dir/query_fluctuation.cpp.o.d"
  "query_fluctuation"
  "query_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
