# Empty compiler generated dependencies file for timer_switching.
# This may be replaced when dependencies are built.
