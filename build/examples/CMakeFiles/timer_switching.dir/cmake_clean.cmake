file(REMOVE_RECURSE
  "CMakeFiles/timer_switching.dir/timer_switching.cpp.o"
  "CMakeFiles/timer_switching.dir/timer_switching.cpp.o.d"
  "timer_switching"
  "timer_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
