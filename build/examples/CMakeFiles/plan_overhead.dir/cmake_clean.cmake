file(REMOVE_RECURSE
  "CMakeFiles/plan_overhead.dir/plan_overhead.cpp.o"
  "CMakeFiles/plan_overhead.dir/plan_overhead.cpp.o.d"
  "plan_overhead"
  "plan_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
