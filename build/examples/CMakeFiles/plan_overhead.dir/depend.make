# Empty dependencies file for plan_overhead.
# This may be replaced when dependencies are built.
