# Empty compiler generated dependencies file for plan_overhead.
# This may be replaced when dependencies are built.
