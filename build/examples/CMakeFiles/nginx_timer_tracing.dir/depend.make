# Empty dependencies file for nginx_timer_tracing.
# This may be replaced when dependencies are built.
