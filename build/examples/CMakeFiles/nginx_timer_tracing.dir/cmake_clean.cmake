file(REMOVE_RECURSE
  "CMakeFiles/nginx_timer_tracing.dir/nginx_timer_tracing.cpp.o"
  "CMakeFiles/nginx_timer_tracing.dir/nginx_timer_tracing.cpp.o.d"
  "nginx_timer_tracing"
  "nginx_timer_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_timer_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
