# Empty compiler generated dependencies file for db_diagnosis.
# This may be replaced when dependencies are built.
