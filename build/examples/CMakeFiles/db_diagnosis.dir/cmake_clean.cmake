file(REMOVE_RECURSE
  "CMakeFiles/db_diagnosis.dir/db_diagnosis.cpp.o"
  "CMakeFiles/db_diagnosis.dir/db_diagnosis.cpp.o.d"
  "db_diagnosis"
  "db_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
