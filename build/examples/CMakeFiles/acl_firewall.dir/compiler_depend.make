# Empty compiler generated dependencies file for acl_firewall.
# This may be replaced when dependencies are built.
