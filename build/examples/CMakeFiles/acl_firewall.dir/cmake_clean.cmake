file(REMOVE_RECURSE
  "CMakeFiles/acl_firewall.dir/acl_firewall.cpp.o"
  "CMakeFiles/acl_firewall.dir/acl_firewall.cpp.o.d"
  "acl_firewall"
  "acl_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
